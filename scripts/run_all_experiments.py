#!/usr/bin/env python
"""Run every paper experiment at recording scale and save the outputs.

Produces ``results/figN_*.txt`` / ``.json`` plus ``results/headline.txt``
— the numbers recorded in EXPERIMENTS.md.

``-j/--workers N`` spreads every campaign across N worker processes via
the :mod:`repro.parallel` work-stealing scheduler (default: all cores;
results are bit-identical to a serial run, so recorded numbers never
depend on the machine that produced them).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.report import ascii_table, to_csv  # noqa: E402
from repro.experiments import (  # noqa: E402
    fig3_temporal,
    fig4_spatial,
    fig5_landscape,
    fig6_distance,
    fig7_spread,
    fig8_architecture,
    headline,
)

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")
os.makedirs(RESULTS, exist_ok=True)


def save(name: str, text: str, rows=None) -> None:
    with open(os.path.join(RESULTS, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if rows is not None:
        with open(os.path.join(RESULTS, f"{name}.json"), "w") as fh:
            json.dump(rows, fh, indent=2, default=str)
    print(f"=== {name} ===\n{text}\n", flush=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-j", "--workers", type=int,
                        default=os.cpu_count() or 1, metavar="N",
                        help="worker processes for the campaign "
                             "scheduler (default: all cores)")
    parser.add_argument("--telemetry", type=str, default=None,
                        metavar="PATH",
                        help="append schema-versioned telemetry "
                             "snapshots (JSONL) here; render with "
                             "'repro report PATH'")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line")
    args = parser.parse_args()
    workers = max(1, args.workers)
    print(f"running campaigns with {workers} worker(s)", flush=True)

    from repro import obs

    with obs.session(telemetry=args.telemetry, quiet=args.quiet):
        _run_all(workers)
    if args.telemetry:
        print(f"[telemetry written to {args.telemetry}]", flush=True)


def _run_all(workers: int) -> None:
    t_start = time.time()

    data3 = fig3_temporal.run()
    save("fig3_temporal", ascii_table(fig3_temporal.sample_table(),
         title="Fig3 sampled injection probabilities")
         + "\n\n" + ascii_table(fig3_temporal.sampling_ablation(),
         title="n_s ablation"), fig3_temporal.sample_table())

    data4 = fig4_spatial.run()
    save("fig4_spatial", ascii_table(data4.radial_profile(),
         title="Fig4 spatial damping radial profile"),
         data4.radial_profile())

    print(f"[{time.time()-t_start:.0f}s] fig5...", flush=True)
    landscapes = fig5_landscape.run(shots=1200, workers=workers)
    rows5 = []
    for ls in landscapes.values():
        rows5.extend(ls.to_rows())
    save("fig5_landscape", ascii_table(fig5_landscape.summarize(landscapes),
         title="Fig5 landscape summary"), rows5)

    print(f"[{time.time()-t_start:.0f}s] fig6...", flush=True)
    rows6 = fig6_distance.run(shots=800, workers=workers)
    save("fig6_distance",
         ascii_table([r.to_row() for r in rows6], title="Fig6 distances")
         + "\n\n" + ascii_table(fig6_distance.bitflip_advantage(rows6),
                                title="bit-flip advantage"),
         [r.to_row() for r in rows6])

    print(f"[{time.time()-t_start:.0f}s] fig7...", flush=True)
    data7 = fig7_spread.run(shots=800, workers=workers)
    rows7 = []
    for d in data7:
        rows7.extend(d.to_rows())
    save("fig7_spread", ascii_table(rows7, title="Fig7 spread vs erasure"),
         rows7)

    print(f"[{time.time()-t_start:.0f}s] fig8...", flush=True)
    data8 = fig8_architecture.run(shots=500, workers=workers)
    rows8 = [d.to_row() for d in data8]
    per_qubit = []
    for d in data8:
        for q in d.per_qubit:
            per_qubit.append({"code": d.code_label, "arch": d.arch_label,
                              "qubit": q.root, "role": q.role,
                              "median_ler": q.median_ler})
    save("fig8_architecture",
         ascii_table(rows8, title="Fig8 by architecture") + "\n\n"
         + ascii_table(per_qubit, title="per-qubit criticality"),
         rows8 + per_qubit)

    print(f"[{time.time()-t_start:.0f}s] headline checks...", flush=True)
    checks = headline.check_all(landscapes, rows6, data7, data8)
    save("headline", ascii_table([c.to_row() for c in checks],
         title="Observations I-VIII"), [c.to_row() for c in checks])

    print(f"total {time.time()-t_start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
