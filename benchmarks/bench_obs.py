"""Observability overhead benchmark: telemetry on vs off, d=5 hot path.

The telemetry layer's contract is *near-zero* hot-path cost: counters
are one attribute add on a cached object, spans two ``perf_counter``
calls, and the monitor's per-chunk hook is throttled to the export
interval.  This bench runs the same d=5 frames campaign the decode
benchmark uses (p=5e-4, MWPM, 8 canonical blocks) with and without an
installed :func:`repro.obs.session` (JSONL telemetry on, progress
off), interleaved min-of-``REPEATS`` per setting, and holds the
monitored run to < 2% overhead.  ``REPRO_BENCH_LAX`` relaxes the bar
for contended CI runners; counts must match exactly either way (the
instrumentation never touches RNG).
"""

import time

from conftest import bench_bar, bench_report

from repro import obs
from repro.injection import CodeSpec, InjectionTask, run_task

#: 8 canonical blocks, same workload as bench_decode_batch.
SHOTS = 4096

TASK = InjectionTask(code=CodeSpec("xxzz", (5, 5)), intrinsic_p=5e-4,
                     rounds=5, decoder="mwpm", backend="frames",
                     shots=SHOTS, seed=2024)

#: Interleaved repeats per setting; min-of filters scheduler noise.
REPEATS = 7


def _timed_run():
    t0 = time.perf_counter()
    result = run_task(TASK)
    return time.perf_counter() - t0, result


def test_observability_overhead(benchmark, capsys, tmp_path):
    """run_task with a live monitor must stay within 2% of without."""
    _, base = _timed_run()   # warm the task context (lowering, graph)
    telemetry = str(tmp_path / "bench-telemetry.jsonl")

    off, on = [], []
    for _ in range(REPEATS):
        dt, plain = _timed_run()
        off.append(dt)
        with obs.session(telemetry=telemetry, quiet=True):
            dt, monitored = _timed_run()
        on.append(dt)
        # Counts are a pure function of the task: instrumentation that
        # consumed RNG or reordered sampling would show up right here.
        assert monitored.errors == plain.errors == base.errors
        assert monitored.shots == plain.shots == SHOTS

    # The fixture's row records the monitored path (the new default
    # posture: campaigns run with telemetry available).
    with obs.session(telemetry=telemetry, quiet=True):
        benchmark.pedantic(lambda: run_task(TASK), rounds=1, iterations=1)

    off_s, on_s = min(off), min(on)
    overhead = on_s / off_s - 1.0
    bench_report(
        benchmark, capsys,
        f"\n[obs] {SHOTS} shots d=5 p=5e-4: "
        f"off {off_s:.3f}s ({SHOTS / off_s:,.0f} sh/s), "
        f"on {on_s:.3f}s ({SHOTS / on_s:,.0f} sh/s), "
        f"overhead {overhead:+.2%}",
        shots=SHOTS,
        off_shots_per_s=SHOTS / off_s,
        on_shots_per_s=SHOTS / on_s,
        overhead_frac=overhead)

    bar = bench_bar(0.02, 0.15)
    assert overhead < bar, \
        f"telemetry overhead {overhead:.2%} >= {bar:.0%} on the d=5 " \
        f"frames hot path"
