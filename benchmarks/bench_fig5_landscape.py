"""Figure 5 bench — logical-error landscape (noise x radiation).

Bench scale: both paper configurations, a thinned p-sweep, all ten time
samples.  Prints the landscape summary (peak, strike column, radiation
floor) that the paper quotes; the full-resolution surface is in
results/fig5_landscape.json.
"""

import numpy as np
import pytest

from repro.analysis.report import ascii_table
from repro.experiments import fig5_landscape

pytestmark = pytest.mark.figure

#: Thinned intrinsic-noise sweep for bench scale.
P_BENCH = (1e-8, 1e-5, 1e-2, 1e-1)


def test_fig5_landscape(benchmark, bench_shots, capsys):
    def run():
        return fig5_landscape.run(shots=bench_shots, p_values=P_BENCH)

    landscapes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = fig5_landscape.summarize(landscapes)
    with capsys.disabled():
        print("\n" + ascii_table(rows, title="Fig. 5 — landscape summary"))
        for label, ls in landscapes.items():
            strike = " ".join(f"{x:.2f}" for x in ls.at_strike())
            print(f"  {label}: LER at strike per p {list(P_BENCH)}: {strike}")
    # Shape: the radiation floor stays catastrophic at p=1e-8 (Obs. I).
    for row in rows:
        assert row["radiation_floor_p1e-8"] > 0.15
    # Shape: LER grows with p at fixed fault (Obs. II direction).
    for ls in landscapes.values():
        tail = ls.rates[:, -1]
        assert tail[-1] > tail[0] - 0.05
