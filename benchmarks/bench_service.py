"""Service tracing overhead benchmark: trace contexts on vs off.

The dispatch head derives every lease's span context up front and the
executing side wraps each slice in two trace spans (lease + chunk)
whose phase children come from registry *deltas* — no per-shot work.
The contract is the same as the telemetry layer's: < 2% overhead on
the d=5 frames hot path, and bit-identical counts (trace ids are
sha1 of the work's coordinates; nothing touches RNG).

This bench drains the same d=5 campaign the decode benchmark uses
(p=5e-4, MWPM, 8 canonical blocks) through a real
:class:`~repro.service.Dispatcher` — submit, lease, execute, complete,
spans over the wire payload — with :mod:`repro.obs.trace` enabled and
disabled, interleaved min-of-``REPEATS`` per setting.  Every run gets
a fresh store so the content-addressed cache can never short-circuit
the comparison.  ``REPRO_BENCH_LAX`` relaxes the bar for contended CI
runners.
"""

import time

from conftest import bench_bar, bench_report

from repro.injection import CampaignStore
from repro.obs import trace
from repro.service import Dispatcher
from repro.service.dispatcher import execute_lease_wire

#: 8 canonical blocks, same workload as bench_decode_batch / bench_obs.
SHOTS = 4096

SPEC = {
    "codes": [["xxzz", [5, 5]]],
    "p_values": [5e-4],
    "shots": SHOTS,
    "rounds": 5,
    "decoder": "mwpm",
    "backend": "frames",
    "root_seed": 2024,
}

#: Interleaved repeats per setting; min-of filters scheduler noise.
REPEATS = 5


def _drain_once(tmp_path, tag):
    """Submit SPEC to a fresh head and pump it dry synchronously,
    exactly like the server's local pool does (spans ride the
    completion payload).  Returns (wall seconds, results rows)."""
    store = CampaignStore(tmp_path / f"store-{tag}.jsonl")
    dispatcher = Dispatcher(store, slice_shots=512)
    t0 = time.perf_counter()
    receipt = dispatcher.submit(SPEC)
    while True:
        leases = dispatcher.lease(runner="bench", max_leases=8)
        if not leases:
            break
        for lease in leases:
            payload = execute_lease_wire(lease.to_wire())
            dispatcher.complete(payload["lease"], payload["chunks"],
                                runner="bench", key=payload["key"],
                                spans=payload.get("spans"))
    dt = time.perf_counter() - t0
    rows = dispatcher.job_status(receipt["job"])["results"]
    return dt, rows


def test_trace_overhead(benchmark, capsys, tmp_path):
    """Dispatcher drain with tracing on must stay within 2% of off."""
    _drain_once(tmp_path, "warm")  # warm the task context (lowering)

    off, on = [], []
    rows_off = rows_on = None
    try:
        for i in range(REPEATS):
            trace.set_enabled(False)
            dt, rows_off = _drain_once(tmp_path, f"off-{i}")
            off.append(dt)
            trace.set_enabled(True)
            dt, rows_on = _drain_once(tmp_path, f"on-{i}")
            on.append(dt)
            # Trace ids are derived, never drawn: counts must match.
            for a, b in zip(rows_off, rows_on):
                assert (a["shots"], a["errors"]) == \
                    (b["shots"], b["errors"])
                assert a["shots"] == SHOTS

        benchmark.pedantic(
            lambda: _drain_once(tmp_path, f"bench-{time.monotonic_ns()}"),
            rounds=1, iterations=1)
    finally:
        trace.set_enabled(True)
        trace.reset()

    off_s, on_s = min(off), min(on)
    overhead = on_s / off_s - 1.0
    bench_report(
        benchmark, capsys,
        f"\n[service] {SHOTS} shots d=5 p=5e-4 via dispatcher: "
        f"trace off {off_s:.3f}s ({SHOTS / off_s:,.0f} sh/s), "
        f"on {on_s:.3f}s ({SHOTS / on_s:,.0f} sh/s), "
        f"overhead {overhead:+.2%}",
        shots=SHOTS,
        off_shots_per_s=SHOTS / off_s,
        on_shots_per_s=SHOTS / on_s,
        overhead_frac=overhead)

    bar = bench_bar(0.02, 0.15)
    assert overhead < bar, \
        f"trace overhead {overhead:.2%} >= {bar:.0%} on the d=5 " \
        f"frames dispatch path"
