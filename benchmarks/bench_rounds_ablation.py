"""Extension bench — syndrome-round sweep under strike vs noise-only.

Answers a design question the paper leaves open (RQ3 direction): do
extra syndrome rounds help against a persistent radiation fault, or
does the added exposure cancel the decoding gain?
"""

import pytest

from repro.analysis.report import ascii_table
from repro.experiments import rounds_ablation

pytestmark = pytest.mark.figure


def test_rounds_ablation(benchmark, bench_shots, capsys):
    def run():
        return rounds_ablation.run(shots=bench_shots,
                                   rounds_list=(1, 2, 4))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + ascii_table(
            [r.to_row() for r in rows],
            title="Rounds ablation — xxzz-(3,3)@mesh-5x4, strike at q2"))
    # The strike scenario must stay far above noise-only at every depth.
    for r in rows:
        assert r.strike_ler > r.noise_only_ler
