"""Figure 8 bench — per-architecture, per-root-qubit criticality.

Bench scale: a representative architecture subset, strided roots, two
time samples.  Prints the per-architecture medians (the panel summary of
the paper's Fig. 8) and the SWAP counts that explain them.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.experiments import fig8_architecture
from repro.injection.spec import ArchSpec, CodeSpec

pytestmark = pytest.mark.figure

#: Reduced configuration: the architectures whose ordering carries the
#: paper's Observation VIII (mesh vs linear vs heavy-hex).
BENCH_CONFIGS = (
    (CodeSpec("repetition", (11, 1)),
     (ArchSpec("linear", (22,)), ArchSpec("mesh", (5, 6)),
      ArchSpec("cairo"))),
    (CodeSpec("xxzz", (3, 3)),
     (ArchSpec("mesh", (5, 4)), ArchSpec("linear", (18,)),
      ArchSpec("cambridge"))),
)


def test_fig8_architectures(benchmark, bench_shots, capsys):
    def run():
        return fig8_architecture.run(shots=bench_shots,
                                     configs=BENCH_CONFIGS,
                                     time_indices=(0, 4),
                                     max_roots=8)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + ascii_table(
            [d.to_row() for d in data],
            title="Fig. 8 — median LER by architecture"))
    by_key = {(d.code_label, d.arch_label): d for d in data}
    # Shape: XXZZ on a linear chain is the worst configuration.
    xxzz_line = by_key[("xxzz-(3,3)", "linear-18")]
    xxzz_mesh = by_key[("xxzz-(3,3)", "mesh-5x4")]
    assert xxzz_line.median_ler > xxzz_mesh.median_ler
    assert xxzz_line.swap_count > xxzz_mesh.swap_count
    # Shape: the repetition code tolerates the linear chain.
    rep_line = by_key[("repetition-(11,1)", "linear-22")]
    rep_hex = by_key[("repetition-(11,1)", "cairo")]
    assert rep_line.median_ler <= rep_hex.median_ler + 0.05
