"""Shared benchmark configuration.

Figure benchmarks regenerate each paper figure's data series at reduced
shot counts (statistics scale with shots; the series *shape* is already
visible at bench scale) and print the same rows the paper reports.
Full-scale numbers live in EXPERIMENTS.md / results/.

``--bench-json PATH`` dumps a machine-readable summary of every
benchmark that ran — wall time, rounds, and shots/second for
benchmarks that declare ``extra_info["shots"]`` — so the performance
trajectory can be tracked across commits (CI uploads the bench-smoke
job's file as an artifact, named ``BENCH_*.json`` when archived).
The payload also embeds the session's ``repro.obs`` telemetry
snapshot, so decode-cache hit rates, phase timings and shot counters
ride the same perf-trajectory file, and a ``provenance`` block (git
sha, python version, platform, cpu count) — the identity
``repro perf ingest`` keys the durable bench history on.

Shared helpers (benchmarks import them ``from conftest``):

* :func:`bench_bar` — pick the strict acceptance bar or the relaxed
  one when ``REPRO_BENCH_LAX`` is set (contended CI runners).
* :func:`bench_report` — record ``extra_info`` keys and print one
  summary line past pytest's capture, in one call.
"""

import json
import os
import platform
import subprocess
import sys

import pytest

# Keep worker pools modest under the benchmark runner.
os.environ.setdefault("REPRO_WORKERS", "8")


def bench_bar(strict, lax):
    """The acceptance bar for this run: ``strict`` on dev machines,
    ``lax`` when ``REPRO_BENCH_LAX`` is set (hosted vCPUs are
    contended; a single seconds-scale round can miss a dedicated-host
    bar without any code defect)."""
    return lax if os.environ.get("REPRO_BENCH_LAX") else strict


def bench_report(benchmark, capsys, message, **extra):
    """Record ``extra`` into the benchmark's ``extra_info`` (the
    ``--bench-json`` row) and print ``message`` past capture."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    with capsys.disabled():
        print(message)


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default=None, metavar="PATH",
        help="write per-benchmark wall-time / shots-per-second JSON here")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: regenerates a paper figure's data series")


@pytest.fixture(scope="session")
def bench_shots():
    """Shots per configuration point at bench scale."""
    return 200


def _bench_row(bench):
    """One JSON row per benchmark; defensive — a malformed stats object
    (e.g. under ``--benchmark-disable``) must not break the session."""
    try:
        data = bench.as_dict(include_data=False)
    except Exception:
        return None
    stats = data.get("stats") or {}
    row = {
        "name": data.get("name"),
        "fullname": data.get("fullname"),
        "group": data.get("group"),
        "mean_s": stats.get("mean"),
        "min_s": stats.get("min"),
        "stddev_s": stats.get("stddev"),
        "rounds": stats.get("rounds"),
        "extra_info": data.get("extra_info") or {},
    }
    shots = row["extra_info"].get("shots")
    if shots and row["min_s"]:
        row["shots_per_s"] = shots / row["min_s"]
    return row


def _git_sha():
    """Best-effort HEAD sha; ``None`` outside a checkout (or without
    git) — `repro perf ingest` keys such points on their timestamp."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _provenance():
    """The provenance block ``repro perf ingest`` keys history on:
    commit identity plus the machine fingerprint inputs."""
    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "system": platform.system(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("bench_json")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    rows = [r for r in map(_bench_row, benchmarks) if r is not None]
    payload = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "provenance": _provenance(),
        "benchmarks": rows,
    }
    try:
        from repro import obs
    except ImportError:
        pass
    else:
        payload["telemetry"] = obs.registry().snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
