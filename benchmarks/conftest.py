"""Shared benchmark configuration.

Figure benchmarks regenerate each paper figure's data series at reduced
shot counts (statistics scale with shots; the series *shape* is already
visible at bench scale) and print the same rows the paper reports.
Full-scale numbers live in EXPERIMENTS.md / results/.
"""

import os

import pytest

# Keep worker pools modest under the benchmark runner.
os.environ.setdefault("REPRO_WORKERS", "8")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: regenerates a paper figure's data series")


@pytest.fixture(scope="session")
def bench_shots():
    """Shots per configuration point at bench scale."""
    return 200
