"""Figure 4 bench — spatial damping field S(d) around the impact."""

import pytest

from repro.analysis.report import ascii_table
from repro.experiments import fig4_spatial

pytestmark = pytest.mark.figure


def test_fig4_field(benchmark, capsys):
    data = benchmark(fig4_spatial.run)
    with capsys.disabled():
        print("\n" + ascii_table(
            data.radial_profile(),
            title="Fig. 4 — injection probability by distance (n=1)"))
    profile = {r["distance"]: r["injection_prob"]
               for r in data.radial_profile()}
    assert profile[0] == pytest.approx(1.0)
    assert profile[1] == pytest.approx(0.25)
