"""Core-simulator benchmarks + the batch-vs-single ablation.

The batched tableau simulator is the workhorse of every campaign; this
bench records its throughput and quantifies the vectorization speedup
over the single-shot reference implementation (DESIGN.md §3).
"""

import numpy as np
import pytest

from repro.codes import RepetitionCode, XXZZCode, build_memory_experiment
from repro.noise import DepolarizingNoise, NoiseModel, run_batch_noisy
from repro.stabilizer import (
    BatchTableauSimulator,
    TableauSimulator,
    random_clifford_circuit,
)

BATCH = 1024


@pytest.fixture(scope="module")
def xxzz_circuit():
    return build_memory_experiment(XXZZCode(3, 3)).circuit


@pytest.fixture(scope="module")
def random_circuit():
    return random_clifford_circuit(24, 400, rng=3, measure_prob=0.05)


def test_batch_memory_circuit(benchmark, xxzz_circuit):
    """Throughput: 1024 noiseless shots of the xxzz-(3,3) memory."""
    benchmark.extra_info["shots"] = BATCH

    def run():
        return BatchTableauSimulator(xxzz_circuit.num_qubits, BATCH,
                                     rng=1).run(xxzz_circuit)

    records = benchmark(run)
    assert records.shape[0] == BATCH


def test_batch_random_clifford(benchmark, random_circuit):
    """Throughput: 1024 shots of a 24-qubit 400-gate random circuit."""
    benchmark.extra_info["shots"] = BATCH

    def run():
        return BatchTableauSimulator(24, BATCH, rng=2).run(random_circuit)

    benchmark(run)


def test_single_shot_reference(benchmark, xxzz_circuit):
    """Single-shot baseline for the vectorization ablation."""

    def run():
        return TableauSimulator(xxzz_circuit.num_qubits, rng=3).run(
            xxzz_circuit)

    benchmark(run)


def test_batch_vs_single_speedup(benchmark, xxzz_circuit, capsys):
    """Ablation: measured speedup of the vectorized batch (prints row)."""
    import time

    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: BatchTableauSimulator(xxzz_circuit.num_qubits, BATCH,
                                      rng=1).run(xxzz_circuit),
        rounds=1, iterations=1)
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s in range(8):
        TableauSimulator(xxzz_circuit.num_qubits, rng=s).run(xxzz_circuit)
    single_s = (time.perf_counter() - t0) / 8 * BATCH
    with capsys.disabled():
        print(f"\n[ablation] batch {BATCH} shots: {batch_s:.3f}s; "
              f"single-shot extrapolated: {single_s:.1f}s; "
              f"speedup ~{single_s / batch_s:.0f}x")
    assert single_s > batch_s


def test_noisy_execution(benchmark, xxzz_circuit):
    """Noisy batch-tableau execution (depolarizing p=1%) — the campaign
    inner loop before the frame backend (bench_frames.py covers the
    successor); pinned to the tableau backend on purpose."""
    noise = NoiseModel([DepolarizingNoise(0.01)])
    benchmark.extra_info["shots"] = 512

    def run():
        return run_batch_noisy(xxzz_circuit, noise, 512, rng=5,
                               backend="tableau")

    benchmark(run)


def test_measurement_heavy_circuit(benchmark):
    """Stress the vectorized measurement path (random + deterministic)."""
    circ = random_clifford_circuit(16, 300, rng=9, measure_prob=0.3,
                                   reset_prob=0.1)
    benchmark.extra_info["shots"] = 512

    def run():
        return BatchTableauSimulator(16, 512, rng=4).run(circ)

    benchmark(run)
