"""Streaming-detection benchmarks: packed-syndrome throughput and the
overhead the detector adds to the frame backend's hot loop.

The detection path is designed to ride along with campaign sampling:
the frame backend already produces bit-packed record words, and the
detector reduces them with word popcounts and bit-sliced counters —
never unpacking to per-shot uint8.  The acceptance bar for the PR
introducing the subsystem: detection adds < 10% to frame-backend shot
throughput on the d=5 rotated-code burst scenario.
"""

import time

import numpy as np
import pytest

from repro.codes import XXZZCode, build_memory_experiment
from repro.detect import (
    BurstAdaptiveDecoder,
    DetectorConfig,
    PackedSyndromes,
    StreamingDetector,
    estimate_cluster,
)
from repro.frames import FrameSimulator, compile_frame_program
from repro.noise import DepolarizingNoise, NoiseModel, RadiationEvent

#: Detection-scale batch: one campaign-sized slab of shots.
SHOTS = 10_000
ROUNDS = 10
STRIKE_ROUND = 4


@pytest.fixture(scope="module")
def burst_setup():
    """d=5 rotated memory + centre strike, compiled for the frame backend."""
    code = XXZZCode(5, 5)
    experiment = build_memory_experiment(code, rounds=ROUNDS)
    root = code.lattice.data_index(2, 2)
    event = RadiationEvent.from_positions(root, code.qubit_positions())
    mpr = code.measures_per_round
    noise = NoiseModel([event.burst(STRIKE_ROUND, mpr),
                        DepolarizingNoise(0.005)])
    program = compile_frame_program(experiment.circuit, noise, rng=1)
    return code, experiment, program


@pytest.fixture(scope="module")
def record_words(burst_setup):
    _, experiment, program = burst_setup
    sim = FrameSimulator(experiment.circuit.num_qubits, SHOTS, rng=2)
    return sim.run_packed(program)


def test_detect_packed_throughput(benchmark, burst_setup, record_words):
    """Throughput: packed stream build + CUSUM detection, 10^4 shots."""
    _, experiment, _ = burst_setup
    detector = StreamingDetector(DetectorConfig())
    benchmark.extra_info["shots"] = SHOTS

    def run():
        packed = PackedSyndromes.from_record_words(record_words, experiment,
                                                   SHOTS)
        return detector.detect(packed)

    report = benchmark(run)
    assert report.flag_rate > 0.5  # full-intensity strike: mostly flagged


def test_detect_cluster_estimation(benchmark, burst_setup, record_words):
    """Strike localisation on top of a finished detection pass."""
    code, experiment, _ = burst_setup
    packed = PackedSyndromes.from_record_words(record_words, experiment,
                                               SHOTS)
    report = StreamingDetector(DetectorConfig()).detect(packed)
    benchmark.extra_info["shots"] = SHOTS

    cluster = benchmark(lambda: estimate_cluster(packed, report, code))
    assert cluster is not None


def test_detect_overhead_vs_frames(benchmark, burst_setup, record_words,
                                   capsys):
    """Acceptance: detection adds < 10% to frame-backend throughput.

    Compares the cost of the packed detection pass (stream build +
    CUSUM, on fixed record words) against the frame sampling loop a
    static campaign block already pays (simulate + unpack records), on
    the d=5 burst program.  Ratioing two independently best-of-N
    timings is robust to background load, unlike a paired A/B loop.
    """
    _, experiment, program = burst_setup
    n = experiment.circuit.num_qubits
    detector = StreamingDetector(DetectorConfig())
    from repro.frames import unpack_words

    def best_of(f, reps=7):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            f()
            times.append(time.perf_counter() - t0)
        return min(times)

    def sample():
        sim = FrameSimulator(n, SHOTS, rng=3)
        words = sim.run_packed(program)
        return np.ascontiguousarray(unpack_words(words, SHOTS).T)

    def detect_pass():
        packed = PackedSyndromes.from_record_words(record_words, experiment,
                                                   SHOTS)
        return detector.detect(packed)

    t_sample = best_of(sample)
    t_detect = best_of(detect_pass)
    overhead = t_detect / t_sample
    benchmark.extra_info["shots"] = SHOTS
    benchmark.extra_info["sample_s"] = t_sample
    benchmark.extra_info["detect_pass_s"] = t_detect
    benchmark.extra_info["overhead_frac"] = overhead
    benchmark.pedantic(detect_pass, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n[detect overhead] sampling {SHOTS / t_sample:,.0f} "
              f"shots/s, detection pass {SHOTS / t_detect:,.0f} shots/s "
              f"({overhead * 100:.1f}% of the sampling cost)")
    assert overhead < 0.10


def test_detect_adaptive_decode_smoke(burst_setup, record_words):
    """The burst-adaptive decoder consumes packed words end to end."""
    from repro.decoders import decoder_for
    from repro.frames import unpack_words

    _, experiment, _ = burst_setup
    words = record_words[:, :8]            # 512-shot slab
    records = np.ascontiguousarray(unpack_words(words, 512).T)
    dec = BurstAdaptiveDecoder(decoder_for(experiment, "union-find"),
                               policy="reweight")
    result = dec.decode_batch(experiment, records, record_words=words)
    assert result.num_shots == 512
    assert dec.last_report is not None
