"""Transpiler benchmarks + the layout/routing ablations.

SWAP overhead is the mechanism behind the paper's Observation VIII —
each inserted SWAP is an extra fault site.  This bench records transpile
latency and prints the SWAP-count ablation across layout strategies and
routing policies.
"""

import pytest

from repro.arch import cairo, linear, mesh
from repro.codes import RepetitionCode, XXZZCode, build_memory_experiment
from repro.transpile import transpile


@pytest.fixture(scope="module")
def xxzz_exp():
    return build_memory_experiment(XXZZCode(3, 3))


@pytest.fixture(scope="module")
def rep_exp():
    return build_memory_experiment(RepetitionCode(11))


def test_transpile_xxzz_to_mesh(benchmark, xxzz_exp):
    arch = mesh(5, 4)

    def run():
        return transpile(xxzz_exp.circuit, arch, layout="best")

    routed = benchmark(run)
    assert routed.swap_count > 0


def test_transpile_rep_to_heavy_hex(benchmark, rep_exp):
    arch = cairo()

    def run():
        return transpile(rep_exp.circuit, arch, layout="best")

    benchmark(run)


def test_layout_ablation(benchmark, xxzz_exp, rep_exp, capsys):
    """SWAP counts per layout strategy (DESIGN.md routing ablation)."""
    rows = benchmark.pedantic(lambda: [], rounds=1, iterations=1)
    for label, exp, arch in [("xxzz-(3,3)@mesh-5x4", xxzz_exp, mesh(5, 4)),
                             ("rep-(11,1)@linear-22", rep_exp, linear(22))]:
        for layout in ["trivial", "greedy", "snake", "best"]:
            routed = transpile(exp.circuit, arch, layout=layout)
            rows.append((label, layout, routed.swap_count))
    with capsys.disabled():
        print("\n[ablation] layout strategy vs SWAP count")
        for label, layout, swaps in rows:
            print(f"  {label:24s} {layout:8s} {swaps:4d} swaps")
    best = {label: min(s for l2, lay, s in rows if l2 == label)
            for label, _, _ in rows}
    for label, layout, swaps in rows:
        if layout == "best":
            assert swaps == best[label]


def test_routing_policy_ablation(benchmark, rep_exp, capsys):
    """Naive walk-first vs SABRE-style lookahead routing."""
    arch = mesh(5, 6)
    naive = benchmark.pedantic(
        lambda: transpile(rep_exp.circuit, arch, layout="snake",
                          routing="walk-first"),
        rounds=1, iterations=1)
    smart = transpile(rep_exp.circuit, arch, layout="snake",
                      routing="lookahead")
    with capsys.disabled():
        print(f"\n[ablation] rep-(11,1)@mesh-5x6 routing: "
              f"walk-first={naive.swap_count} swaps, "
              f"lookahead={smart.swap_count} swaps")
    assert smart.swap_count <= naive.swap_count


def test_observation8_swap_mechanism(benchmark, xxzz_exp, capsys):
    """The connectivity effect: linear forces ~3x the SWAPs of mesh."""
    on_mesh = benchmark.pedantic(
        lambda: transpile(xxzz_exp.circuit, mesh(5, 4), layout="best"),
        rounds=1, iterations=1)
    on_line = transpile(xxzz_exp.circuit, linear(18), layout="best")
    with capsys.disabled():
        print(f"\n[fig8 mechanism] xxzz-(3,3): mesh {on_mesh.swap_count} "
              f"swaps vs linear {on_line.swap_count} swaps")
    assert on_line.swap_count > 2 * on_mesh.swap_count
