"""Batched packed-syndrome decoding benchmark: engine vs per-shot loop.

The d=5 frames campaign below (p=5e-4 intrinsic noise, MWPM over 5
syndrome rounds) is the paper's low-LER regime: almost every shot
repeats one of a few dozen light syndromes.  The redesigned decode path
exploits exactly that — ``decode_batch`` consumes the sampler's packed
word stream directly (no full-record ``unpack_words``), dedups the
batch's detector patterns via ``np.unique``, decodes each distinct
pattern once, and replays repeats from the syndrome cache across
blocks.

The bench times the real end-to-end campaign (``run_task``: sampling +
packed decode + aggregation) against the pre-redesign inner loop on
identical block streams — full-record unpack, then one
``decode_detectors`` call per shot with the cache disabled — and
cross-checks on the first block that both paths decode the stream
bit-identically.

Acceptance (PR 6): >= 3x end-to-end campaign shots/s over the per-shot
loop at d=5, p=5e-4, frames + MWPM.  ``REPRO_BENCH_LAX`` relaxes the
bar for contended CI runners (the smoke lane sets it); the run always
records shots/s for both paths plus the decode-cache hit rate in the
``--bench-json`` perf trajectory.
"""

import dataclasses
import time

import numpy as np

from conftest import bench_bar, bench_report

from repro.decoders import SyndromeBatch, prepare_decode_inputs
from repro.frames.packing import unpack_words
from repro.frames.simulator import FrameSimulator
from repro.injection import CodeSpec, InjectionTask, SIM_BLOCK, run_task
from repro.injection.campaign import _task_context

#: 8 canonical blocks: enough for the cross-block cache to matter.
SHOTS = 4096

TASK = InjectionTask(code=CodeSpec("xxzz", (5, 5)), intrinsic_p=5e-4,
                     rounds=5, decoder="mwpm", backend="frames",
                     shots=SHOTS, seed=2024)


def _per_shot_loop():
    """The pre-redesign path: unpack every record row, decode each shot
    individually, no dedup, no cache.  Returns (errors, checked_ok)."""
    experiment, decoder, _, program, _, _ = _task_context(TASK)
    plain = dataclasses.replace(decoder, cache_decodes=False)
    errors = 0
    checked = False
    for b, start in enumerate(range(0, SHOTS, SIM_BLOCK)):
        size = min(SIM_BLOCK, SHOTS - start)
        sim = FrameSimulator(experiment.circuit.num_qubits, size,
                             rng=np.random.default_rng((TASK.seed, b)))
        words = sim.run_packed(program)
        records = np.ascontiguousarray(unpack_words(words, size).T)
        det, raw = prepare_decode_inputs(experiment, records, plain.graph,
                                         plain.use_final_data)
        flat = np.ascontiguousarray(det.reshape(size, -1))
        decoded = np.empty(size, dtype=np.uint8)
        for i in range(size):
            decoded[i] = raw[i] ^ plain.decode_detectors(flat[i])
        errors += int(np.count_nonzero(
            decoded != experiment.expected_logical))
        if not checked:
            # Bit-identity spot check: the batched packed path decodes
            # this block's stream to the very same per-shot values.
            fresh = dataclasses.replace(decoder, graph=decoder.graph)
            batched = fresh.decode_batch(
                experiment, SyndromeBatch.from_record_words(words, size))
            np.testing.assert_array_equal(batched.decoded, decoded)
            checked = True
    return errors, checked


def test_batched_decode_speedup(benchmark, capsys):
    """End-to-end campaign vs per-shot decode loop at d=5, p=5e-4."""
    run_task(TASK)   # warm the task context (circuit lowering, graph)

    t0 = time.perf_counter()
    loop_errors, checked = _per_shot_loop()
    loop_s = time.perf_counter() - t0
    assert checked

    # A fresh-process campaign would rebuild the context caches; they
    # are warmed above so the fixture times the steady-state engine.
    result = benchmark.pedantic(lambda: run_task(TASK),
                                rounds=1, iterations=1)
    batched_s = benchmark.stats.stats.min
    assert result.shots == SHOTS

    decoder = _task_context(TASK)[1]
    info = decoder.cache_info
    speedup = loop_s / batched_s
    bench_report(
        benchmark, capsys,
        f"\n[decode-batch] {SHOTS} shots d=5 p=5e-4: "
        f"batched {batched_s:.2f}s ({SHOTS / batched_s:,.0f} sh/s), "
        f"per-shot {loop_s:.2f}s ({SHOTS / loop_s:,.0f} sh/s), "
        f"x{speedup:.1f}; cache {len(info)} patterns, "
        f"{info.hit_rate:.0%} hits",
        shots=SHOTS,
        batched_shots_per_s=SHOTS / batched_s,
        per_shot_shots_per_s=SHOTS / loop_s,
        speedup=speedup,
        cache_patterns=len(info),
        cache_hit_rate=info.hit_rate)

    # The cache must actually be doing the work the speedup claims:
    # far fewer decoded patterns than shots, with cross-block reuse.
    assert len(info) < SHOTS // 8
    assert info.hits > 0

    bar = bench_bar(3.0, 1.5)
    assert speedup >= bar, \
        f"batched decode speedup {speedup:.2f}x < {bar}x"
