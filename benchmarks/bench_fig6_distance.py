"""Figure 6 bench — logical-error criticality by code distance.

Bench scale: every paper distance, three injection roots per code.
Prints the per-distance median rows and the Observation IV advantage.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.experiments import fig6_distance

pytestmark = pytest.mark.figure


def test_fig6_distance_sweep(benchmark, bench_shots, capsys):
    def run():
        return fig6_distance.run(shots=bench_shots, max_roots=3)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + ascii_table([r.to_row() for r in rows],
                                 title="Fig. 6 — median LER by distance"))
        print(ascii_table(fig6_distance.bitflip_advantage(rows),
                          title="Observation IV — bit-flip advantage"))
    by_key = {(r.family, r.distance): r for r in rows}
    # Shape: bit-flip protected variants beat phase-flip mirrors.
    assert (by_key[("xxzz", (3, 1))].median_ler
            < by_key[("xxzz", (1, 3))].median_ler)
    # Shape: the repetition code worsens from (3,1) to (13,1)+ levels.
    assert (by_key[("repetition", (13, 1))].median_ler
            > by_key[("repetition", (3, 1))].median_ler - 0.05)
