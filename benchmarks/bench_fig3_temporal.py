"""Figure 3 bench — temporal decay T(t) and its step approximation.

Prints the paper's sampled injection probabilities and the n_s ablation
(the accuracy/cost trade-off behind the paper's n_s = 10 choice).
"""

import pytest

from repro.analysis.report import ascii_table
from repro.experiments import fig3_temporal

pytestmark = pytest.mark.figure


def test_fig3_series(benchmark, capsys):
    data = benchmark(fig3_temporal.run)
    assert data.continuous[0] == pytest.approx(1.0)
    with capsys.disabled():
        print("\n" + ascii_table(
            fig3_temporal.sample_table(),
            title="Fig. 3 — T̂ sampled injection probabilities "
                  "(gamma=10, n_s=10)"))


def test_fig3_sampling_ablation(benchmark, capsys):
    rows = benchmark(fig3_temporal.sampling_ablation)
    with capsys.disabled():
        print("\n" + ascii_table(rows, title="Fig. 3 — n_s ablation"))
    errs = [r["mean_abs_error"] for r in rows]
    assert errs == sorted(errs, reverse=True)
