"""Work-stealing scheduler benchmark: campaign wall-clock vs workers.

The d=5 frames-backend campaign below is decode-bound (MWPM over 10
syndrome rounds under a spreading radiation fault), the regime the
paper's million-shot campaigns live in, executed at the canonical
``SIM_BLOCK`` lease granularity.  The bench runs the identical
campaign at ``workers=1`` (serial engine), ``workers=2`` and
``workers=4`` (scheduler), asserts the merged counts are
**bit-identical** across all settings — the subsystem's determinism
contract — and records shots/second per setting for the
``--bench-json`` perf trajectory.

Acceptance (PR 4): >= 3x wall-clock speedup at ``workers=4`` on a
>= 4-core machine.  The speedup bars are gated on the cores this host
actually has, and ``REPRO_BENCH_LAX`` relaxes them on contended
shared runners (the CI smoke lane sets it); a 1-core sandbox still
verifies determinism and the bounded-overhead bar, and records the
numbers.
"""

import os
import time

from conftest import bench_bar, bench_report

from repro.injection import Campaign, CodeSpec, FaultSpec, InjectionTask

#: Shots per campaign point: 6 canonical blocks each.
SHOTS = 3072


def _campaign():
    """Two d=5 rotated-code points under radiation + intrinsic noise,
    pinned to the frame backend (12 blocks ≈ the smallest campaign
    where scheduling, not sampling, decides the wall-clock)."""
    tasks = [
        InjectionTask(
            code=CodeSpec("xxzz", (5, 5)),
            fault=FaultSpec(kind="radiation", root_qubit=root,
                            time_index=5),
            intrinsic_p=0.004, rounds=10, decoder="mwpm",
            backend="frames", shots=SHOTS,
        ).with_tags(bench="parallel", root=root)
        for root in (0, 24)
    ]
    return Campaign(tasks, root_seed=2024)


def _timed_run(workers):
    t0 = time.perf_counter()
    results = _campaign().run(max_workers=1) if workers == 1 \
        else _campaign().run(workers=workers)
    return time.perf_counter() - t0, results.counts()


def test_parallel_speedup(benchmark, capsys):
    """workers=1 vs 2 vs 4: identical counts, scaling wall-clock."""
    total_shots = 2 * SHOTS
    cores = os.cpu_count() or 1

    serial_s, serial_counts = _timed_run(1)
    # The benchmark fixture wraps the workers=2 run (one round — each
    # run is seconds of wall-clock), so the JSON row's timing is the
    # scheduler path itself; the other settings ride in extra_info.
    two_s, two_counts = benchmark.pedantic(
        lambda: _timed_run(2), rounds=1, iterations=1)
    four_s, four_counts = _timed_run(4)

    assert two_counts == serial_counts, \
        "workers=2 counts diverge from serial"
    assert four_counts == serial_counts, \
        "workers=4 counts diverge from serial"

    bench_report(
        benchmark, capsys,
        f"\n[parallel] {total_shots} shots, {cores} core(s): "
        f"w1 {serial_s:.2f}s ({total_shots / serial_s:,.0f} sh/s), "
        f"w2 {two_s:.2f}s (x{serial_s / two_s:.2f}), "
        f"w4 {four_s:.2f}s (x{serial_s / four_s:.2f})",
        shots=total_shots,
        cores=cores,
        workers1_shots_per_s=total_shots / serial_s,
        workers2_shots_per_s=total_shots / two_s,
        workers4_shots_per_s=total_shots / four_s,
        speedup_w2=serial_s / two_s,
        speedup_w4=serial_s / four_s)

    # Orchestration tax (IPC, shard-less aggregation, planning) must
    # stay small even where there is no parallelism to win: parallel
    # wall-clock never exceeds serial by more than 40% + 1s.
    assert two_s <= serial_s * 1.4 + 1.0, \
        f"scheduler overhead too high: {two_s:.2f}s vs {serial_s:.2f}s"
    # Scaling bars only where the silicon exists to pay for them.
    # REPRO_BENCH_LAX relaxes them for noisy shared runners (the CI
    # smoke lane sets it: hosted vCPUs are contended, and a single
    # seconds-scale round can miss the dedicated-host bar without any
    # code defect); dev machines keep the strict acceptance bar.
    if cores >= 4:
        bar = bench_bar(3.0, 1.5)
        assert serial_s / four_s >= bar, \
            f"workers=4 speedup {serial_s / four_s:.2f}x < {bar}x on " \
            f"{cores} cores"
    if cores >= 2:
        bar = bench_bar(1.2, 1.05)
        assert serial_s / two_s >= bar, \
            f"workers=2 speedup {serial_s / two_s:.2f}x < {bar}x on " \
            f"{cores} cores"
