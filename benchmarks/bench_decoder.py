"""Decoder benchmarks: MWPM vs union-find (DESIGN.md ablation).

MWPM is the paper's decoder (best accuracy/latency trade-off, §II-D);
union-find is the cited near-linear-time alternative.  The bench
measures batch decode throughput on identical noisy records and prints
the accuracy comparison.
"""

import numpy as np
import pytest

from repro.codes import RepetitionCode, XXZZCode, build_memory_experiment
from repro.decoders import decoder_for
from repro.noise import DepolarizingNoise, NoiseModel, run_batch_noisy

SHOTS = 2000


@pytest.fixture(scope="module")
def noisy_records():
    exp = build_memory_experiment(XXZZCode(3, 3))
    noise = NoiseModel([DepolarizingNoise(0.02)])
    rec = run_batch_noisy(exp.circuit, noise, SHOTS, rng=11)
    return exp, rec


def test_mwpm_decode(benchmark, noisy_records):
    exp, rec = noisy_records
    decoder = decoder_for(exp, "mwpm")

    def run():
        return decoder.decode_batch(exp, rec)

    result = benchmark(run)
    assert result.num_shots == SHOTS


def test_unionfind_decode(benchmark, noisy_records):
    exp, rec = noisy_records
    decoder = decoder_for(exp, "union-find")

    def run():
        return decoder.decode_batch(exp, rec)

    benchmark(run)


def test_decoder_accuracy_ablation(benchmark, noisy_records, capsys):
    """Accuracy row: MWPM vs union-find on the same records."""
    exp, rec = noisy_records
    mwpm = benchmark.pedantic(
        lambda: decoder_for(exp, "mwpm").decode_batch(exp, rec),
        rounds=1, iterations=1)
    uf = decoder_for(exp, "union-find").decode_batch(exp, rec)
    with capsys.disabled():
        print(f"\n[ablation] xxzz-(3,3) p=2%: "
              f"mwpm LER={mwpm.logical_error_rate:.4f}  "
              f"union-find LER={uf.logical_error_rate:.4f}")
    assert mwpm.logical_error_rate <= uf.logical_error_rate + 0.03


def test_mwpm_large_repetition(benchmark):
    """Decode the biggest repetition code of Fig. 6 under heavy noise
    (stresses the blossom fallback for dense event sets)."""
    exp = build_memory_experiment(RepetitionCode(15))
    noise = NoiseModel([DepolarizingNoise(0.05)])
    rec = run_batch_noisy(exp.circuit, noise, 500, rng=13)
    decoder = decoder_for(exp, "mwpm")

    def run():
        return decoder.decode_batch(exp, rec)

    benchmark(run)


def test_readout_mode_ablation(benchmark, capsys):
    """DESIGN.md ablation: ancilla-parity vs data-readout decoding."""
    exp = build_memory_experiment(RepetitionCode(5))
    noise = NoiseModel([DepolarizingNoise(0.01)])
    rec = run_batch_noisy(exp.circuit, noise, SHOTS, rng=17)
    ancilla = benchmark.pedantic(
        lambda: decoder_for(exp, use_final_data=False).decode_batch(exp, rec),
        rounds=1, iterations=1)
    data = decoder_for(exp, use_final_data=True).decode_batch(exp, rec)
    with capsys.disabled():
        print(f"\n[ablation] rep-(5,1) p=1%: ancilla-readout "
              f"LER={ancilla.logical_error_rate:.4f}  data-readout "
              f"LER={data.logical_error_rate:.4f}")
    assert data.logical_error_rate <= ancilla.logical_error_rate + 0.02
