"""Pauli-frame backend benchmarks + the frames-vs-tableau ablation.

The frame backend is the campaign hot path from this PR on; this bench
records its throughput on the d=5 rotated (XXZZ) memory circuit at 10^4
shots and quantifies the speedup over ``bench_simulator.py``'s
batch-tableau baseline.  The acceptance bar for the PR introducing the
backend was >= 5x shots/second; measured speedups are orders of
magnitude beyond that.
"""

import time

import numpy as np
import pytest

from repro.codes import XXZZCode, build_memory_experiment
from repro.frames import FrameSimulator, compile_frame_program, run_batch_frames
from repro.noise import (
    DepolarizingNoise,
    NoiseModel,
    RadiationEvent,
    run_batch_noisy,
)

#: The acceptance-scale batch: 10^4 shots per configuration point.
SHOTS = 10_000
#: Tableau batch used to extrapolate the baseline's shots/second (its
#: per-shot cost is batch-size independent past vectorization warm-up;
#: running the full 10^4 would only slow the bench suite down).
TABLEAU_SHOTS = 2_048


@pytest.fixture(scope="module")
def d5_experiment():
    """The d=5 rotated surface code memory experiment (49 qubits)."""
    return build_memory_experiment(XXZZCode(5, 5))


@pytest.fixture(scope="module")
def d5_noise(d5_experiment):
    n = d5_experiment.circuit.num_qubits
    event = RadiationEvent(0, {q: q for q in range(n)}, num_qubits=n)
    return NoiseModel([event.channel(0), DepolarizingNoise(0.01)])


def test_frames_d5_noiseless(benchmark, d5_experiment):
    """Throughput: 10^4 noiseless frame shots of the d=5 memory."""
    circuit = d5_experiment.circuit
    program = compile_frame_program(circuit, None, rng=1)
    benchmark.extra_info["shots"] = SHOTS

    def run():
        return FrameSimulator(circuit.num_qubits, SHOTS, rng=2).run(program)

    records = benchmark(run)
    assert records.shape[0] == SHOTS


def test_frames_d5_block_scale(benchmark, d5_experiment):
    """Throughput at the canonical SIM_BLOCK batch (512 shots, W=8).

    At this width per-op numpy dispatch dominates, which is what the
    fused (n, W) layer sweeps attack: the d=5 noiseless program drops
    from 311 scalar ops to 59 fused ones (~3.4x at this scale).
    """
    from repro.injection.results import SIM_BLOCK

    circuit = d5_experiment.circuit
    program = compile_frame_program(circuit, None, rng=1)
    benchmark.extra_info["shots"] = SIM_BLOCK

    def run():
        return FrameSimulator(circuit.num_qubits, SIM_BLOCK,
                              rng=4).run_packed(program)

    benchmark(run)


def test_frames_d5_noisy(benchmark, d5_experiment, d5_noise):
    """Throughput: 10^4 frame shots under radiation + depolarizing."""
    circuit = d5_experiment.circuit
    program = compile_frame_program(circuit, d5_noise, rng=1)
    benchmark.extra_info["shots"] = SHOTS

    def run():
        return FrameSimulator(circuit.num_qubits, SHOTS, rng=3).run(program)

    benchmark(run)


def test_frames_compile_overhead(benchmark, d5_experiment, d5_noise):
    """Reference pass + lowering cost (paid once per campaign task)."""

    def run():
        return compile_frame_program(d5_experiment.circuit, d5_noise, rng=1)

    program = benchmark(run)
    assert program.num_channels == 2


def test_frames_vs_tableau_speedup(benchmark, d5_experiment, d5_noise,
                                   capsys):
    """Ablation: frame vs batch-tableau shots/second on the d=5 code.

    Acceptance: the frame backend sustains >= 5x the tableau backend's
    shots/second at the 10^4-shot scale (tableau throughput measured at
    a smaller batch and compared per shot, like bench_simulator.py's
    single-shot ablation).
    """
    circuit = d5_experiment.circuit
    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: run_batch_frames(circuit, d5_noise, SHOTS, rng=5),
        rounds=1, iterations=1)
    frames_s = time.perf_counter() - t0
    frames_sps = SHOTS / frames_s

    t0 = time.perf_counter()
    run_batch_noisy(circuit, d5_noise, TABLEAU_SHOTS, rng=5,
                    backend="tableau")
    tableau_s = time.perf_counter() - t0
    tableau_sps = TABLEAU_SHOTS / tableau_s

    benchmark.extra_info["shots"] = SHOTS
    benchmark.extra_info["frames_shots_per_s"] = frames_sps
    benchmark.extra_info["tableau_shots_per_s"] = tableau_sps
    benchmark.extra_info["speedup"] = frames_sps / tableau_sps
    with capsys.disabled():
        print(f"\n[ablation] frames: {SHOTS} shots in {frames_s:.3f}s "
              f"({frames_sps:,.0f} shots/s); tableau: {TABLEAU_SHOTS} "
              f"shots in {tableau_s:.3f}s ({tableau_sps:,.0f} shots/s); "
              f"speedup ~{frames_sps / tableau_sps:.0f}x")
    assert frames_sps >= 5 * tableau_sps


def test_frames_statistics_match_tableau(d5_experiment, d5_noise):
    """Sanity riding along with the bench: the two backends agree on the
    raw readout error rate within loose statistical bounds."""
    circuit = d5_experiment.circuit
    rec_f = run_batch_frames(circuit, d5_noise, 4096, rng=7)
    rec_t = run_batch_noisy(circuit, d5_noise, 1024, rng=8,
                            backend="tableau")
    raw_f = np.mean(d5_experiment.raw_readout(rec_f)
                    != d5_experiment.expected_logical)
    raw_t = np.mean(d5_experiment.raw_readout(rec_t)
                    != d5_experiment.expected_logical)
    assert abs(raw_f - raw_t) < 0.08
