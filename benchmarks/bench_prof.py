"""Profiler overhead benchmark: profiling on vs off, d=5 hot path.

The profiler's contract is stricter than the telemetry layer's: when
off it costs one ``None``-check per ``exec_ops`` call, and when *on*
the per-op kernel attribution (two ``perf_counter`` calls around each
dispatched op in the mirrored executor) must stay under 2% on the d=5
frames campaign the decode benchmark uses (p=5e-4, MWPM, 8 canonical
blocks).  Interleaved min-of-``REPEATS`` per setting filters scheduler
noise; ``REPRO_BENCH_LAX`` relaxes the bar for contended CI runners.
Counts must match exactly either way — the profiler reads clocks only,
never RNG.
"""

import time

from conftest import bench_bar, bench_report

from repro.obs import prof
from repro.injection import CodeSpec, InjectionTask, run_task

#: 8 canonical blocks, same workload as bench_obs / bench_decode_batch.
SHOTS = 4096

TASK = InjectionTask(code=CodeSpec("xxzz", (5, 5)), intrinsic_p=5e-4,
                     rounds=5, decoder="mwpm", backend="frames",
                     shots=SHOTS, seed=2024)

#: Interleaved repeats per setting; min-of filters scheduler noise.
#: Higher than bench_obs because the margin under test is ~0.7pp —
#: true overhead sits near 1.3% against a 2% bar.
REPEATS = 15


def _timed_run():
    t0 = time.perf_counter()
    result = run_task(TASK)
    return time.perf_counter() - t0, result


def test_profiler_overhead(benchmark, capsys):
    """run_task under ``prof.profile()`` must stay within 2% of plain."""
    _, base = _timed_run()   # warm the task context (lowering, graph)

    off, on = [], []
    for _ in range(REPEATS):
        dt, plain = _timed_run()
        off.append(dt)
        with prof.profile():
            dt, profiled = _timed_run()
        on.append(dt)
        # Counts are a pure function of the task: attribution that
        # consumed RNG or reordered sampling would show up right here.
        assert profiled.errors == plain.errors == base.errors
        assert profiled.shots == plain.shots == SHOTS

    # The fixture's row records the profiled path, and the snapshot
    # sanity-checks that the run actually exercised the kernel tables.
    with prof.profile() as profiler:
        benchmark.pedantic(lambda: run_task(TASK), rounds=1, iterations=1)
    snap = profiler.snapshot()
    assert snap["kernels"], "profiled run recorded no kernel buckets"
    assert snap["stages"], "profiled run recorded no decode stages"

    off_s, on_s = min(off), min(on)
    overhead = on_s / off_s - 1.0
    bench_report(
        benchmark, capsys,
        f"\n[prof] {SHOTS} shots d=5 p=5e-4: "
        f"off {off_s:.3f}s ({SHOTS / off_s:,.0f} sh/s), "
        f"on {on_s:.3f}s ({SHOTS / on_s:,.0f} sh/s), "
        f"overhead {overhead:+.2%}, "
        f"{len(snap['kernels'])} kernel bucket(s)",
        shots=SHOTS,
        off_shots_per_s=SHOTS / off_s,
        on_shots_per_s=SHOTS / on_s,
        overhead_frac=overhead,
        kernel_buckets=len(snap["kernels"]))

    bar = bench_bar(0.02, 0.15)
    assert overhead < bar, \
        f"profiler overhead {overhead:.2%} >= {bar:.0%} on the d=5 " \
        f"frames hot path"
