"""Rare-event sampler benchmark: shots-to-target vs plain Monte Carlo.

The acceptance claim of the ``repro.rare`` subsystem (ISSUE 5): on a
d=5 rotated-code point whose true logical error rate sits at ~1e-5
(deep below what a CI-scale plain-MC budget can resolve), the tilted
importance sampler must reach a 20% relative confidence-interval
target with **>= 10x fewer simulated shots** than plain MC would need.

The bench runs the tilted estimator under the adaptive policy until
the weighted CI meets the target, then compares the shots actually
spent against the analytic plain-MC requirement
``z^2 (1-p) / (rel^2 p)`` at the measured rate — running the actual
multi-million-shot MC comparison would defeat the point of the
subsystem.  Both numbers land in ``--bench-json`` as the
variance-reduction trajectory.

The speedup ratio is a property of the sampled streams (deterministic
given the seed), not of the host's wall-clock, so the acceptance bar
holds on contended CI runners too; ``REPRO_BENCH_LAX`` is not needed.
"""

import time

from repro.injection import CodeSpec, InjectionTask
from repro.injection.adaptive import AdaptivePolicy
from repro.injection.campaign import run_task
from repro.rare.sampler import SamplerSpec
from repro.rare.stats import mc_required_shots

#: Target relative CI half-width (the ISSUE's acceptance target).
TARGET_REL = 0.2
#: Shot ceiling for the tilted run (far above the expected stop shot,
#: so the adaptive policy — not the budget — ends the run).
CEILING = 262_144
#: Acceptance bar: tilted shots-to-target at least this many times
#: below plain MC's.
MIN_SPEEDUP = 10.0


def _deep_task():
    """d=5 rotated code, p=2e-4 intrinsic, data readout: true LER
    ~1e-5 (the regime Figs. 5-6 cannot reach with plain MC)."""
    return InjectionTask(
        code=CodeSpec("xxzz", (5, 5)), intrinsic_p=2e-4, rounds=2,
        readout="data", shots=CEILING, seed=11,
        sampler=SamplerSpec(kind="tilt", tilt=16.0,
                            target_rel=TARGET_REL))


def test_tilt_variance_reduction(benchmark, capsys):
    """Tilted estimator reaches the 20% CI target >= 10x cheaper."""
    policy = AdaptivePolicy(rel_halfwidth=TARGET_REL)

    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_task(_deep_task(), adaptive=policy),
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0

    stats = result.weight_stats
    rate = result.logical_error_rate
    lo, hi = result.confidence_interval
    assert rate > 0, "deep point produced no weighted failures"
    rel = (hi - lo) / (2 * rate)
    assert result.shots < CEILING, \
        "adaptive policy never reached the CI target below the ceiling"
    assert rel <= TARGET_REL * 1.05, \
        f"stopped CI is too wide: rel {rel:.3f} > {TARGET_REL}"
    assert rate < 1e-4, \
        f"operating point drifted out of the deep tail: LER {rate:.3g}"

    mc_shots = mc_required_shots(rate, TARGET_REL)
    speedup = mc_shots / result.shots
    assert speedup >= MIN_SPEEDUP, \
        f"variance reduction {speedup:.1f}x < {MIN_SPEEDUP}x " \
        f"({result.shots} tilted shots vs {mc_shots:,.0f} MC shots)"

    benchmark.extra_info["shots"] = result.shots
    benchmark.extra_info["ler"] = rate
    benchmark.extra_info["rel_ci"] = rel
    benchmark.extra_info["ess"] = stats.ess
    benchmark.extra_info["design_ess"] = stats.design_ess
    benchmark.extra_info["mc_shots_required"] = mc_shots
    benchmark.extra_info["var_reduction"] = speedup
    with capsys.disabled():
        print(f"\n[rare] d=5 p=2e-4: LER {rate:.3g} "
              f"[{lo:.3g}, {hi:.3g}] in {result.shots:,} tilted shots "
              f"({elapsed:.1f}s); plain MC needs ~{mc_shots:,.0f} "
              f"-> {speedup:.1f}x")
