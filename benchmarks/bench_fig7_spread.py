"""Figure 7 bench — spreading fault vs multi-qubit erasure clusters.

Bench scale: both paper codes, three cluster samples per size.  Prints
the per-size medians against the spreading-fault red line.
"""

import pytest

from repro.analysis.report import ascii_table, percent
from repro.experiments import fig7_spread

pytestmark = pytest.mark.figure


def test_fig7_spread(benchmark, bench_shots, capsys):
    def run():
        return fig7_spread.run(shots=bench_shots, samples_per_size=3)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for d in data:
        rows.extend(d.to_rows())
    with capsys.disabled():
        print("\n" + ascii_table(
            rows, title="Fig. 7 — erased-cluster size vs logical error"))
        for d in data:
            eq = fig7_spread.equivalent_erasures(d)
            print(f"  {d.code_label}: spreading fault "
                  f"({percent(d.radiation_ler)}) ~ "
                  f"{eq if eq is not None else '>max'} erasures")
    for d in data:
        # Shape: erasing (well) more than half the qubits is catastrophic.
        big = [m for s, m in zip(d.sizes, d.median_ler)
               if s > d.num_qubits // 2]
        assert big and max(big) > 0.5
        # Shape: the spreading fault out-damages a single erasure.
        single = d.median_ler[d.sizes.index(1)]
        assert d.radiation_ler > single - 0.05
