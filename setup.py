"""Legacy shim so `pip install -e .` works without the `wheel` package.

The environment ships setuptools without wheel; modern editable installs
require bdist_wheel, so we fall back to setup.py-based develop mode.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
