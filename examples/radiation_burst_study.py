#!/usr/bin/env python
"""Follow one radiation burst through a surface code (paper §III/V-A).

A particle strikes physical qubit 2 of a 5x4 lattice running the
distance-(3,3) XXZZ code.  The script walks the ten temporal samples of
the transient-fault model T(t)S(d), printing the logical error rate as
the deposited energy dissipates — the time axis of the paper's Fig. 5 —
and contrasts the spreading fault with a confined (gap-engineered) one,
the paper's Observation VI scenario.

Run:  python examples/radiation_burst_study.py
"""

import dataclasses

from repro import (
    DepolarizingNoise,
    NoiseModel,
    RadiationEvent,
    XXZZCode,
    build_memory_experiment,
    decoder_for,
    run_batch_noisy,
    transpile,
)
from repro.arch import mesh

SHOTS = 1500
ROOT = 2


def main() -> None:
    arch = mesh(5, 4)
    code = XXZZCode(3, 3)
    experiment = build_memory_experiment(code)
    routed = transpile(experiment.circuit, arch, layout="best")
    experiment = dataclasses.replace(experiment, circuit=routed.circuit)
    decoder = decoder_for(experiment, use_final_data=False)
    print(f"{code} transpiled to {arch.name}: "
          f"{routed.swap_count} SWAPs, {len(routed.circuit)} gates")

    print(f"\nburst at physical qubit {ROOT}; {SHOTS} shots per sample")
    header = f"{'sample':>6} {'t':>6} {'root prob':>10} " \
             f"{'LER (spread)':>13} {'LER (confined)':>15}"
    print(header)
    print("-" * len(header))
    for k in range(10):
        rates = {}
        for spread in (True, False):
            event = RadiationEvent(ROOT, arch.distances_from(ROOT),
                                   arch.num_qubits, spread=spread)
            noise = NoiseModel([event.channel(k), DepolarizingNoise(0.01)])
            records = run_batch_noisy(experiment.circuit, noise, SHOTS,
                                      rng=100 + k)
            rates[spread] = decoder.decode_batch(
                experiment, records).logical_error_rate
        event = RadiationEvent(ROOT, arch.distances_from(ROOT),
                               arch.num_qubits)
        print(f"{k:>6} {event.times[k]:>6.2f} "
              f"{event.root_probability(k):>10.4f} "
              f"{rates[True]:>13.3f} {rates[False]:>15.3f}")

    print("\nReading: at the strike (sample 0) the fault dominates even a"
          "\n1%-noise device; confining the spread (charge wells, paper"
          "\nObservation VI) recovers a large part of the loss.")


if __name__ == "__main__":
    main()
