#!/usr/bin/env python
"""Propagate radiation damage to the algorithm level (paper §VI).

The paper's future-work proposal, implemented end to end:

1. a *physical-layer* campaign measures the post-QEC logical error rate
   of an xxzz-(3,3) patch with and without a radiation strike;
2. those rates become per-logical-qubit fault probabilities in a
   *logical-layer* circuit (a 4-qubit logical GHZ preparation);
3. we measure how far the algorithm's output distribution shifts and
   which logical qubit is most critical to protect.

Run:  python examples/logical_layer_injection.py
"""

from repro.analysis.report import ascii_table
from repro.circuits import Circuit
from repro.injection import (
    ArchSpec,
    Campaign,
    CodeSpec,
    FaultSpec,
    InjectionTask,
)
from repro.logical import criticality_ranking, logical_fault_injection


def measure_patch_rates() -> tuple[float, float]:
    """Physical layer: post-QEC LER of a quiet vs struck code patch."""
    common = dict(code=CodeSpec("xxzz", (3, 3)),
                  arch=ArchSpec("mesh", (5, 4)), intrinsic_p=0.01,
                  shots=2000)
    quiet = InjectionTask(**common)
    struck = InjectionTask(fault=FaultSpec(kind="radiation", root_qubit=2,
                                           time_index=1), **common)
    results = Campaign([quiet, struck], root_seed=42).run()
    return (results[0].logical_error_rate, results[1].logical_error_rate)


def main() -> None:
    base, struck = measure_patch_rates()
    print("physical layer (xxzz-(3,3) on mesh-5x4, p=1%):")
    print(f"  quiet patch LER:  {base:.2%}")
    print(f"  struck patch LER: {struck:.2%}  (strike at qubit 2, t_1)")

    # Logical layer: 4 encoded qubits prepare a logical GHZ state.
    ghz = Circuit(4, name="logical-ghz")
    ghz.h(0)
    for i in range(3):
        ghz.cx(i, i + 1)
    for i in range(4):
        ghz.measure(i, i)

    rates = {q: base for q in range(4)}
    rates[2] = struck  # logical qubit 2 lives on the struck patch
    impact = logical_fault_injection(ghz, rates, shots=6000, rng=3)

    print(f"\nlogical GHZ-4 with logical qubit 2 on the struck patch:")
    print(f"  total-variation distance from ideal: {impact.tv_distance:.3f}")
    rows = [{"outcome": k, "ideal": i, "faulty": f}
            for k, i, f in impact.top_outcomes(6)]
    print(ascii_table(rows, title="  output distribution shift"))

    print("\nwhich logical qubit is most critical to shield?")
    ranking = criticality_ranking(ghz, base_rate=base, struck_rate=struck,
                                  shots=4000)
    print(ascii_table(ranking, title="  strike-placement ranking"))
    print("\nMid/late-chain strikes are the most damaging: their flips "
          "\nbreak the GHZ correlation outright, while a fault on the "
          "\nroot qubit propagates coherently through every descendant "
          "\nCNOT and partially preserves the output support — the "
          "\nlogical-layer counterpart of the paper's DAG argument "
          "(Observation VII).")


if __name__ == "__main__":
    main()
