#!/usr/bin/env python
"""Quickstart: one surface-code memory experiment, end to end.

Builds the paper's distance-(5,1) bit-flip repetition code (Fig. 2),
runs it under 1% depolarizing noise, decodes with MWPM and reports the
logical error rate — the minimal loop every experiment in the paper
repeats at scale.

Run:  python examples/quickstart.py
"""

from repro import (
    DepolarizingNoise,
    NoiseModel,
    RepetitionCode,
    build_memory_experiment,
    decoder_for,
    run_batch_noisy,
)
from repro.circuits import draw


def main() -> None:
    # 1. The code: 5 data qubits, 4 ZZ-check ancillas, 1 readout ancilla.
    code = RepetitionCode(5)
    print(f"code: {code}")
    print(f"  Z checks: {code.z_plaquettes}")
    print(f"  logical X support: {code.logical_x_support}")

    # 2. The memory experiment of Figs. 1-2: two syndrome rounds around
    #    a transversal logical X, then the parity readout.
    experiment = build_memory_experiment(code)
    print(f"\ncircuit: {experiment.circuit}")
    labels = ([f"d{i}" for i in range(5)] + [f"mz{i}" for i in range(4)]
              + ["ro"])
    print(draw(experiment.circuit, qubit_labels=labels, max_width=100))

    # 3. Simulate 4000 noisy shots (vectorized stabilizer simulation).
    noise = NoiseModel([DepolarizingNoise(0.01)])
    records = run_batch_noisy(experiment.circuit, noise,
                              batch_size=4000, rng=2024)

    # 4. Decode: MWPM over the space-time detector graph.
    decoder = decoder_for(experiment)
    result = decoder.decode_batch(experiment, records)

    raw_errors = (experiment.raw_readout(records)
                  != experiment.expected_logical).mean()
    print(f"\nshots:                {result.num_shots}")
    print(f"raw readout errors:   {raw_errors:.2%}")
    print(f"decoded logical error: {result.logical_error_rate:.2%}")
    print(f"decoder corrections:  {result.corrections.mean():.2%} of shots")


if __name__ == "__main__":
    main()
