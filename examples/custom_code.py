#!/usr/bin/env python
"""Extend the library with a new QEC code (paper §IV: "the methodology
... can be easily adapted to future QEC codes").

Defines the [[4,1,2]] Bacon-Shor-style subsystem-surface patch — four
data qubits, one ZZZZ check, one XXXX check — as a custom
:class:`StabilizerCode` subclass, then reuses the entire pipeline
(memory circuit, radiation injection, MWPM decoding) unchanged.

Run:  python examples/custom_code.py
"""

from repro import (
    DepolarizingNoise,
    ErasureChannel,
    NoiseModel,
    build_memory_experiment,
    decoder_for,
    run_batch_noisy,
)
from repro.codes import StabilizerCode


class FourQubitCode(StabilizerCode):
    """The [[4,1,2]] error-detecting surface patch.

    Data qubits 0-3 on a 2x2 grid, one weight-4 Z check (ancilla 4), one
    weight-4 X check (ancilla 5), readout ancilla 6.  Distance 2: it
    detects any single error; MWPM pairs every defect with the boundary.
    """

    def __init__(self) -> None:
        self.name = "surface-[[4,1,2]]"
        self.distance = (2, 2)
        self.data_qubits = [0, 1, 2, 3]
        self.z_ancillas = [4]
        self.z_plaquettes = [(0, 1, 2, 3)]
        self.x_ancillas = [5]
        self.x_plaquettes = [(0, 1, 2, 3)]
        self.readout_qubit = 6
        self.logical_x_support = (0, 1)   # vertical pair
        self.logical_z_support = (0, 2)   # horizontal pair


def main() -> None:
    code = FourQubitCode()
    code.validate()   # stabilizer commutation + logical algebra
    print(f"defined {code}: {code.num_qubits} qubits")

    experiment = build_memory_experiment(code)
    decoder = decoder_for(experiment)

    print("\nscenario                       logical error")
    print("-" * 46)
    for label, noise in [
        ("noiseless", None),
        ("depolarizing p=1%", NoiseModel([DepolarizingNoise(0.01)])),
        ("depolarizing p=5%", NoiseModel([DepolarizingNoise(0.05)])),
        ("erasure on data qubit 0", NoiseModel([ErasureChannel([0])])),
    ]:
        records = run_batch_noisy(experiment.circuit, noise, 3000, rng=9)
        result = decoder.decode_batch(experiment, records)
        print(f"{label:30s} {result.logical_error_rate:10.2%}")

    print("\nEverything downstream of the code class — circuits, noise, "
          "injection, decoding — came from the library unchanged.")


if __name__ == "__main__":
    main()
