#!/usr/bin/env python
"""MWPM vs union-find: accuracy/latency trade-off (paper §II-D).

The paper uses MWPM because it "offers the better trade-off between high
accuracy and low time-to-solution"; union-find is the almost-linear-time
alternative it cites.  This script quantifies both claims on identical
noisy records of the distance-(3,3) XXZZ code across noise levels, with
and without a radiation strike.

Run:  python examples/decoder_comparison.py
"""

import time

from repro import (
    DepolarizingNoise,
    NoiseModel,
    RadiationEvent,
    XXZZCode,
    build_memory_experiment,
    decoder_for,
    run_batch_noisy,
)
from repro.analysis.report import ascii_table
from repro.arch import mesh

SHOTS = 3000


def decode_timed(decoder, experiment, records):
    t0 = time.perf_counter()
    result = decoder.decode_batch(experiment, records)
    return result, time.perf_counter() - t0


def main() -> None:
    experiment = build_memory_experiment(XXZZCode(3, 3))
    mwpm = decoder_for(experiment, "mwpm")
    uf = decoder_for(experiment, "union-find")

    rows = []
    scenarios = [("p=0.1%", NoiseModel([DepolarizingNoise(0.001)])),
                 ("p=1%", NoiseModel([DepolarizingNoise(0.01)])),
                 ("p=3%", NoiseModel([DepolarizingNoise(0.03)]))]
    # Radiation scenario: strike at data qubit 4 on the code's own line.
    arch = mesh(3, 6)
    event = RadiationEvent(4, arch.distances_from(4), 18)
    scenarios.append(("p=1% + strike",
                      NoiseModel([event.channel(0),
                                  DepolarizingNoise(0.01)])))

    for label, noise in scenarios:
        records = run_batch_noisy(experiment.circuit, noise, SHOTS, rng=31)
        r_mwpm, t_mwpm = decode_timed(mwpm, experiment, records)
        r_uf, t_uf = decode_timed(uf, experiment, records)
        rows.append({
            "scenario": label,
            "mwpm_ler": r_mwpm.logical_error_rate,
            "uf_ler": r_uf.logical_error_rate,
            "mwpm_ms": round(1000 * t_mwpm, 1),
            "uf_ms": round(1000 * t_uf, 1),
        })

    print(ascii_table(rows, title=f"xxzz-(3,3), {SHOTS} shots per scenario"))
    print("\nMWPM never loses accuracy; union-find trades a little "
          "accuracy at high noise for simpler, near-linear decoding — "
          "matching the paper's reasoning for choosing MWPM.")


if __name__ == "__main__":
    main()
