#!/usr/bin/env python
"""Pick the best hardware topology for a code under radiation (Fig. 8).

For each candidate architecture, transpiles the distance-(3,3) XXZZ code,
injects a strike at each of a few root qubits, and reports SWAP overhead
alongside the median logical error — the decision the paper's
Observation VIII codifies ("match the graph's connectivity to the code's
stabilizer degree").

Run:  python examples/architecture_selection.py
"""

from repro.analysis.report import ascii_table
from repro.injection import (
    ArchSpec,
    Campaign,
    CodeSpec,
    FaultSpec,
    InjectionTask,
)
from repro.experiments.common import used_physical_qubits

CODE = CodeSpec("xxzz", (3, 3))
CANDIDATES = [
    ArchSpec("complete", (18,)),
    ArchSpec("mesh", (5, 4)),
    ArchSpec("almaden"),
    ArchSpec("cambridge"),
    ArchSpec("linear", (18,)),
]
SHOTS = 600
ROOTS_PER_ARCH = 6


def main() -> None:
    tasks = []
    for arch in CANDIDATES:
        roots = used_physical_qubits(CODE, arch)
        stride = max(1, len(roots) // ROOTS_PER_ARCH)
        for root in roots[::stride][:ROOTS_PER_ARCH]:
            for t in (0, 2, 5):
                tasks.append(InjectionTask(
                    code=CODE, arch=arch,
                    fault=FaultSpec(kind="radiation", root_qubit=root,
                                    time_index=t),
                    intrinsic_p=0.01, shots=SHOTS,
                ).with_tags(arch=arch.label, root=root))
    print(f"running {len(tasks)} injection points "
          f"({SHOTS} shots each) ...")
    results = Campaign(tasks, root_seed=88).run()

    rows = []
    for arch in CANDIDATES:
        sub = results.filter_tags(arch=arch.label)
        rows.append({
            "architecture": arch.label,
            "avg_degree": round(arch.build().average_degree(), 2),
            "swaps": sub[0].swap_count,
            "median_ler": sub.median_rate(),
            "pooled_ler": sub.pooled_rate(),
        })
    rows.sort(key=lambda r: r["median_ler"])
    print()
    print(ascii_table(rows, title="XXZZ-(3,3): architecture ranking "
                                  "(radiation strikes, p=1%)"))
    best = rows[0]
    print(f"\nrecommendation: {best['architecture']} "
          f"(median LER {best['median_ler']:.1%}, "
          f"{best['swaps']} SWAPs). Higher-degree graphs cut routing "
          f"overhead, which removes fault-spread sites (Observation VIII).")


if __name__ == "__main__":
    main()
