"""Directed-acyclic-graph view of a circuit.

The paper's Observation VII explains qubit criticality through the DAG
of sequential gate dependencies: a fault on a qubit used early in the
gate sequence reaches more *descendants* and therefore corrupts more of
the code.  This module builds that DAG and exposes the reachability
metrics used by the architecture analysis (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from .circuit import Circuit
from .gates import GateType


def build_dag(circuit: Circuit) -> nx.DiGraph:
    """Build the gate-dependency DAG of ``circuit``.

    Nodes are gate indices (positions in the gate list); an edge
    ``i -> j`` means gate ``j`` consumes a qubit last written by gate
    ``i``.  Barriers create dependencies but appear as nodes too so the
    graph mirrors the gate list exactly.
    """
    dag = nx.DiGraph()
    last_use: Dict[int, int] = {}
    for idx, gate in enumerate(circuit):
        dag.add_node(idx, gate=gate)
        for q in gate.qubits:
            prev = last_use.get(q)
            if prev is not None:
                dag.add_edge(prev, idx)
            last_use[q] = idx
    return dag


def gate_descendants(circuit: Circuit, gate_index: int) -> Set[int]:
    """Indices of gates causally after ``gate_index``."""
    dag = build_dag(circuit)
    return set(nx.descendants(dag, gate_index))


def qubit_descendant_counts(circuit: Circuit) -> Dict[int, int]:
    """For each qubit, the number of gates reachable from its first use.

    This is the "criticality" proxy from the paper's §V-D discussion: a
    particle strike on a qubit can only corrupt gates downstream of the
    first gate touching it, so larger counts mean more exposure.
    """
    dag = build_dag(circuit)
    first_use: Dict[int, int] = {}
    for idx, gate in enumerate(circuit):
        for q in gate.qubits:
            first_use.setdefault(q, idx)
    counts: Dict[int, int] = {}
    for q in range(circuit.num_qubits):
        idx = first_use.get(q)
        if idx is None:
            counts[q] = 0
        else:
            counts[q] = len(nx.descendants(dag, idx)) + 1
    return counts


def qubit_light_cone(circuit: Circuit, qubit: int) -> Set[int]:
    """Qubits reachable (via gate dependencies) from ``qubit``'s first use.

    A fault at ``qubit`` can only propagate to qubits in this set.
    """
    dag = build_dag(circuit)
    first = None
    for idx, gate in enumerate(circuit):
        if qubit in gate.qubits:
            first = idx
            break
    if first is None:
        return set()
    reach = {first} | set(nx.descendants(dag, first))
    cone: Set[int] = set()
    for idx in reach:
        cone.update(circuit[idx].qubits)
    return cone


def topological_layers(circuit: Circuit) -> List[List[int]]:
    """Partition gate indices into parallel layers (ASAP schedule)."""
    level: Dict[int, int] = {}
    qubit_level: Dict[int, int] = {}
    layers: List[List[int]] = []
    for idx, gate in enumerate(circuit):
        t = max((qubit_level.get(q, 0) for q in gate.qubits), default=0)
        if gate.gate_type is GateType.BARRIER:
            for q in gate.qubits:
                qubit_level[q] = t
            continue
        level[idx] = t
        for q in gate.qubits:
            qubit_level[q] = t + 1
        while len(layers) <= t:
            layers.append([])
        layers[t].append(idx)
    return layers


def critical_path_length(circuit: Circuit) -> int:
    """Length of the longest dependency chain (equals circuit depth)."""
    return len(topological_layers(circuit))
