"""The :class:`Circuit` container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
operations over ``num_qubits`` qubits and ``num_cbits`` classical bits.
It is deliberately minimal — the simulators, noise binder, transpiler
and code builders all consume or emit this one structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate, GateType, TWO_QUBIT_GATES


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits addressed by the circuit.
    num_cbits:
        Number of classical bits.  Grows automatically when a measure
        targeting a larger index is appended.
    name:
        Optional human-readable label.
    """

    def __init__(self, num_qubits: int, num_cbits: int = 0, name: str = "") -> None:
        if num_qubits <= 0:
            raise ValueError("circuit needs at least one qubit")
        if num_cbits < 0:
            raise ValueError("num_cbits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_cbits = int(num_cbits)
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx):
        return self._gates[idx]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_cbits == other.num_cbits
            and self._gates == other._gates
        )

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a prebuilt :class:`Gate` (validates qubit bounds)."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        if gate.cbit is not None and gate.cbit >= self.num_cbits:
            self.num_cbits = gate.cbit + 1
        self._gates.append(gate)
        return self

    def _add(self, gate_type: GateType, *qubits: int, cbit: Optional[int] = None,
             tag: str = "") -> "Circuit":
        return self.append(Gate(gate_type, tuple(qubits), cbit=cbit, tag=tag))

    def i(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.I, q, tag=tag)

    def x(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.X, q, tag=tag)

    def y(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.Y, q, tag=tag)

    def z(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.Z, q, tag=tag)

    def h(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.H, q, tag=tag)

    def s(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.S, q, tag=tag)

    def sdg(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.SDG, q, tag=tag)

    def cx(self, control: int, target: int, tag: str = "") -> "Circuit":
        return self._add(GateType.CX, control, target, tag=tag)

    def cz(self, a: int, b: int, tag: str = "") -> "Circuit":
        return self._add(GateType.CZ, a, b, tag=tag)

    def swap(self, a: int, b: int, tag: str = "") -> "Circuit":
        return self._add(GateType.SWAP, a, b, tag=tag)

    def reset(self, q: int, tag: str = "") -> "Circuit":
        return self._add(GateType.RESET, q, tag=tag)

    def measure(self, q: int, cbit: int, tag: str = "") -> "Circuit":
        return self._add(GateType.MEASURE, q, cbit=cbit, tag=tag)

    def barrier(self, *qubits: int, tag: str = "") -> "Circuit":
        qs = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Gate(GateType.BARRIER, qs, tag=tag))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for g in gates:
            self.append(g)
        return self

    # ------------------------------------------------------------------
    # Composition / transformation
    # ------------------------------------------------------------------
    def compose(self, other: "Circuit",
                qubit_map: Optional[Sequence[int]] = None,
                cbit_offset: Optional[int] = None) -> "Circuit":
        """Append another circuit's gates onto this circuit in place.

        Parameters
        ----------
        other:
            Circuit to append.
        qubit_map:
            ``qubit_map[i]`` gives the qubit of ``self`` that qubit
            ``i`` of ``other`` maps onto.  Defaults to the identity.
        cbit_offset:
            Offset added to every classical bit of ``other``.  Defaults
            to ``self.num_cbits`` (i.e. fresh bits).
        """
        if qubit_map is None:
            if other.num_qubits > self.num_qubits:
                raise ValueError("composed circuit has more qubits than target")
            qubit_map = list(range(other.num_qubits))
        if len(qubit_map) < other.num_qubits:
            raise ValueError("qubit_map too short")
        offset = self.num_cbits if cbit_offset is None else cbit_offset
        for g in other:
            cbit = None if g.cbit is None else g.cbit + offset
            self.append(Gate(g.gate_type, tuple(qubit_map[q] for q in g.qubits),
                             cbit=cbit, tag=g.tag))
        return self

    def remap_qubits(self, mapping) -> "Circuit":
        """Return a new circuit with all qubit indices remapped.

        ``mapping`` maps old index -> new index and must be injective on
        the qubits used.  The resulting circuit has ``num_qubits`` equal
        to ``max(new indices) + 1`` (at least the current size when the
        mapping is a permutation).
        """
        if isinstance(mapping, dict):
            values = list(mapping.values())
        else:
            values = list(mapping)
        new_n = max(values) + 1 if values else self.num_qubits
        out = Circuit(max(new_n, 1), self.num_cbits, name=self.name)
        for g in self._gates:
            out.append(g.remap(mapping))
        return out

    def without_tag(self, tag: str) -> "Circuit":
        """Return a copy with every gate carrying ``tag`` removed."""
        out = Circuit(self.num_qubits, self.num_cbits, name=self.name)
        for g in self._gates:
            if g.tag != tag:
                out.append(g)
        return out

    def copy(self) -> "Circuit":
        out = Circuit(self.num_qubits, self.num_cbits, name=self.name)
        out._gates = list(self._gates)
        return out

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (requires all gates unitary)."""
        out = Circuit(self.num_qubits, self.num_cbits, name=f"{self.name}_inv")
        for g in reversed(self._gates):
            if g.is_barrier:
                out.append(g)
                continue
            out.append(g.inverse())
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_measurements(self) -> int:
        return sum(1 for g in self._gates if g.is_measurement)

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self._gates if g.gate_type in TWO_QUBIT_GATES)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate types by name."""
        counts: Dict[str, int] = {}
        for g in self._gates:
            counts[g.gate_type.value] = counts.get(g.gate_type.value, 0) + 1
        return counts

    def qubits_used(self) -> Tuple[int, ...]:
        """Sorted tuple of qubit indices touched by at least one gate."""
        seen = set()
        for g in self._gates:
            if g.is_barrier:
                continue
            seen.update(g.qubits)
        return tuple(sorted(seen))

    def gate_sites(self, qubit: int) -> List[int]:
        """Indices into the gate list of operations touching ``qubit``."""
        return [i for i, g in enumerate(self._gates)
                if not g.is_barrier and qubit in g.qubits]

    def depth(self) -> int:
        """Circuit depth counting each non-barrier gate as unit time."""
        level = [0] * self.num_qubits
        depth = 0
        for g in self._gates:
            if g.is_barrier:
                base = max((level[q] for q in g.qubits), default=0)
                for q in g.qubits:
                    level[q] = base
                continue
            t = max(level[q] for q in g.qubits) + 1
            for q in g.qubits:
                level[q] = t
            depth = max(depth, t)
        return depth

    def interaction_graph(self):
        """Return the qubit interaction multigraph as an edge-count dict.

        Keys are sorted qubit pairs ``(a, b)``; values count two-qubit
        gates between them.  Used by the transpiler's layout stage.
        """
        edges: Dict[Tuple[int, int], int] = {}
        for g in self._gates:
            if g.gate_type in TWO_QUBIT_GATES:
                a, b = sorted(g.qubits)
                edges[(a, b)] = edges.get((a, b), 0) + 1
        return edges

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"<Circuit{label}: {self.num_qubits} qubits, "
                f"{self.num_cbits} cbits, {len(self._gates)} gates>")
