"""ASCII rendering of circuits, in the spirit of the paper's Figs. 1-2.

Only intended for human inspection in examples and debugging; the
renderer favours readability over compactness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .circuit import Circuit
from .dag import topological_layers
from .gates import GateType

_SINGLE_LABELS = {
    GateType.I: "I",
    GateType.X: "X",
    GateType.Y: "Y",
    GateType.Z: "Z",
    GateType.H: "H",
    GateType.S: "S",
    GateType.SDG: "S+",
    GateType.RESET: "|0>",
}


def draw(circuit: Circuit, qubit_labels: Optional[Sequence[str]] = None,
         max_width: int = 120) -> str:
    """Render ``circuit`` as an ASCII diagram.

    Parameters
    ----------
    circuit:
        Circuit to draw.
    qubit_labels:
        Optional per-qubit row labels; defaults to ``q0, q1, ...``.
    max_width:
        Wrap the diagram into stacked blocks of at most this width.
    """
    n = circuit.num_qubits
    if qubit_labels is None:
        qubit_labels = [f"q{i}" for i in range(n)]
    if len(qubit_labels) != n:
        raise ValueError("need one label per qubit")
    label_w = max(len(s) for s in qubit_labels) + 1

    layers = topological_layers(circuit)
    columns: List[List[str]] = []
    for layer in layers:
        col = ["-"] * n
        cell_w = 1
        for idx in layer:
            gate = circuit[idx]
            if gate.gate_type is GateType.CX:
                c, t = gate.qubits
                col[c] = "*"
                col[t] = "+"
                lo, hi = sorted((c, t))
                for q in range(lo + 1, hi):
                    col[q] = "|" if col[q] == "-" else col[q]
            elif gate.gate_type is GateType.CZ:
                a, b = gate.qubits
                col[a] = "*"
                col[b] = "*"
                lo, hi = sorted((a, b))
                for q in range(lo + 1, hi):
                    col[q] = "|" if col[q] == "-" else col[q]
            elif gate.gate_type is GateType.SWAP:
                a, b = gate.qubits
                col[a] = "x"
                col[b] = "x"
                lo, hi = sorted((a, b))
                for q in range(lo + 1, hi):
                    col[q] = "|" if col[q] == "-" else col[q]
            elif gate.gate_type is GateType.MEASURE:
                col[gate.qubits[0]] = f"M{gate.cbit}"
            else:
                col[gate.qubits[0]] = _SINGLE_LABELS.get(gate.gate_type, "?")
        cell_w = max(len(s) for s in col) + 2
        columns.append([s.center(cell_w, "-").replace(" ", "-") if s != "|"
                        else ("|".center(cell_w, " ")) for s in col])

    # Assemble rows, wrapping at max_width.
    blocks: List[str] = []
    start = 0
    while start < len(columns) or (start == 0 and not columns):
        rows = [qubit_labels[q].rjust(label_w) + ":" for q in range(n)]
        width = label_w + 1
        end = start
        while end < len(columns):
            cell_w = len(columns[end][0])
            if width + cell_w > max_width and end > start:
                break
            for q in range(n):
                rows[q] += columns[end][q]
            width += cell_w
            end += 1
        blocks.append("\n".join(rows))
        if end == start:
            break
        start = end
    return "\n\n".join(blocks)
