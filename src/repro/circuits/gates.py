"""Gate definitions for the Clifford circuit IR.

The gate set is restricted to Clifford operations plus the non-unitary
``RESET`` and ``MEASURE`` operations, which is exactly the set needed to
express surface-code syndrome-extraction circuits, Pauli noise channels
and the radiation-induced reset faults studied in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class GateType(enum.Enum):
    """Enumeration of supported operations."""

    # Single-qubit Cliffords.
    I = "i"
    X = "x"
    Y = "y"
    Z = "z"
    H = "h"
    S = "s"
    SDG = "sdg"
    # Two-qubit Cliffords.
    CX = "cx"
    CZ = "cz"
    SWAP = "swap"
    # Non-unitary operations.
    RESET = "reset"
    MEASURE = "measure"
    # Structural marker (no effect on state; blocks DAG reordering).
    BARRIER = "barrier"


#: Gate types that act unitarily on the state.
UNITARY_GATES = frozenset(
    {
        GateType.I,
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.S,
        GateType.SDG,
        GateType.CX,
        GateType.CZ,
        GateType.SWAP,
    }
)

#: Gate types acting on exactly two qubits.
TWO_QUBIT_GATES = frozenset({GateType.CX, GateType.CZ, GateType.SWAP})

#: Gate types acting on exactly one qubit.
SINGLE_QUBIT_GATES = frozenset(
    {
        GateType.I,
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.S,
        GateType.SDG,
        GateType.RESET,
        GateType.MEASURE,
    }
)

#: Pauli gate types (used by noise channels).
PAULI_GATES = (GateType.X, GateType.Y, GateType.Z)

#: Self-inverse gate types.
SELF_INVERSE_GATES = frozenset(
    {
        GateType.I,
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.CX,
        GateType.CZ,
        GateType.SWAP,
    }
)

_INVERSES = {
    GateType.S: GateType.SDG,
    GateType.SDG: GateType.S,
}


@dataclass(frozen=True)
class Gate:
    """A single operation applied to one or two qubits.

    Attributes
    ----------
    gate_type:
        The kind of operation.
    qubits:
        Qubit indices the operation acts on.  For ``CX`` the convention
        is ``(control, target)``.
    cbit:
        Classical bit index receiving the outcome for ``MEASURE``;
        ``None`` for every other gate type.
    tag:
        Free-form provenance label (e.g. ``"noise"``, ``"fault"``,
        ``"swap-route"``).  Structural code, noise binding and analysis
        use tags to distinguish ideal circuit operations from injected
        ones.
    """

    gate_type: GateType
    qubits: Tuple[int, ...]
    cbit: Optional[int] = None
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.gate_type is GateType.BARRIER:
            if not self.qubits:
                raise ValueError("barrier needs at least one qubit")
        elif self.gate_type in TWO_QUBIT_GATES:
            if len(self.qubits) != 2:
                raise ValueError(
                    f"{self.gate_type.value} expects 2 qubits, got {self.qubits!r}"
                )
            if self.qubits[0] == self.qubits[1]:
                raise ValueError(
                    f"{self.gate_type.value} qubits must differ, got {self.qubits!r}"
                )
        else:
            if len(self.qubits) != 1:
                raise ValueError(
                    f"{self.gate_type.value} expects 1 qubit, got {self.qubits!r}"
                )
        if self.gate_type is GateType.MEASURE:
            if self.cbit is None:
                raise ValueError("measure requires a classical bit index")
        elif self.cbit is not None:
            raise ValueError(f"{self.gate_type.value} must not carry a cbit")

    @property
    def is_unitary(self) -> bool:
        """Whether this operation is reversible (no collapse)."""
        return self.gate_type in UNITARY_GATES

    @property
    def is_measurement(self) -> bool:
        return self.gate_type is GateType.MEASURE

    @property
    def is_reset(self) -> bool:
        return self.gate_type is GateType.RESET

    @property
    def is_barrier(self) -> bool:
        return self.gate_type is GateType.BARRIER

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def inverse(self) -> "Gate":
        """Return the inverse gate.

        Raises
        ------
        ValueError
            If the operation is not unitary (measure/reset have no
            inverse).
        """
        if self.gate_type in SELF_INVERSE_GATES:
            return self
        inv = _INVERSES.get(self.gate_type)
        if inv is None:
            raise ValueError(f"{self.gate_type.value} has no inverse")
        return Gate(inv, self.qubits, tag=self.tag)

    def remap(self, mapping) -> "Gate":
        """Return a copy with qubit indices remapped through ``mapping``.

        ``mapping`` may be a dict or a sequence indexed by old qubit.
        """
        if isinstance(mapping, dict):
            new_qubits = tuple(mapping[q] for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        return Gate(self.gate_type, new_qubits, cbit=self.cbit, tag=self.tag)

    def __str__(self) -> str:
        args = ",".join(str(q) for q in self.qubits)
        if self.gate_type is GateType.MEASURE:
            return f"measure q{args} -> c{self.cbit}"
        return f"{self.gate_type.value} q{args}"
