"""Clifford circuit intermediate representation.

Public surface:

* :class:`~repro.circuits.gates.Gate` / :class:`~repro.circuits.gates.GateType`
* :class:`~repro.circuits.circuit.Circuit`
* DAG analysis helpers (:func:`build_dag`, :func:`qubit_descendant_counts`, ...)
* :func:`~repro.circuits.visual.draw`
"""

from .gates import (
    Gate,
    GateType,
    PAULI_GATES,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    UNITARY_GATES,
)
from .circuit import Circuit
from .dag import (
    build_dag,
    critical_path_length,
    gate_descendants,
    qubit_descendant_counts,
    qubit_light_cone,
    topological_layers,
)
from .visual import draw

__all__ = [
    "Gate",
    "GateType",
    "PAULI_GATES",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "UNITARY_GATES",
    "Circuit",
    "build_dag",
    "critical_path_length",
    "gate_descendants",
    "qubit_descendant_counts",
    "qubit_light_cone",
    "topological_layers",
    "draw",
]
