"""Minimum-weight perfect-matching decoder (paper §II-D).

Flagged detectors are matched pairwise (or to the boundary) so that the
total shortest-path weight is minimal; the correction applied to the raw
readout is the XOR of the logical parities along the matched paths.

Two exact matching engines:

* a bitmask dynamic program, optimal and fast for up to ~16 events
  (covers virtually every shot of the paper's codes), and
* NetworkX ``max_weight_matching`` on the negated-weight event graph
  with per-event boundary copies, used for larger event sets.

Identical syndromes decode identically, so shots are deduplicated
before matching — a large win at low fault intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import networkx as nx
import numpy as np

from .base import Decoder
from .detector_graph import DetectorGraph

#: Event-count threshold below which the exact bitmask DP is used.
_DP_LIMIT = 16

#: Tie-break: at equal weight, pairing two defects (one error chain) is
#: more probable than two independent boundary chains, so boundary
#: matches carry an epsilon penalty.
_BOUNDARY_BIAS = 1e-6


def _dp_match(events: Tuple[int, ...], dist: np.ndarray, parity: np.ndarray,
              bcol: int) -> Tuple[float, int]:
    """Exact min-weight matching via bitmask DP.

    Each event is either paired with another event or matched to the
    boundary.  Returns ``(total weight, correction parity)``.
    """
    k = len(events)
    full = (1 << k) - 1
    INF = float("inf")
    # memo[mask] = (cost, parity) for the unmatched set ``mask``.
    memo: Dict[int, Tuple[float, int]] = {0: (0.0, 0)}

    def solve(mask: int) -> Tuple[float, int]:
        hit = memo.get(mask)
        if hit is not None:
            return hit
        i = (mask & -mask).bit_length() - 1  # lowest unmatched event
        ei = events[i]
        # Option 1: match i to the boundary (epsilon-penalised so ties
        # resolve toward defect pairing).
        rest_cost, rest_par = solve(mask & ~(1 << i))
        best = (dist[ei, bcol] + _BOUNDARY_BIAS + rest_cost,
                int(parity[ei, bcol]) ^ rest_par)
        # Option 2: pair i with some j.
        rem = mask & ~(1 << i)
        mm = rem
        while mm:
            j = (mm & -mm).bit_length() - 1
            mm &= mm - 1
            ej = events[j]
            d = dist[ei, ej]
            if np.isfinite(d):
                c, p = solve(rem & ~(1 << j))
                cand = (d + c, int(parity[ei, ej]) ^ p)
                if cand[0] < best[0]:
                    best = cand
        memo[mask] = best
        return best

    return solve(full)


def _nx_match(events: Tuple[int, ...], dist: np.ndarray, parity: np.ndarray,
              bcol: int) -> Tuple[float, int]:
    """Exact min-weight matching via NetworkX blossom on negated weights."""
    k = len(events)
    g = nx.Graph()
    for i in range(k):
        g.add_node(("e", i))
        g.add_node(("b", i))
        g.add_edge(("e", i), ("b", i),
                   weight=-float(dist[events[i], bcol]) - _BOUNDARY_BIAS)
        for j in range(i + 1, k):
            d = dist[events[i], events[j]]
            if np.isfinite(d):
                g.add_edge(("e", i), ("e", j), weight=-float(d))
            g.add_edge(("b", i), ("b", j), weight=0.0)
    matching = nx.max_weight_matching(g, maxcardinality=True)
    total = 0.0
    corr = 0
    for a, b in matching:
        if a[0] == "b" and b[0] == "b":
            continue
        if a[0] == "e" and b[0] == "e":
            total += float(dist[events[a[1]], events[b[1]]])
            corr ^= int(parity[events[a[1]], events[b[1]]])
        else:
            e = a if a[0] == "e" else b
            total += float(dist[events[e[1]], bcol])
            corr ^= int(parity[events[e[1]], bcol])
    return total, corr


@dataclass
class MWPMDecoder(Decoder):
    """MWPM decoder bound to a detector graph.

    ``use_final_data`` selects the qtcodes-style data-readout decode
    (see :func:`~repro.decoders.base.prepare_decode_inputs`); the graph
    must then carry ``rounds + 1`` rounds (handled by ``decoder_for``).
    ``cache_decodes`` enables the cross-batch syndrome-dedup cache.
    """

    graph: DetectorGraph
    use_final_data: bool = True
    cache_decodes: bool = True

    @property
    def name(self) -> str:
        return "mwpm"

    # ------------------------------------------------------------------
    def _decode_pattern(self, detector_bits: np.ndarray) -> int:
        """Decode one flattened detector pattern -> readout correction.

        Shortest-path distances respect the graph's edge weights, so a
        reweighted graph (burst-adaptive recovery) changes the matching
        through this one table."""
        events = tuple(int(i) for i in np.nonzero(detector_bits)[0])
        if not events:
            return 0
        dist = self.graph.distances
        parity = self.graph.parities
        bcol = self.graph.num_nodes
        if len(events) <= _DP_LIMIT:
            _, corr = _dp_match(events, dist, parity, bcol)
        else:
            _, corr = _nx_match(events, dist, parity, bcol)
        return corr

