"""Declarative decoder specifications.

A :class:`DecoderSpec` names everything about how a campaign point
decodes its syndromes — mirroring :class:`~repro.rare.sampler.
SamplerSpec` for the sampling side:

``kind``
    ``"mwpm"`` (the paper's minimum-weight perfect matcher, default) or
    ``"union-find"`` (the almost-linear-time alternative).
``weighting``
    ``"weighted"`` (default) — decoders consume per-edge graph weights:
    MWPM through its shortest-path tables (as it always has), union-find
    through weighted cluster growth, where low-weight (likely) edges
    complete before unit edges.  ``"uniform"`` pins the legacy
    half-step union-find growth that reacts only to fully erased edges.
    On unit-weight graphs the two settings decode bit-identically.
``cache``
    Enable the syndrome-dedup decode cache: each distinct detector
    pattern is decoded once per decoder instance and the correction
    parity is replayed on every later hit — exact, since the decode is
    a pure function of (pattern, graph).  Disable only to measure the
    cache itself; results are bit-identical either way.
``hook_edges``
    Add correlated *hook* edges to the detector graph: space-time
    diagonal mechanisms from mid-round data errors that flip one
    plaquette this round and its partner next round.  Off by default
    (the seed graphs have no hooks, and the flag changes decode
    results, so it participates in the task identity).

The spec is a frozen dataclass — it pickles cheaply, hashes (so the
worker-side ``lru_cache`` of prepared decoders keys on it), and
participates in the campaign store's task key: a different decoding
configuration counts different errors, so it must shape the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Union

#: Recognised decoder kinds (canonical names).
DECODER_KINDS = ("mwpm", "union-find")

#: Accepted aliases, normalised at construction so specs (and the task
#: keys derived from them) never depend on caller spelling.
_KIND_ALIASES = {
    "mwpm": "mwpm",
    "matching": "mwpm",
    "union-find": "union-find",
    "unionfind": "union-find",
    "uf": "union-find",
}

#: Recognised weighting modes.
WEIGHTING_MODES = ("weighted", "uniform")

#: ``kind:modifier`` string grammar (CLI / sweep specs): comma-separated
#: modifiers after the colon.
_MODIFIERS = ("hooks", "nocache", "uniform")


@dataclass(frozen=True)
class DecoderSpec:
    """How a campaign point decodes its syndrome batches.

    Parameters
    ----------
    kind:
        ``"mwpm"`` (default) or ``"union-find"`` (aliases ``"uf"``,
        ``"unionfind"`` normalise).
    weighting:
        ``"weighted"`` (default) or ``"uniform"`` — see the module
        docstring.  Only union-find growth distinguishes the two;
        MWPM's matching is weight-aware in both modes.
    cache:
        Syndrome-dedup decode cache on/off (default on; exact either
        way).
    hook_edges:
        Build the detector graph with correlated hook edges (default
        off — changes decode results, so it is part of task identity).
    """

    kind: str = "mwpm"
    weighting: str = "weighted"
    cache: bool = True
    hook_edges: bool = False

    def __post_init__(self) -> None:
        canonical = _KIND_ALIASES.get(str(self.kind))
        if canonical is None:
            # KeyError, matching decoder_for's historical registry-miss
            # contract (unknown kinds are lookup failures, not values).
            raise KeyError(f"unknown decoder {self.kind!r}; expected one "
                           f"of {DECODER_KINDS}")
        object.__setattr__(self, "kind", canonical)
        if self.weighting not in WEIGHTING_MODES:
            raise ValueError(
                f"unknown weighting mode {self.weighting!r}; expected "
                f"one of {WEIGHTING_MODES}")

    @property
    def label(self) -> str:
        """Short identifier used in result rows and reports."""
        mods = []
        if self.hook_edges:
            mods.append("hooks")
        if self.weighting != "weighted":
            mods.append("uniform")
        if not self.cache:
            mods.append("nocache")
        return self.kind + (":" + ",".join(mods) if mods else "")


def as_decoder(obj: Union["DecoderSpec", str, Mapping[str, Any], None]
               ) -> DecoderSpec:
    """Coerce a sweep-spec / CLI decoder description into a spec.

    Accepts a ready :class:`DecoderSpec`, ``None`` (defaults), a kind
    string with optional modifiers (``"mwpm"``, ``"uf"``,
    ``"union-find:hooks"``, ``"mwpm:hooks,nocache"``), or a JSON
    mapping ``{"kind": "union-find", "hook_edges": true, ...}``.
    """
    if obj is None:
        return DecoderSpec()
    if isinstance(obj, DecoderSpec):
        return obj
    if isinstance(obj, str):
        kind, _, arg = obj.partition(":")
        kwargs: dict = {}
        for mod in filter(None, (m.strip() for m in arg.split(","))):
            if mod == "hooks":
                kwargs["hook_edges"] = True
            elif mod == "nocache":
                kwargs["cache"] = False
            elif mod == "uniform":
                kwargs["weighting"] = "uniform"
            else:
                raise ValueError(
                    f"unknown decoder modifier {mod!r}; expected one of "
                    f"{_MODIFIERS}")
        return DecoderSpec(kind=kind, **kwargs)
    if isinstance(obj, Mapping):
        return DecoderSpec(**{str(k): v for k, v in obj.items()})
    raise ValueError(f"cannot parse decoder spec {obj!r}")
