"""Decoder interface and result container.

The canonical entry point is :meth:`Decoder.decode_batch` over a
:class:`~repro.decoders.batch.SyndromeBatch` — one call per simulation
block, consuming either the frame backend's packed word stream directly
(bit-sliced column extraction, no full-record unpack) or plain uint8
record rows.  Concrete decoders implement one method,
:meth:`Decoder._decode_pattern`: decode a single flattened detector
pattern to a readout-correction parity.  Everything batchy — syndrome
extraction, detector differencing, per-batch deduplication, the
cross-batch :class:`~repro.decoders.batch.DecodeCache`, correction
scatter — is shared here.

The pre-batch entry points ``correction_parity`` and ``decode_prepared``
remain as thin deprecated shims (emitting :class:`DeprecationWarning`)
and will be removed once external callers have migrated; in-repo code
uses ``decode_batch`` / ``decode_detectors``.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import numpy as np

from .. import obs
from ..obs import prof as _prof
from ..codes.base import MemoryExperiment
from ..frames.packing import column_counts, unpack_words
from .batch import (DecodeCache, SyndromeBatch, pack_pattern_columns,
                    prepare_packed_inputs)

# Hot-path metric handles (module-level so the per-batch cost is a few
# integer adds; the registry resets these in place, keeping them valid).
_OBS_PATTERNS = obs.counter("decode.patterns")
_OBS_DISTINCT = obs.counter("decode.distinct_patterns")
_OBS_HITS = obs.counter("decode.cache_hits")
_OBS_MISSES = obs.counter("decode.cache_misses")


@dataclass
class DecodeResult:
    """Outcome of decoding a batch of shots.

    Attributes
    ----------
    decoded:
        Per-shot decoded logical value, shape ``(B,)``.
    expected:
        The logical value a noise-free run produces.
    corrections:
        Per-shot readout-correction parity the decoder applied.
    """

    decoded: np.ndarray
    expected: int
    corrections: np.ndarray

    @property
    def num_shots(self) -> int:
        return int(self.decoded.shape[0])

    @property
    def errors(self) -> np.ndarray:
        """Boolean per-shot logical-error flags."""
        return self.decoded != self.expected

    @property
    def num_errors(self) -> int:
        return int(np.count_nonzero(self.errors))

    @property
    def logical_error_rate(self) -> float:
        """Fraction of shots decoding to the wrong logical value
        (the paper's §IV-C metric)."""
        return self.num_errors / self.num_shots if self.num_shots else 0.0


class Decoder(abc.ABC):
    """Abstract syndrome decoder.

    Concrete decoders carry a ``graph`` (:class:`~repro.decoders.
    detector_graph.DetectorGraph`), a ``use_final_data`` flag and a
    ``cache_decodes`` switch, and implement :meth:`_decode_pattern` —
    the per-pattern decode.  The batch pipeline (packed or row-wise
    syndrome extraction, detector differencing, unique-pattern
    deduplication, the cross-batch decode cache, readout correction) is
    shared here, so alternate decode strategies — a reweighted graph,
    pre-modified detectors — plug in at :meth:`_decode_prepared`
    without duplicating it.
    """

    graph: "object"
    use_final_data: bool
    #: Per-instance syndrome-dedup cache switch (dataclass field on the
    #: concrete decoders; read via ``getattr`` so bare subclasses work).
    cache_decodes: bool = True
    #: Whether :meth:`decode_batch` consumes packed word streams
    #: natively.  The shared pipeline handles both forms, so any
    #: subclass inheriting it is packed-native; third-party decoders
    #: that override ``decode_batch`` with a rows-only implementation
    #: advertise ``False`` and the campaign engine unpacks for them.
    packed_native: bool = True

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in reports."""

    @abc.abstractmethod
    def _decode_pattern(self, detector_bits: np.ndarray) -> int:
        """Decode one flattened detector pattern -> readout correction."""

    # ------------------------------------------------------------------
    # Syndrome-dedup decode cache
    # ------------------------------------------------------------------
    def _cache(self) -> Optional[DecodeCache]:
        """The instance's decode cache (lazily created), or ``None``
        when caching is disabled.  Stored outside the dataclass fields
        so ``dataclasses.replace(self, graph=...)`` copies start fresh
        — cached parities are only valid against their own graph."""
        if not getattr(self, "cache_decodes", True):
            return None
        cache = self.__dict__.get("_decode_cache")
        if cache is None:
            cache = DecodeCache()
            self.__dict__["_decode_cache"] = cache
        return cache

    @property
    def cache_info(self) -> Optional[DecodeCache]:
        """The live cache for diagnostics (``None`` when disabled or
        never touched)."""
        if not getattr(self, "cache_decodes", True):
            return None
        return self.__dict__.get("_decode_cache")

    def _pattern_parities(self, keys: np.ndarray, num_detectors: int
                          ) -> np.ndarray:
        """Correction parities for packed pattern keys, shape ``(N,)``.

        ``keys`` is ``(N, ceil(num_detectors / 8))`` uint8 — little-
        endian packed detector patterns.  Patterns are deduplicated
        within the batch, each distinct one resolved through the decode
        cache (or :meth:`_decode_pattern` on a miss), and the parities
        scattered back — exact, since identical patterns decode
        identically.

        With a profiler enabled the three stages — pattern dedup,
        cache probe, matcher — are attributed separately
        (``decode.dedup`` / ``decode.cache_probe`` /
        ``decode.matcher``); one ``None`` check per batch otherwise.
        """
        prof = _prof._ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        if prof is not None:
            prof.stage("decode.dedup", perf_counter() - t0)
        cache = self._cache()
        _OBS_PATTERNS.inc(int(keys.shape[0]))
        _OBS_DISTINCT.inc(int(uniq.shape[0]))
        out = np.empty(uniq.shape[0], dtype=np.uint8)
        misses = 0
        if prof is None:
            for i in range(uniq.shape[0]):
                key = uniq[i].tobytes()
                parity = cache.get(num_detectors, key) \
                    if cache is not None else None
                if parity is None:
                    misses += 1
                    bits = np.unpackbits(uniq[i], count=num_detectors,
                                         bitorder="little")
                    parity = int(self._decode_pattern(bits)) & 1
                    if cache is not None:
                        cache.put(num_detectors, key, parity)
                out[i] = parity
        else:
            pc = perf_counter
            probe_s = 0.0
            match_s = 0.0
            for i in range(uniq.shape[0]):
                t1 = pc()
                key = uniq[i].tobytes()
                parity = cache.get(num_detectors, key) \
                    if cache is not None else None
                probe_s += pc() - t1
                if parity is None:
                    misses += 1
                    t2 = pc()
                    bits = np.unpackbits(uniq[i], count=num_detectors,
                                         bitorder="little")
                    parity = int(self._decode_pattern(bits)) & 1
                    match_s += pc() - t2
                    if cache is not None:
                        cache.put(num_detectors, key, parity)
                out[i] = parity
            prof.stage("decode.cache_probe", probe_s,
                       calls=int(uniq.shape[0]))
            if misses:
                prof.stage("decode.matcher", match_s, calls=misses)
        _OBS_MISSES.inc(misses)
        _OBS_HITS.inc(int(uniq.shape[0]) - misses)
        return out[inverse]

    # ------------------------------------------------------------------
    # Canonical batch API
    # ------------------------------------------------------------------
    def decode_batch(self, experiment: MemoryExperiment, batch,
                     record_words: Optional[np.ndarray] = None
                     ) -> DecodeResult:
        """Decode one batch of shots — the single canonical entry point.

        ``batch`` is a :class:`~repro.decoders.batch.SyndromeBatch`, or
        (legacy form) a ``(B, num_cbits)`` record array with an optional
        ``record_words`` word stream alongside.  Packed batches decode
        without ever unpacking the full record block: syndrome
        extraction and detector differencing stay in the word domain,
        only the shots with at least one detection event (found by a
        bit-sliced popcount) have their pattern columns extracted.
        """
        batch = SyndromeBatch.coerce(batch, record_words)
        if batch.packed:
            return self._decode_packed(experiment, batch)
        det, raw = prepare_decode_inputs(experiment, batch.records,
                                         self.graph, self.use_final_data)
        return self._decode_prepared(experiment, det, raw)

    def decode_detectors(self, detector_bits: np.ndarray) -> int:
        """Decode one flattened detector pattern -> correction parity.

        The public per-pattern entry point (cross-validation, ablation
        studies); resolves through the decode cache.
        """
        bits = np.ascontiguousarray(
            np.asarray(detector_bits).reshape(-1).astype(np.uint8))
        if bits.size == 0:
            return 0
        keys = np.packbits(bits[None, :], axis=1, bitorder="little")
        return int(self._pattern_parities(keys, bits.size)[0])

    # ------------------------------------------------------------------
    # Shared pipeline internals
    # ------------------------------------------------------------------
    def _decode_packed(self, experiment: MemoryExperiment,
                       batch: SyndromeBatch) -> DecodeResult:
        prof = _prof._ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        det_words, raw_words = prepare_packed_inputs(
            experiment, batch.record_words, batch.batch_size, self.graph,
            self.use_final_data)
        if prof is not None:
            prof.stage("decode.prepare", perf_counter() - t0)
        B = batch.batch_size
        raw = unpack_words(raw_words, B)
        rounds_eff, P, W = det_words.shape
        D = rounds_eff * P
        corrections = np.zeros(B, dtype=np.uint8)
        if D:
            planes = np.ascontiguousarray(det_words.reshape(D, W))
            # Tail-safe per-shot event counts: shots with zero events
            # decode to the identity, so only active shots are keyed.
            active = np.nonzero(column_counts(planes, B))[0]
            if active.size:
                keys = pack_pattern_columns(planes, active)
                corrections[active] = self._pattern_parities(keys, D)
        return DecodeResult(decoded=raw ^ corrections,
                            expected=experiment.expected_logical,
                            corrections=corrections)

    def _decode_prepared(self, experiment: MemoryExperiment,
                         det: np.ndarray, raw: np.ndarray) -> DecodeResult:
        """Decode already-extracted detectors ``(B, rounds, P)`` against
        raw readout ``(B,)`` (row-domain tail of the shared pipeline —
        also the hook for pre-modified detectors, e.g. window
        discards)."""
        B = det.shape[0]
        flat = np.ascontiguousarray(
            det.reshape(B, -1).astype(np.uint8, copy=False))
        if flat.shape[1] == 0:
            return DecodeResult(decoded=raw.copy(),
                                expected=experiment.expected_logical,
                                corrections=np.zeros(B, dtype=np.uint8))
        keys = np.packbits(flat, axis=1, bitorder="little")
        corrections = self._pattern_parities(keys, flat.shape[1])
        return DecodeResult(decoded=raw ^ corrections,
                            expected=experiment.expected_logical,
                            corrections=corrections)

    # ------------------------------------------------------------------
    # Deprecated pre-batch entry points (shims)
    # ------------------------------------------------------------------
    def correction_parity(self, detector_bits: np.ndarray) -> int:
        """Deprecated: use :meth:`decode_detectors`."""
        warnings.warn(
            "Decoder.correction_parity is deprecated; use "
            "decode_detectors (cached per-pattern decode)",
            DeprecationWarning, stacklevel=2)
        return self.decode_detectors(detector_bits)

    def decode_prepared(self, experiment: MemoryExperiment,
                        det: np.ndarray, raw: np.ndarray) -> DecodeResult:
        """Deprecated: build a :class:`~repro.decoders.batch.
        SyndromeBatch` and call :meth:`decode_batch` instead."""
        warnings.warn(
            "Decoder.decode_prepared is deprecated; use decode_batch "
            "over a SyndromeBatch", DeprecationWarning, stacklevel=2)
        return self._decode_prepared(experiment, det, raw)


def prepare_decode_inputs(experiment: MemoryExperiment, records: np.ndarray,
                          graph, use_final_data: bool):
    """Shared row-domain front-end for syndrome decoders.

    Returns ``(detectors, raw_logical)`` where ``detectors`` has shape
    ``(B, rounds_eff, P)``.

    Two readout modes:

    * **ancilla** (``use_final_data=False``) — the raw logical value is
      the dedicated parity-ancilla measurement of Figs. 1-2 and only the
      mid-circuit syndrome rounds feed the decoder.  A corrupted readout
      ancilla is undetectable in this mode.
    * **data** (``use_final_data=True``, qtcodes-style) — the final
      transversal data measurement provides both the logical parity and
      one extra reconstructed syndrome round, so late and readout-path
      errors stay decodable.  Requires the experiment to include data
      measurements and the decode basis to match the memory basis.

    The word-domain mirror is :func:`~repro.decoders.batch.
    prepare_packed_inputs`.
    """
    syndromes = experiment.syndromes(records, graph.basis)
    if graph.basis == experiment.basis:
        det = graph.detection_events(syndromes)
    else:
        det = graph.dual_detection_events(syndromes)
    if not use_final_data:
        raw = experiment.raw_readout(records).astype(np.uint8)
        return det, raw
    if graph.basis != experiment.basis:
        raise ValueError("data-readout decoding needs decode basis == "
                         "memory basis")
    data_bits = experiment.data_measurements(records)
    if data_bits is None:
        raise ValueError("experiment was built without data measurements; "
                         "use use_final_data=False or rebuild with "
                         "include_data_measurement=True")
    code = experiment.code
    col = {q: i for i, q in enumerate(code.data_qubits)}
    plaquettes = (code.z_plaquettes if graph.basis == "Z"
                  else code.x_plaquettes)
    B = records.shape[0]
    n_p = len(plaquettes)
    final_syn = np.zeros((B, n_p), dtype=np.uint8)
    for j, support in enumerate(plaquettes):
        for q in support:
            final_syn[:, j] ^= data_bits[:, col[q]]
    # Final reconstructed round differenced against the last measured one.
    if experiment.rounds > 0 and syndromes.shape[2]:
        last = syndromes[:, -1, :]
    else:
        last = np.zeros((B, n_p), dtype=np.uint8)
    final_det = (final_syn ^ last)[:, None, :]
    det = np.concatenate([det, final_det], axis=1)
    support = (code.logical_z_support if graph.basis == "Z"
               else code.logical_x_support)
    raw = np.zeros(B, dtype=np.uint8)
    for q in support:
        raw ^= data_bits[:, col[q]]
    return det, raw
