"""Decoder interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..codes.base import MemoryExperiment


@dataclass
class DecodeResult:
    """Outcome of decoding a batch of shots.

    Attributes
    ----------
    decoded:
        Per-shot decoded logical value, shape ``(B,)``.
    expected:
        The logical value a noise-free run produces.
    corrections:
        Per-shot readout-correction parity the decoder applied.
    """

    decoded: np.ndarray
    expected: int
    corrections: np.ndarray

    @property
    def num_shots(self) -> int:
        return int(self.decoded.shape[0])

    @property
    def errors(self) -> np.ndarray:
        """Boolean per-shot logical-error flags."""
        return self.decoded != self.expected

    @property
    def num_errors(self) -> int:
        return int(np.count_nonzero(self.errors))

    @property
    def logical_error_rate(self) -> float:
        """Fraction of shots decoding to the wrong logical value
        (the paper's §IV-C metric)."""
        return self.num_errors / self.num_shots if self.num_shots else 0.0


class Decoder(abc.ABC):
    """Abstract syndrome decoder.

    Concrete decoders carry a ``graph`` (:class:`~repro.decoders.
    detector_graph.DetectorGraph`) and a ``use_final_data`` flag, and
    implement :meth:`correction_parity` — the per-pattern decode.  The
    batch pipeline (syndrome extraction, detector differencing, unique-
    pattern deduplication, readout correction) is shared here, so
    alternate decode strategies — a reweighted graph, pre-modified
    detectors — plug in at :meth:`decode_prepared` without duplicating
    it.
    """

    graph: "object"
    use_final_data: bool

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in reports."""

    @abc.abstractmethod
    def correction_parity(self, detector_bits: np.ndarray) -> int:
        """Decode one flattened detector pattern -> readout correction."""

    def decode_prepared(self, experiment: MemoryExperiment,
                        det: np.ndarray, raw: np.ndarray) -> DecodeResult:
        """Decode already-extracted detectors ``(B, rounds, P)`` against
        raw readout ``(B,)``.  Identical syndromes decode identically,
        so shots are deduplicated before the per-pattern decode — a
        large win at low fault intensity."""
        B = det.shape[0]
        flat = det.reshape(B, -1)
        if flat.shape[1] == 0:
            return DecodeResult(decoded=raw.copy(),
                                expected=experiment.expected_logical,
                                corrections=np.zeros(B, dtype=np.uint8))
        uniq, inverse = np.unique(flat, axis=0, return_inverse=True)
        pattern_corr = np.fromiter(
            (self.correction_parity(u) for u in uniq),
            dtype=np.uint8, count=uniq.shape[0])
        corrections = pattern_corr[inverse]
        return DecodeResult(decoded=raw ^ corrections,
                            expected=experiment.expected_logical,
                            corrections=corrections)

    def decode_batch(self, experiment: MemoryExperiment,
                     records: np.ndarray) -> DecodeResult:
        """Decode a ``(B, num_cbits)`` record array."""
        det, raw = prepare_decode_inputs(experiment, records, self.graph,
                                         self.use_final_data)
        return self.decode_prepared(experiment, det, raw)


def prepare_decode_inputs(experiment: MemoryExperiment, records: np.ndarray,
                          graph, use_final_data: bool):
    """Shared front-end for syndrome decoders.

    Returns ``(detectors, raw_logical)`` where ``detectors`` has shape
    ``(B, rounds_eff, P)``.

    Two readout modes:

    * **ancilla** (``use_final_data=False``) — the raw logical value is
      the dedicated parity-ancilla measurement of Figs. 1-2 and only the
      mid-circuit syndrome rounds feed the decoder.  A corrupted readout
      ancilla is undetectable in this mode.
    * **data** (``use_final_data=True``, qtcodes-style) — the final
      transversal data measurement provides both the logical parity and
      one extra reconstructed syndrome round, so late and readout-path
      errors stay decodable.  Requires the experiment to include data
      measurements and the decode basis to match the memory basis.
    """
    syndromes = experiment.syndromes(records, graph.basis)
    if graph.basis == experiment.basis:
        det = graph.detection_events(syndromes)
    else:
        det = graph.dual_detection_events(syndromes)
    if not use_final_data:
        raw = experiment.raw_readout(records).astype(np.uint8)
        return det, raw
    if graph.basis != experiment.basis:
        raise ValueError("data-readout decoding needs decode basis == "
                         "memory basis")
    data_bits = experiment.data_measurements(records)
    if data_bits is None:
        raise ValueError("experiment was built without data measurements; "
                         "use use_final_data=False or rebuild with "
                         "include_data_measurement=True")
    code = experiment.code
    col = {q: i for i, q in enumerate(code.data_qubits)}
    plaquettes = (code.z_plaquettes if graph.basis == "Z"
                  else code.x_plaquettes)
    B = records.shape[0]
    n_p = len(plaquettes)
    final_syn = np.zeros((B, n_p), dtype=np.uint8)
    for j, support in enumerate(plaquettes):
        for q in support:
            final_syn[:, j] ^= data_bits[:, col[q]]
    # Final reconstructed round differenced against the last measured one.
    if experiment.rounds > 0 and syndromes.shape[2]:
        last = syndromes[:, -1, :]
    else:
        last = np.zeros((B, n_p), dtype=np.uint8)
    final_det = (final_syn ^ last)[:, None, :]
    det = np.concatenate([det, final_det], axis=1)
    support = (code.logical_z_support if graph.basis == "Z"
               else code.logical_x_support)
    raw = np.zeros(B, dtype=np.uint8)
    for q in support:
        raw ^= data_bits[:, col[q]]
    return det, raw
