"""Space-time detector graph for syndrome decoding.

Nodes are *detectors* — parity comparisons between consecutive syndrome
rounds (plus the round-0 comparison against the known initial state).
Edges are elementary error mechanisms:

* **space edges** — a data-qubit error flips the one or two plaquettes
  containing that qubit in the decode basis; qubits touching a single
  plaquette connect it to the virtual **boundary**;
* **time edges** — a syndrome-measurement error flips the same detector
  in two consecutive rounds.

Every edge carries a ``logical_flip`` flag: whether the corresponding
data error anticommutes with the logical readout operator.  The decoder
sums these flags along its correction to fix the raw readout parity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codes.base import MemoryExperiment, StabilizerCode

#: Virtual boundary node id (all real nodes are >= 0).
BOUNDARY = -1

#: Weight assigned to edges inside an estimated strike region by the
#: burst-adaptive reweighting (:mod:`repro.detect.recovery`): small
#: enough that paths through the blast are near-free (erasure-style),
#: large enough that dozens of chained near-zero edges cannot undercut
#: a single unit edge's tie-breaking epsilon.
ERASED_WEIGHT = 1e-3


@dataclass(frozen=True)
class DetectorEdge:
    """One error mechanism connecting two detectors (or a boundary)."""

    u: int
    v: int
    qubit: Optional[int]      # data qubit for space edges, None for time
    logical_flip: bool
    weight: float = 1.0
    #: Correlated space-time (hook) mechanism: a data error striking
    #: mid-round, after one adjacent plaquette measured but before the
    #: other did, flips the two detectors diagonally across rounds.
    hook: bool = False


class DetectorGraph:
    """Decoding graph for a memory experiment in a given basis.

    Parameters
    ----------
    code:
        The code geometry.
    rounds:
        Number of syndrome rounds in the experiment.
    basis:
        ``"Z"`` to decode Z-plaquette syndromes (bit-flip errors) — the
        relevant graph for the paper's Z-basis memory — or ``"X"``.
    hook_edges:
        Add correlated space-time (hook) edges: a data error landing
        between the two adjacent plaquettes' measurements flips one
        detector this round and the other next round, so each bulk
        qubit also contributes the two diagonal mechanisms
        ``(r, p1)–(r+1, p2)`` and ``(r, p2)–(r+1, p1)``.  Off by
        default (the hook-free graph is the historical baseline and
        the flag changes decode results).
    """

    def __init__(self, code: StabilizerCode, rounds: int, basis: str = "Z",
                 hook_edges: bool = False) -> None:
        if basis not in ("Z", "X"):
            raise ValueError("basis must be 'Z' or 'X'")
        self.code = code
        self.rounds = int(rounds)
        self.basis = basis
        self.hook_edges = bool(hook_edges)
        plaquettes = (code.z_plaquettes if basis == "Z"
                      else code.x_plaquettes)
        readout_support = frozenset(
            code.logical_z_support if basis == "Z"
            else code.logical_x_support)
        self.num_plaquettes = len(plaquettes)
        self.num_nodes = self.num_plaquettes * self.rounds

        # Data qubit -> plaquette indices containing it.
        membership: Dict[int, List[int]] = {q: [] for q in code.data_qubits}
        for pi, support in enumerate(plaquettes):
            for q in support:
                membership[q].append(pi)

        self.edges: List[DetectorEdge] = []
        #: Data qubits whose errors flip no plaquette in this basis
        #: (undetectable; they bound the code's correctable set).
        self.undetectable: List[int] = []
        for r in range(self.rounds):
            for q, plist in membership.items():
                flip = q in readout_support
                if len(plist) == 2:
                    self.edges.append(DetectorEdge(
                        self.node_id(r, plist[0]), self.node_id(r, plist[1]),
                        qubit=q, logical_flip=flip))
                elif len(plist) == 1:
                    self.edges.append(DetectorEdge(
                        self.node_id(r, plist[0]), BOUNDARY,
                        qubit=q, logical_flip=flip))
                elif r == 0:
                    self.undetectable.append(q)
        for r in range(self.rounds - 1):
            for p in range(self.num_plaquettes):
                self.edges.append(DetectorEdge(
                    self.node_id(r, p), self.node_id(r + 1, p),
                    qubit=None, logical_flip=False))
        if self.hook_edges:
            # Correlated hooks: a bulk data error striking after one
            # adjacent plaquette measured but before the other flips
            # the pair diagonally across the round boundary.
            for r in range(self.rounds - 1):
                for q, plist in membership.items():
                    if len(plist) != 2:
                        continue
                    flip = q in readout_support
                    p1, p2 = plist
                    self.edges.append(DetectorEdge(
                        self.node_id(r, p1), self.node_id(r + 1, p2),
                        qubit=q, logical_flip=flip, hook=True))
                    self.edges.append(DetectorEdge(
                        self.node_id(r, p2), self.node_id(r + 1, p1),
                        qubit=q, logical_flip=flip, hook=True))

        self._dist: Optional[np.ndarray] = None
        self._parity: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Reweighting (burst-adaptive decoding)
    # ------------------------------------------------------------------
    def reweighted(self, weight_for: Callable[["DetectorEdge"], float]
                   ) -> "DetectorGraph":
        """A copy of this graph with per-edge weights from ``weight_for``.

        The geometry (nodes, edges, logical flips) is shared; only the
        weights — and therefore the lazily rebuilt shortest-path tables
        — differ.  This is the mechanism behind erasure-style recovery:
        assign :data:`ERASED_WEIGHT` inside an estimated strike region
        and the decoders prefer matching through the damaged volume.
        """
        g = object.__new__(DetectorGraph)
        g.code = self.code
        g.rounds = self.rounds
        g.basis = self.basis
        g.hook_edges = self.hook_edges
        g.num_plaquettes = self.num_plaquettes
        g.num_nodes = self.num_nodes
        g.undetectable = self.undetectable
        g.edges = []
        for e in self.edges:
            w = float(weight_for(e))
            if w <= 0.0:
                raise ValueError("edge weights must be positive")
            g.edges.append(e if w == e.weight else replace(e, weight=w))
        g._dist = None
        g._parity = None
        return g

    @property
    def unit_weights(self) -> bool:
        """True when every edge still carries the default weight 1."""
        return all(e.weight == 1.0 for e in self.edges)

    # ------------------------------------------------------------------
    def node_id(self, round_index: int, plaquette_index: int) -> int:
        return round_index * self.num_plaquettes + plaquette_index

    def node_round_plaquette(self, node: int) -> Tuple[int, int]:
        return divmod(node, self.num_plaquettes)[0], node % self.num_plaquettes

    # ------------------------------------------------------------------
    # Detection events
    # ------------------------------------------------------------------
    def detection_events(self, syndromes: np.ndarray) -> np.ndarray:
        """Detector values from raw syndromes, shape ``(B, rounds, P)``.

        Round 0 compares against the known initial eigenstate when the
        decode basis matches the preparation basis (the paper's setup);
        later rounds compare consecutive measurements.  When the decode
        basis is the *dual* of the preparation (round-0 outcomes are
        random projections) the round-0 detector is suppressed.
        """
        det = syndromes.copy()
        det[:, 1:, :] ^= syndromes[:, :-1, :]
        return det

    def dual_detection_events(self, syndromes: np.ndarray) -> np.ndarray:
        """Detectors for the dual-basis graph: no round-0 reference."""
        det = self.detection_events(syndromes)
        det[:, 0, :] = 0
        return det

    # ------------------------------------------------------------------
    # All-pairs shortest paths with logical parity
    # ------------------------------------------------------------------
    def _build_paths(self) -> None:
        """Shortest paths from every node, tracking logical parity.

        Unit-weight graphs (the static decode) use BFS; reweighted
        graphs use Dijkstra over the edge weights.  Distances/parities
        to the boundary use a virtual node appended at ``num_nodes``.
        """
        n = self.num_nodes
        bidx = n
        if self.unit_weights:
            adj: List[List[Tuple[int, bool]]] = [[] for _ in range(n + 1)]
            for e in self.edges:
                u = e.u if e.u != BOUNDARY else bidx
                v = e.v if e.v != BOUNDARY else bidx
                adj[u].append((v, e.logical_flip))
                adj[v].append((u, e.logical_flip))
            dist = np.full((n, n + 1), np.inf)
            parity = np.zeros((n, n + 1), dtype=np.uint8)
            for src in range(n):
                dist[src, src] = 0
                queue = [src]
                head = 0
                while head < len(queue):
                    u = queue[head]
                    head += 1
                    for v, flip in adj[u]:
                        if not np.isfinite(dist[src, v]):
                            dist[src, v] = dist[src, u] + 1
                            parity[src, v] = parity[src, u] ^ int(flip)
                            if v != bidx:  # boundary absorbs: don't expand
                                queue.append(v)
            self._dist = dist
            self._parity = parity
            return
        wadj: List[List[Tuple[int, float, bool]]] = [[] for _ in range(n + 1)]
        for e in self.edges:
            u = e.u if e.u != BOUNDARY else bidx
            v = e.v if e.v != BOUNDARY else bidx
            wadj[u].append((v, e.weight, e.logical_flip))
            wadj[v].append((u, e.weight, e.logical_flip))
        dist = np.full((n, n + 1), np.inf)
        parity = np.zeros((n, n + 1), dtype=np.uint8)
        for src in range(n):
            dist[src, src] = 0
            heap = [(0.0, src)]
            done = np.zeros(n + 1, dtype=bool)
            while heap:
                d, u = heapq.heappop(heap)
                if done[u]:
                    continue
                done[u] = True
                if u == bidx:  # boundary absorbs: do not expand
                    continue
                for v, w, flip in wadj[u]:
                    nd = d + w
                    if nd < dist[src, v]:
                        dist[src, v] = nd
                        parity[src, v] = parity[src, u] ^ int(flip)
                        heapq.heappush(heap, (nd, v))
        self._dist = dist
        self._parity = parity

    @property
    def distances(self) -> np.ndarray:
        """``(num_nodes, num_nodes + 1)``; last column is the boundary."""
        if self._dist is None:
            self._build_paths()
        return self._dist

    @property
    def parities(self) -> np.ndarray:
        """Logical parity along a BFS shortest path (same shape)."""
        if self._parity is None:
            self._build_paths()
        return self._parity

    def distance_between(self, u: int, v: int = BOUNDARY) -> float:
        col = self.num_nodes if v == BOUNDARY else v
        return float(self.distances[u, col])

    def parity_between(self, u: int, v: int = BOUNDARY) -> int:
        col = self.num_nodes if v == BOUNDARY else v
        return int(self.parities[u, col])

    def __repr__(self) -> str:
        return (f"DetectorGraph({self.code.name}, basis={self.basis}, "
                f"nodes={self.num_nodes}, edges={len(self.edges)}, "
                f"undetectable={len(self.undetectable)})")
