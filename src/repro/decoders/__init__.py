"""Syndrome decoders: detector graph, MWPM (paper default), union-find."""

from .base import DecodeResult, Decoder
from .detector_graph import (BOUNDARY, ERASED_WEIGHT, DetectorEdge,
                             DetectorGraph)
from .matching import MWPMDecoder
from .unionfind import UnionFindDecoder


def decoder_for(experiment, kind: str = "mwpm", basis: str | None = None,
                use_final_data: bool = True):
    """Build a decoder bound to an experiment's detector graph.

    Parameters
    ----------
    experiment:
        A :class:`~repro.codes.base.MemoryExperiment`.
    kind:
        ``"mwpm"`` (paper default) or ``"union-find"``.
    basis:
        Decode basis; defaults to the experiment's memory basis.
    use_final_data:
        ``True`` (default) reconstructs a final syndrome round from the
        transversal data measurement and reads the logical parity from
        the data bits (qtcodes-style); ``False`` trusts the dedicated
        readout ancilla of Figs. 1-2 and leaves post-round errors
        undetectable (kept as the readout-path ablation).
    """
    basis = basis or experiment.basis
    if use_final_data and (experiment.data_cbits is None
                           or basis != experiment.basis):
        use_final_data = False
    rounds = experiment.rounds + (1 if use_final_data else 0)
    graph = DetectorGraph(experiment.code, rounds, basis=basis)
    if kind == "mwpm":
        return MWPMDecoder(graph, use_final_data=use_final_data)
    if kind in ("union-find", "unionfind", "uf"):
        return UnionFindDecoder(graph, use_final_data=use_final_data)
    raise KeyError(f"unknown decoder {kind!r}")


__all__ = [
    "Decoder",
    "DecodeResult",
    "DetectorGraph",
    "DetectorEdge",
    "BOUNDARY",
    "ERASED_WEIGHT",
    "MWPMDecoder",
    "UnionFindDecoder",
    "decoder_for",
]
