"""Syndrome decoders: detector graph, MWPM (paper default), union-find.

The canonical decode entry point is ``decode_batch`` over a
:class:`SyndromeBatch` (packed word stream or uint8 rows); decoder
configuration is carried by :class:`DecoderSpec` (kind, weighting,
decode cache, hook edges) and built by :func:`decoder_for`.
"""

from typing import Union

from .base import DecodeResult, Decoder, prepare_decode_inputs
from .batch import (DecodeCache, SyndromeBatch, pack_pattern_columns,
                    prepare_packed_inputs)
from .detector_graph import (BOUNDARY, ERASED_WEIGHT, DetectorEdge,
                             DetectorGraph)
from .matching import MWPMDecoder
from .spec import DECODER_KINDS, DecoderSpec, as_decoder
from .unionfind import UnionFindDecoder


def decoder_for(experiment, kind: Union[str, DecoderSpec, None] = "mwpm",
                basis: str | None = None, use_final_data: bool = True):
    """Build a decoder bound to an experiment's detector graph.

    Parameters
    ----------
    experiment:
        A :class:`~repro.codes.base.MemoryExperiment`.
    kind:
        A :class:`DecoderSpec`, or anything :func:`~repro.decoders.
        spec.as_decoder` coerces (``"mwpm"`` — the paper default —
        ``"union-find"``, ``"mwpm:hooks,nocache"``, a mapping, ...).
    basis:
        Decode basis; defaults to the experiment's memory basis.
    use_final_data:
        ``True`` (default) reconstructs a final syndrome round from the
        transversal data measurement and reads the logical parity from
        the data bits (qtcodes-style); ``False`` trusts the dedicated
        readout ancilla of Figs. 1-2 and leaves post-round errors
        undetectable (kept as the readout-path ablation).
    """
    spec = as_decoder(kind)
    basis = basis or experiment.basis
    if use_final_data and (experiment.data_cbits is None
                           or basis != experiment.basis):
        use_final_data = False
    rounds = experiment.rounds + (1 if use_final_data else 0)
    graph = DetectorGraph(experiment.code, rounds, basis=basis,
                          hook_edges=spec.hook_edges)
    if spec.kind == "mwpm":
        return MWPMDecoder(graph, use_final_data=use_final_data,
                           cache_decodes=spec.cache)
    return UnionFindDecoder(graph, use_final_data=use_final_data,
                            cache_decodes=spec.cache,
                            weighted_growth=spec.weighting == "weighted")


__all__ = [
    "Decoder",
    "DecodeResult",
    "DecodeCache",
    "DecoderSpec",
    "DECODER_KINDS",
    "DetectorGraph",
    "DetectorEdge",
    "BOUNDARY",
    "ERASED_WEIGHT",
    "MWPMDecoder",
    "SyndromeBatch",
    "UnionFindDecoder",
    "as_decoder",
    "decoder_for",
    "pack_pattern_columns",
    "prepare_decode_inputs",
    "prepare_packed_inputs",
]
