"""Union-find decoder (Delfosse–Nickerson), the almost-linear-time
alternative the paper cites ([62]) but leaves out of scope.

Implemented here as an extension/ablation: clusters grow from flagged
detectors in half-edge steps, merging until every cluster holds an even
number of defects or touches the boundary; a peeling pass then extracts
a correction whose syndrome matches the defects.  Accuracy is slightly
below MWPM (by design), speed is much higher on large graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .base import Decoder
from .detector_graph import BOUNDARY, ERASED_WEIGHT, DetectorGraph


class _DSU:
    """Disjoint-set union with cluster metadata (defect parity, boundary)."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n
        self.parity = [0] * n        # defects mod 2 in the cluster
        self.boundary = [False] * n  # cluster touches the boundary

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parity[ra] ^= self.parity[rb]
        self.boundary[ra] |= self.boundary[rb]
        return ra


@dataclass
class UnionFindDecoder(Decoder):
    """Union-find decoder bound to a detector graph.

    ``use_final_data`` mirrors :class:`~repro.decoders.matching.MWPMDecoder`.
    """

    graph: DetectorGraph
    use_final_data: bool = True

    @property
    def name(self) -> str:
        return "union-find"

    # ------------------------------------------------------------------
    def correction_parity(self, detector_bits: np.ndarray) -> int:
        defects = set(int(i) for i in np.nonzero(detector_bits)[0])
        if not defects:
            return 0
        g = self.graph
        n = g.num_nodes
        bnode = n  # virtual boundary index

        edges = [(e.u if e.u != BOUNDARY else bnode,
                  e.v if e.v != BOUNDARY else bnode,
                  e.logical_flip) for e in g.edges]
        incident: List[List[int]] = [[] for _ in range(n + 1)]
        for ei, (u, v, _) in enumerate(edges):
            incident[u].append(ei)
            incident[v].append(ei)

        dsu = _DSU(n + 1)
        dsu.boundary[bnode] = True
        for d in defects:
            dsu.parity[d] = 1
        growth = [0] * len(edges)   # 0 .. 2 half-steps
        grown: Set[int] = set()

        # Erasure pre-growth (Delfosse–Zémor): edges the graph marks as
        # near-free — the burst-adaptive reweighting of an estimated
        # strike region — start fully grown, seeding clusters that span
        # the damaged volume before weight-1 growth begins.
        for ei, e in enumerate(g.edges):
            if e.weight <= ERASED_WEIGHT:
                u, v, _ = edges[ei]
                growth[ei] = 2
                grown.add(ei)
                dsu.union(u, v)

        def odd_roots() -> Set[int]:
            roots = set()
            for d in defects:
                r = dsu.find(d)
                if dsu.parity[r] == 1 and not dsu.boundary[r]:
                    roots.add(r)
            return roots

        # Growth phase.
        guard = 0
        while True:
            roots = odd_roots()
            if not roots:
                break
            guard += 1
            if guard > 4 * (n + len(edges) + 2):  # pragma: no cover
                raise RuntimeError("union-find growth failed to converge")
            # Every edge incident to an odd cluster grows one half-step.
            to_grow = []
            for ei, (u, v, _) in enumerate(edges):
                if growth[ei] >= 2:
                    continue
                if dsu.find(u) in roots or dsu.find(v) in roots:
                    to_grow.append(ei)
            completed = []
            for ei in to_grow:
                growth[ei] += 1
                if growth[ei] >= 2:
                    completed.append(ei)
            # Merge defect clusters with each other before letting the
            # boundary absorb them: at equal weight, pairing two defects
            # is the better logical class (it is what MWPM would pick).
            for ei in completed:
                u, v, _ = edges[ei]
                if bnode not in (u, v):
                    grown.add(ei)
                    dsu.union(u, v)
            for ei in completed:
                u, v, _ = edges[ei]
                if bnode in (u, v):
                    other = u if v == bnode else v
                    r = dsu.find(other)
                    if dsu.parity[r] == 1 and not dsu.boundary[r]:
                        grown.add(ei)
                        dsu.union(u, v)
                    else:
                        # Cluster no longer needs the boundary; hold the
                        # edge half-grown in case it turns odd again.
                        growth[ei] = 1

        # Peeling phase: spanning forest of grown edges, leaves inward.
        adj: Dict[int, List[Tuple[int, int]]] = {}
        for ei in grown:
            u, v, _ = edges[ei]
            adj.setdefault(u, []).append((v, ei))
            adj.setdefault(v, []).append((u, ei))

        visited: Set[int] = set()
        corr = 0
        defect_flag = {d: True for d in defects}

        # Root each tree at the boundary when present so dangling defects
        # peel toward it.
        order: List[Tuple[int, Optional[int], Optional[int]]] = []
        seeds = [bnode] + [u for u in adj if u != bnode]
        for seed in seeds:
            if seed in visited or seed not in adj:
                continue
            visited.add(seed)
            stack = [(seed, None, None)]
            comp_order = []
            while stack:
                u, pedge, pnode = stack.pop()
                comp_order.append((u, pedge, pnode))
                for v, ei in adj.get(u, ()):  # tree edges only once
                    if v not in visited:
                        visited.add(v)
                        stack.append((v, ei, u))
            order.extend(comp_order)

        # Peel in reverse DFS order: each leaf with an active defect
        # consumes its parent edge.
        for u, pedge, pnode in reversed(order):
            if pedge is None:
                continue
            if defect_flag.get(u, False):
                _, _, flip = edges[pedge]
                corr ^= int(flip)
                defect_flag[u] = False
                if pnode != bnode:
                    defect_flag[pnode] = not defect_flag.get(pnode, False)
        return corr
