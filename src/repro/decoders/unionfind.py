"""Union-find decoder (Delfosse–Nickerson), the almost-linear-time
alternative the paper cites ([62]) but leaves out of scope.

Implemented here as an extension/ablation: clusters grow from flagged
detectors in synchronized steps, merging until every cluster holds an
even number of defects or touches the boundary; a peeling pass then
extracts a correction whose syndrome matches the defects.  Accuracy is
slightly below MWPM (by design), speed is much higher on large graphs.

Growth is **weight-aware** by default: an edge completes when the
accumulated growth reaches its weight, and each synchronized step
advances by the smallest frontier residual (capped at half a unit
edge), so low-weight (likely) edges — e.g. the graded blast skirt of
burst-adaptive reweighting — are crossed before unit edges.  On
unit-weight graphs every step is exactly half an edge and the decoder
is bit-identical to the legacy two-half-step growth;
``weighted_growth=False`` pins that legacy behaviour on weighted
graphs too (reacting only to fully erased edges).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .base import Decoder
from .detector_graph import BOUNDARY, ERASED_WEIGHT, DetectorGraph

#: Completion slack for float growth accumulation (half-steps are exact
#: binary floats on unit graphs; weighted residual chains may not be).
_GROWTH_EPS = 1e-9


class _DSU:
    """Disjoint-set union with cluster metadata (defect parity, boundary)."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n
        self.parity = [0] * n        # defects mod 2 in the cluster
        self.boundary = [False] * n  # cluster touches the boundary

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parity[ra] ^= self.parity[rb]
        self.boundary[ra] |= self.boundary[rb]
        return ra


@dataclass
class UnionFindDecoder(Decoder):
    """Union-find decoder bound to a detector graph.

    ``use_final_data`` mirrors :class:`~repro.decoders.matching.
    MWPMDecoder`; ``cache_decodes`` enables the cross-batch syndrome-
    dedup cache; ``weighted_growth`` selects weight-aware cluster
    growth (module docstring — no effect on unit-weight graphs).
    """

    graph: DetectorGraph
    use_final_data: bool = True
    cache_decodes: bool = True
    weighted_growth: bool = True

    @property
    def name(self) -> str:
        return "union-find"

    # ------------------------------------------------------------------
    def _decode_pattern(self, detector_bits: np.ndarray) -> int:
        defects = set(int(i) for i in np.nonzero(detector_bits)[0])
        if not defects:
            return 0
        g = self.graph
        n = g.num_nodes
        bnode = n  # virtual boundary index

        edges = [(e.u if e.u != BOUNDARY else bnode,
                  e.v if e.v != BOUNDARY else bnode,
                  e.logical_flip) for e in g.edges]
        incident: List[List[int]] = [[] for _ in range(n + 1)]
        for ei, (u, v, _) in enumerate(edges):
            incident[u].append(ei)
            incident[v].append(ei)

        dsu = _DSU(n + 1)
        dsu.boundary[bnode] = True
        for d in defects:
            dsu.parity[d] = 1
        # Growth target per edge: its weight under weight-aware growth,
        # one unit otherwise — on unit graphs the two coincide and every
        # step below is exactly 0.5, reproducing the legacy half-steps.
        weighted = self.weighted_growth and not g.unit_weights
        target = ([max(e.weight, ERASED_WEIGHT) for e in g.edges]
                  if weighted else [1.0] * len(edges))
        growth = [0.0] * len(edges)
        grown: Set[int] = set()

        # Erasure pre-growth (Delfosse–Zémor): edges the graph marks as
        # near-free — the burst-adaptive reweighting of an estimated
        # strike region — start fully grown, seeding clusters that span
        # the damaged volume before weighted growth begins.
        for ei, e in enumerate(g.edges):
            if e.weight <= ERASED_WEIGHT:
                u, v, _ = edges[ei]
                growth[ei] = target[ei]
                grown.add(ei)
                dsu.union(u, v)

        def odd_roots() -> Set[int]:
            roots = set()
            for d in defects:
                r = dsu.find(d)
                if dsu.parity[r] == 1 and not dsu.boundary[r]:
                    roots.add(r)
            return roots

        # Growth phase.
        guard = 0
        max_target = max(target) if target else 1.0
        guard_limit = (4 * (n + len(edges) + 2)
                       * max(1, int(math.ceil(max_target))))
        while True:
            roots = odd_roots()
            if not roots:
                break
            guard += 1
            if guard > guard_limit:  # pragma: no cover
                raise RuntimeError("union-find growth failed to converge")
            # Every edge incident to an odd cluster grows one step.
            to_grow = []
            for ei, (u, v, _) in enumerate(edges):
                if growth[ei] >= target[ei] - _GROWTH_EPS:
                    continue
                if dsu.find(u) in roots or dsu.find(v) in roots:
                    to_grow.append(ei)
            # Synchronized step: half a unit edge, shortened to the
            # smallest frontier residual so the cheapest edge completes
            # exactly (0.5 always, on unit graphs).
            step = 0.5
            if weighted and to_grow:
                step = min(step, min(target[ei] - growth[ei]
                                     for ei in to_grow))
                step = max(step, _GROWTH_EPS)
            completed = []
            for ei in to_grow:
                growth[ei] += step
                if growth[ei] >= target[ei] - _GROWTH_EPS:
                    completed.append(ei)
            # Merge defect clusters with each other before letting the
            # boundary absorb them: at equal weight, pairing two defects
            # is the better logical class (it is what MWPM would pick).
            for ei in completed:
                u, v, _ = edges[ei]
                if bnode not in (u, v):
                    grown.add(ei)
                    dsu.union(u, v)
            for ei in completed:
                u, v, _ = edges[ei]
                if bnode in (u, v):
                    other = u if v == bnode else v
                    r = dsu.find(other)
                    if dsu.parity[r] == 1 and not dsu.boundary[r]:
                        grown.add(ei)
                        dsu.union(u, v)
                    else:
                        # Cluster no longer needs the boundary; hold the
                        # edge half-grown in case it turns odd again.
                        growth[ei] = target[ei] / 2.0

        # Peeling phase: spanning forest of grown edges, leaves inward.
        adj: Dict[int, List[Tuple[int, int]]] = {}
        for ei in grown:
            u, v, _ = edges[ei]
            adj.setdefault(u, []).append((v, ei))
            adj.setdefault(v, []).append((u, ei))

        visited: Set[int] = set()
        corr = 0
        defect_flag = {d: True for d in defects}

        # Root each tree at the boundary when present so dangling defects
        # peel toward it.
        order: List[Tuple[int, Optional[int], Optional[int]]] = []
        seeds = [bnode] + [u for u in adj if u != bnode]
        for seed in seeds:
            if seed in visited or seed not in adj:
                continue
            visited.add(seed)
            stack = [(seed, None, None)]
            comp_order = []
            while stack:
                u, pedge, pnode = stack.pop()
                comp_order.append((u, pedge, pnode))
                for v, ei in adj.get(u, ()):  # tree edges only once
                    if v not in visited:
                        visited.add(v)
                        stack.append((v, ei, u))
            order.extend(comp_order)

        # Peel in reverse DFS order: each leaf with an active defect
        # consumes its parent edge.
        for u, pedge, pnode in reversed(order):
            if pedge is None:
                continue
            if defect_flag.get(u, False):
                _, _, flip = edges[pedge]
                corr ^= int(flip)
                defect_flag[u] = False
                if pnode != bnode:
                    defect_flag[pnode] = not defect_flag.get(pnode, False)
        return corr
