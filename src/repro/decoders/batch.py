"""Batched syndrome carriers and the packed decode front-end.

The campaign engine's frame backend produces records as bit-packed
word streams — ``(num_cbits, W)`` uint64, 64 shots per word — while the
tableau backend (and most tests) produce ``(B, num_cbits)`` uint8 rows.
:class:`SyndromeBatch` wraps either form behind one carrier so
``Decoder.decode_batch`` is the single entry point for both, and the
expensive full-record ``unpack_words`` round-trip disappears from the
frames hot path: a packed-native decoder consumes the words directly.

Two packed primitives live here:

* :func:`prepare_packed_inputs` — the word-domain mirror of
  :func:`~repro.decoders.base.prepare_decode_inputs`: syndrome
  extraction, detector differencing and readout reconstruction as
  whole-word XORs, never touching per-shot uint8.
* :func:`pack_pattern_columns` — bit-sliced column extraction: gather
  selected shots' detector patterns as packed little-endian byte keys,
  byte-identical to ``numpy.packbits`` over the unpacked rows, so the
  packed and unpacked paths dedup/cache against the same keys.

Don't-care discipline: bits past ``batch_size`` in the final word of a
frame stream are garbage (random fills).  Per-shot quantities therefore
only ever come from the tail-safe primitives ``unpack_words(count=B)``
and ``column_counts``, and pattern keys are only built for shot indices
below ``batch_size``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codes.base import MemoryExperiment
from ..frames.packing import WORD_BITS, column_counts, unpack_words


class SyndromeBatch:
    """One simulation block's measurement records, packed or unpacked.

    Parameters
    ----------
    batch_size:
        Number of real shots ``B`` (word streams may carry don't-care
        tail bits past it).
    record_words:
        ``(num_cbits, W)`` uint64 word stream from
        :meth:`~repro.frames.simulator.FrameSimulator.run_packed`, or
        ``None`` when only rows are available.
    records:
        ``(B, num_cbits)`` uint8 rows, or ``None`` to unpack lazily
        from ``record_words`` on first use.
    """

    __slots__ = ("batch_size", "record_words", "_records")

    def __init__(self, batch_size: int,
                 record_words: Optional[np.ndarray] = None,
                 records: Optional[np.ndarray] = None) -> None:
        if record_words is None and records is None:
            raise ValueError("need record_words or records")
        self.batch_size = int(batch_size)
        self.record_words = record_words
        self._records = records

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: np.ndarray) -> "SyndromeBatch":
        """Wrap ``(B, num_cbits)`` uint8 record rows."""
        records = np.asarray(records)
        if records.ndim != 2:
            raise ValueError("records must be (B, num_cbits)")
        return cls(records.shape[0], records=records)

    @classmethod
    def from_record_words(cls, record_words: np.ndarray, batch_size: int
                          ) -> "SyndromeBatch":
        """Wrap a ``(num_cbits, W)`` packed word stream."""
        record_words = np.ascontiguousarray(record_words, dtype=np.uint64)
        if record_words.ndim != 2:
            raise ValueError("record_words must be (num_cbits, W)")
        return cls(batch_size, record_words=record_words)

    @classmethod
    def coerce(cls, obj, record_words: Optional[np.ndarray] = None
               ) -> "SyndromeBatch":
        """Accept a ready batch or legacy ``(records[, record_words])``
        arguments, preferring the packed stream when both are given."""
        if isinstance(obj, SyndromeBatch):
            return obj
        batch = cls.from_records(obj)
        if record_words is not None:
            batch.record_words = np.ascontiguousarray(record_words,
                                                      dtype=np.uint64)
        return batch

    # ------------------------------------------------------------------
    @property
    def packed(self) -> bool:
        """Does this batch carry the native word stream?"""
        return self.record_words is not None

    @property
    def num_cbits(self) -> int:
        if self._records is not None:
            return int(self._records.shape[1])
        return int(self.record_words.shape[0])

    @property
    def records(self) -> np.ndarray:
        """``(B, num_cbits)`` uint8 rows, unpacked on first access and
        kept — the fallback for decoders that are not packed-native."""
        if self._records is None:
            self._records = np.ascontiguousarray(
                unpack_words(self.record_words, self.batch_size).T)
        return self._records

    def bit_column(self, cbit: int) -> np.ndarray:
        """One classical bit across the batch, shape ``(B,)`` uint8 —
        without unpacking the full record block."""
        if self._records is not None:
            return self._records[:, cbit]
        return unpack_words(self.record_words[cbit], self.batch_size)

    def __repr__(self) -> str:
        form = "packed" if self.packed else "rows"
        return (f"SyndromeBatch(B={self.batch_size}, "
                f"cbits={self.num_cbits}, {form})")


class DecodeCache:
    """Syndrome-dedup decode cache: packed pattern key -> parity.

    A decode is a pure function of (detector pattern, graph), so each
    distinct pattern is decoded once per decoder instance and replayed
    on every later hit — exact, not approximate.  Keys carry the
    pattern length, so graphs of different round counts sharing a
    decoder instance (they don't, today) could never alias.

    The cache lives outside the decoder dataclass fields on purpose:
    ``dataclasses.replace(decoder, graph=...)`` — how burst-adaptive
    recovery derives reweighted decoders — yields a *fresh* cache,
    because cached parities are only valid against the graph they were
    decoded on.

    ``capacity`` bounds memory on pathological (high-entropy) syndrome
    streams: once full the cache stops admitting new patterns — misses
    simply decode, so results are unaffected.
    """

    __slots__ = ("table", "hits", "misses", "capacity")

    #: Default pattern capacity (~tens of MB worst-case).
    DEFAULT_CAPACITY = 1 << 18

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.table: dict = {}
        self.hits = 0
        self.misses = 0
        self.capacity = int(capacity)

    def get(self, num_detectors: int, key: bytes) -> Optional[int]:
        parity = self.table.get((num_detectors, key))
        if parity is None:
            self.misses += 1
        else:
            self.hits += 1
        return parity

    def put(self, num_detectors: int, key: bytes, parity: int) -> None:
        if len(self.table) < self.capacity:
            self.table[(num_detectors, key)] = int(parity) & 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return (f"DecodeCache(patterns={len(self.table)}, "
                f"hits={self.hits}, misses={self.misses})")


def pack_pattern_columns(plane_words: np.ndarray, shots: np.ndarray
                         ) -> np.ndarray:
    """Packed per-shot pattern keys from bit-plane rows.

    ``plane_words`` is ``(D, W)`` uint64 — one packed row per detector —
    and ``shots`` the shot indices to extract.  Returns
    ``(len(shots), ceil(D / 8))`` uint8, where row ``i`` is shot
    ``shots[i]``'s ``D`` detector bits packed little-endian: exactly
    ``np.packbits(bits, bitorder="little")`` of the unpacked pattern,
    so keys agree byte-for-byte with the row-domain path.
    """
    shots = np.asarray(shots)
    w_idx = shots // WORD_BITS
    shift = (shots % WORD_BITS).astype(np.uint64)
    cols = ((plane_words[:, w_idx] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.ascontiguousarray(
        np.packbits(cols, axis=0, bitorder="little").T)


def prepare_packed_inputs(experiment: MemoryExperiment,
                          record_words: np.ndarray, batch_size: int,
                          graph, use_final_data: bool):
    """Word-domain mirror of :func:`~repro.decoders.base.
    prepare_decode_inputs`.

    Returns ``(detector_words, raw_words)`` where ``detector_words``
    has shape ``(rounds_eff, P, W)`` — bit ``j`` of word column ``w``
    is shot ``64*w + j``'s detector value — and ``raw_words`` is the
    ``(W,)`` packed raw logical readout.  Same readout modes and the
    same error conditions as the row-domain version; tail bits past
    ``batch_size`` are unspecified and must be dropped by the caller's
    tail-safe reductions.
    """
    table = (experiment.z_syndrome_cbits if graph.basis == "Z"
             else experiment.x_syndrome_cbits)
    W = record_words.shape[1]
    if not table or not table[0]:
        syn = np.zeros((experiment.rounds, 0, W), dtype=np.uint64)
    else:
        syn = record_words[np.asarray(table)]        # (rounds, P, W)
    det = syn.copy()
    det[1:] ^= syn[:-1]
    if graph.basis != experiment.basis:
        det[0] = 0          # dual basis: round-0 outcomes are random
    if not use_final_data:
        return det, record_words[experiment.readout_cbit]
    if graph.basis != experiment.basis:
        raise ValueError("data-readout decoding needs decode basis == "
                         "memory basis")
    if experiment.data_cbits is None:
        raise ValueError("experiment was built without data measurements; "
                         "use use_final_data=False or rebuild with "
                         "include_data_measurement=True")
    code = experiment.code
    plaquettes = (code.z_plaquettes if graph.basis == "Z"
                  else code.x_plaquettes)
    n_p = len(plaquettes)
    final_syn = np.zeros((n_p, W), dtype=np.uint64)
    for j, support in enumerate(plaquettes):
        for q in support:
            final_syn[j] ^= record_words[experiment.data_cbits[q]]
    # Final reconstructed round differenced against the last measured one.
    if experiment.rounds > 0 and syn.shape[1]:
        final_det = final_syn ^ syn[-1]
    else:
        final_det = final_syn
    det = np.concatenate([det, final_det[None]], axis=0)
    support = (code.logical_z_support if graph.basis == "Z"
               else code.logical_x_support)
    raw_words = np.zeros(W, dtype=np.uint64)
    for q in support:
        raw_words ^= record_words[experiment.data_cbits[q]]
    return det, raw_words
