"""Declarative injection-task specifications.

Campaign tasks are small frozen dataclasses that fully describe one
configuration point (code, architecture, fault, noise, shots, seed).
Workers rebuild the heavyweight objects (circuits, detector graphs)
from the spec — specs pickle cheaply across process boundaries and
cache naturally, and every result is reproducible from its spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional, Tuple

from ..arch import ArchitectureGraph, by_name
from ..codes import (
    MemoryExperiment,
    RepetitionCode,
    StabilizerCode,
    XXZZCode,
    build_memory_experiment,
)
from ..decoders.spec import DecoderSpec, as_decoder
from ..frames.backend import validate_backend
from ..rare.sampler import SamplerSpec, as_sampler


@dataclass(frozen=True)
class CodeSpec:
    """Which surface code to build.

    ``kind`` is ``"repetition"`` or ``"xxzz"``; ``distance`` is the
    paper's ``(d_Z, d_X)`` tuple (repetition codes take ``(d, 1)`` for
    bit-flip or ``(1, d)`` for phase-flip protection).
    """

    kind: str
    distance: Tuple[int, int]

    def build(self) -> StabilizerCode:
        dz, dx = self.distance
        if self.kind == "repetition":
            if dz > 1 and dx > 1:
                raise ValueError("repetition code needs dZ==1 or dX==1")
            if dx == 1:
                return RepetitionCode(dz, basis="Z")
            return RepetitionCode(dx, basis="X")
        if self.kind == "xxzz":
            return XXZZCode(dz, dx)
        raise ValueError(f"unknown code kind {self.kind!r}")

    @property
    def label(self) -> str:
        return f"{self.kind}-({self.distance[0]},{self.distance[1]})"


@dataclass(frozen=True)
class ArchSpec:
    """Which architecture graph to build (by registry name + args)."""

    name: str
    args: Tuple[int, ...] = ()

    def build(self) -> ArchitectureGraph:
        return by_name(self.name, *self.args)

    @property
    def label(self) -> str:
        if self.args:
            return f"{self.name}-{'x'.join(map(str, self.args))}"
        return self.name


@dataclass(frozen=True)
class FaultSpec:
    """The fault to inject.

    kind:
        ``"none"`` — intrinsic noise only;
        ``"radiation"`` — spreading transient fault (Eq. 7) rooted at
        ``root_qubit``, evaluated at temporal sample ``time_index``;
        ``"erasure"`` — fixed-probability resets on ``qubits`` with no
        spatial evolution (Figs. 6-7).

    strike_round:
        ``-1`` (default) freezes the radiation transient at one
        temporal sample for the whole circuit — the paper's per-sample
        sweep.  A value ``>= 0`` switches to the *streaming-detection
        scenario*: the circuit runs clean until that syndrome round,
        then the strike lands and decays one temporal sample per round
        (:class:`~repro.noise.radiation.RadiationBurst`);
        ``time_index`` is ignored.  ``intensity`` scales the deposited
        energy (1.0 = the paper's full strike).
    """

    kind: str = "none"
    root_qubit: int = 0
    time_index: int = 0
    spread: bool = True
    qubits: Tuple[int, ...] = ()
    probability: float = 1.0
    gamma: float = 10.0
    spatial_n: float = 1.0
    num_samples: int = 10
    strike_round: int = -1
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "radiation", "erasure"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "radiation" and self.strike_round < 0 \
                and not 0 <= self.time_index < self.num_samples:
            raise ValueError("time_index outside the sampled window")
        if self.kind == "erasure" and not self.qubits:
            raise ValueError("erasure fault needs target qubits")
        if self.strike_round >= 0 and self.kind != "radiation":
            raise ValueError("strike_round only applies to radiation faults")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must lie in [0, 1]")


@dataclass(frozen=True)
class InjectionTask:
    """One fully-specified campaign point."""

    code: CodeSpec
    fault: FaultSpec = FaultSpec()
    arch: Optional[ArchSpec] = None
    layout: str = "best"
    intrinsic_p: float = 0.01
    rounds: int = 2
    basis: str = "Z"
    #: Decoder configuration (:class:`~repro.decoders.spec.DecoderSpec`);
    #: plain strings like ``"mwpm"`` or ``"union-find:hooks"`` coerce in
    #: ``__post_init__``.  Hook edges and the weighting mode change the
    #: counted errors, so the spec participates in the store key.
    decoder: DecoderSpec = DecoderSpec()
    #: "ancilla" trusts the dedicated parity-readout qubit of Figs. 1-2
    #: (the paper's circuit; late errors stay undetectable); "data"
    #: decodes from the final transversal data measurement instead.
    readout: str = "ancilla"
    #: Simulation backend: "auto" picks the bit-packed Pauli-frame
    #: sampler whenever the task's noise model lowers *exactly* (the
    #: paper's fault semantics preserved in distribution) and falls back
    #: to the batched tableau otherwise; "frames" forces the frame
    #: sampler, accepting the reset-to-mixed approximation at fault
    #: sites where the reference is Z-indefinite; "tableau" pins the
    #: reference backend.  Part of the task identity (each backend draws
    #: its own random stream), so it participates in the store key.
    backend: str = "auto"
    #: Burst-recovery policy applied at decode time: "static" decodes
    #: every shot with the unit-weight graph; "reweight" /
    #: "discard_window" run the streaming strike detector per batch and
    #: adapt flagged shots' decoding (:mod:`repro.detect.recovery`).
    #: Part of the task identity (it changes the counted errors), so it
    #: participates in the store key.
    recovery: str = "static"
    #: Rare-event sampling measure (:mod:`repro.rare`): plain Monte
    #: Carlo by default; "tilt" boosts intrinsic depolarizing sites and
    #: carries per-shot likelihood-ratio weights, "split" resamples the
    #: frame batch toward high-syndrome trajectories at round
    #: boundaries.  The sampler selects the random stream *and* the
    #: estimator, so it participates in the store key.
    sampler: SamplerSpec = SamplerSpec()
    shots: int = 2000
    seed: int = 0
    #: Free-form labels propagated into result rows (e.g. sweep axes).
    tags: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        if not isinstance(self.decoder, DecoderSpec):
            object.__setattr__(self, "decoder", as_decoder(self.decoder))
        # Imported here: repro.detect consumes the decoder/code layers,
        # which the spec module must stay importable without.
        from ..detect.recovery import RECOVERY_POLICIES

        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {self.recovery!r}; expected "
                f"one of {RECOVERY_POLICIES}")

    def with_tags(self, **tags: object) -> "InjectionTask":
        merged = dict(self.tags)
        merged.update({k: str(v) for k, v in tags.items()})
        return replace(self, tags=tuple(sorted(merged.items())))

    @property
    def label(self) -> str:
        parts = [self.code.label]
        if self.arch is not None:
            parts.append(f"@{self.arch.label}")
        if self.fault.kind == "radiation":
            if self.fault.strike_round >= 0:
                parts.append(f"rad(q{self.fault.root_qubit},"
                             f"r{self.fault.strike_round}"
                             f"*{self.fault.intensity:g})")
            else:
                parts.append(f"rad(q{self.fault.root_qubit},"
                             f"t{self.fault.time_index})")
        elif self.fault.kind == "erasure":
            parts.append(f"erase({len(self.fault.qubits)}q)")
        parts.append(f"p={self.intrinsic_p:g}")
        if self.recovery != "static":
            parts.append(f"+{self.recovery}")
        if self.sampler.weighted:
            parts.append(f"~{self.sampler.label}")
        return " ".join(parts)


def task_from_dict(d: Mapping[str, Any]) -> InjectionTask:
    """Rebuild an :class:`InjectionTask` from its canonical dict.

    Inverse of :func:`repro.injection.store.canonical_task` after a JSON
    round trip: the wire form is what the campaign service ships to pull
    runners and what ``done`` store records embed, so a reconstructed
    task must hash to the **same task key** as the original.  Values are
    therefore passed through untouched (JSON preserves int-vs-float, and
    a coercion here would silently re-key the point); only JSON's
    structural lossiness is undone — lists become the tuples the frozen
    dataclasses expect.
    """
    code = d["code"]
    fault = dict(d.get("fault") or {})
    if "qubits" in fault:
        fault["qubits"] = tuple(fault["qubits"])
    arch = d.get("arch")
    return InjectionTask(
        code=CodeSpec(kind=code["kind"], distance=tuple(code["distance"])),
        fault=FaultSpec(**fault),
        arch=None if arch is None else ArchSpec(
            name=arch["name"], args=tuple(arch.get("args", ()))),
        layout=d.get("layout", "best"),
        intrinsic_p=d.get("intrinsic_p", 0.01),
        rounds=d.get("rounds", 2),
        basis=d.get("basis", "Z"),
        decoder=as_decoder(d.get("decoder")),
        readout=d.get("readout", "ancilla"),
        backend=d.get("backend", "auto"),
        recovery=d.get("recovery", "static"),
        sampler=as_sampler(d.get("sampler")),
        shots=d.get("shots", 2000),
        seed=d.get("seed", 0),
        tags=tuple((str(k), str(v)) for k, v in d.get("tags", ())),
    )


# ----------------------------------------------------------------------
# Worker-side cached builders (per-process; specs are hashable).
# ----------------------------------------------------------------------

@lru_cache(maxsize=256)
def build_experiment(code: CodeSpec, rounds: int, basis: str
                     ) -> MemoryExperiment:
    return build_memory_experiment(code.build(), rounds=rounds, basis=basis)


@lru_cache(maxsize=256)
def build_arch(arch: ArchSpec) -> ArchitectureGraph:
    return arch.build()
