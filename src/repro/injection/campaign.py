"""Fault-injection campaign engine.

Executes :class:`~repro.injection.spec.InjectionTask` points: build the
memory experiment, transpile it onto the task's architecture, attach the
intrinsic noise model and the specified fault, run the batched noisy
simulation, decode, count logical errors.

Execution is **chunked and streaming**: a task's shot budget is
partitioned into canonical simulation blocks of :data:`SIM_BLOCK` shots,
each seeded independently from the task seed via ``SeedSequence``
(:func:`repro.util.rng.block_seed`).  Blocks are the only unit that ever
touches the simulator, so

* memory stays bounded at any shot count (one block of records at a
  time, counts aggregated as scalars),
* a run's counts are **bit-identical however the blocks are grouped**
  into chunks — single-chunk, streamed, interrupted-and-resumed, serial
  or process-parallel all agree,
* adaptive policies can stop between chunks without perturbing the
  sampled stream of any shot that did run.

Chunks (whole numbers of blocks, :data:`DEFAULT_CHUNK_SHOTS` shots by
default) are the checkpoint/decision granularity: after each chunk the
engine can persist progress to a :class:`~repro.injection.store.
CampaignStore` and ask an :class:`~repro.injection.adaptive.
AdaptivePolicy` whether the point is resolved.
"""

from __future__ import annotations

import dataclasses
import time
from functools import lru_cache
from typing import (Callable, Iterable, Iterator, List, Optional, Tuple,
                    Union)

import numpy as np

from .. import obs
from ..codes.base import MemoryExperiment
from ..frames import (
    FrameLoweringError,
    FrameProgram,
    FrameSimulator,
    compile_frame_program,
)
from ..noise import (
    DepolarizingNoise,
    ErasureChannel,
    NoiseModel,
    RadiationEvent,
    run_batch_noisy,
)
from ..decoders import DecoderSpec, SyndromeBatch, as_decoder, decoder_for
from ..rare.sampler import SamplerSpec, as_sampler
from ..rare.stats import WeightStats
from ..transpile import transpile
from ..util.parallel import parallel_map
from ..util.rng import block_seed, frame_ref_seed, task_seed
from .adaptive import AdaptivePolicy
from .results import (SIM_BLOCK, ChunkResult, InjectionResult, ResultSet,
                      normalize_prior)
from .spec import ArchSpec, CodeSpec, InjectionTask, build_arch, build_experiment
from .store import CampaignStore, task_key

#: Default chunk (checkpoint / adaptive-decision) granularity, in shots.
#: Rounded up to a whole number of blocks.
DEFAULT_CHUNK_SHOTS = 2 * SIM_BLOCK

#: Hot-path metric handles, cached once (obs.reset zeroes them in
#: place, so these stay valid across resets and forks).  Incremented at
#: block/chunk granularity only — never per shot.
_OBS_SHOTS = obs.counter("engine.shots")
_OBS_ERRORS = obs.counter("engine.errors")
_OBS_BLOCKS = obs.counter("engine.blocks")
_OBS_CHUNKS = obs.counter("engine.chunks")
_OBS_DECISIONS = obs.counter("engine.decisions")
_OBS_EARLY_STOPS = obs.counter("engine.early_stops")


@lru_cache(maxsize=256)
def _prepared(code: CodeSpec, rounds: int, basis: str,
              arch: Optional[ArchSpec], layout: str,
              decoder_spec: Union[DecoderSpec, str],
              readout: str = "ancilla"):
    """Worker-side cache: (experiment-on-physical-qubits, decoder, swaps).

    Transpilation and detector-graph construction dominate small tasks;
    caching them per worker process amortises the cost across the many
    tasks sharing a configuration.
    """
    with obs.span("compile"):
        experiment = build_experiment(code, rounds, basis)
        swap_count = 0
        if arch is not None:
            graph = build_arch(arch)
            routed = transpile(experiment.circuit, graph, layout=layout)
            experiment = dataclasses.replace(experiment,
                                             circuit=routed.circuit)
            swap_count = routed.swap_count
        decoder = decoder_for(experiment, decoder_spec,
                              use_final_data=(readout == "data"))
    return experiment, decoder, swap_count


def _build_noise(task: InjectionTask, experiment: MemoryExperiment
                 ) -> NoiseModel:
    channels = []
    fault = task.fault
    if fault.kind == "radiation":
        if task.arch is not None:
            graph = build_arch(task.arch)
            distances = graph.distances_from(fault.root_qubit)
            nq = graph.num_qubits
        else:
            nq = experiment.circuit.num_qubits
            positions = (experiment.code.qubit_positions()
                         if fault.strike_round >= 0 else None)
            # Burst scenarios without an architecture spread over the
            # code's own planar embedding (device ~ lattice); legacy
            # static faults keep the qubit-line metric (mainly tests).
            distances = None if positions is not None else {
                q: abs(q - fault.root_qubit) for q in range(nq)}
        model_kwargs = dict(gamma=fault.gamma, n=fault.spatial_n,
                            num_samples=fault.num_samples,
                            spread=fault.spread)
        if distances is not None:
            event = RadiationEvent(
                root_qubit=fault.root_qubit, distances=distances,
                num_qubits=nq, **model_kwargs)
        else:
            event = RadiationEvent.from_positions(
                fault.root_qubit, positions, **model_kwargs)
        if fault.strike_round >= 0:
            if fault.strike_round >= task.rounds:
                raise ValueError(
                    f"strike_round {fault.strike_round} outside the "
                    f"{task.rounds}-round experiment")
            channels.append(event.burst(
                fault.strike_round,
                max(1, experiment.code.measures_per_round),
                scale=fault.intensity))
        else:
            channels.append(event.channel(fault.time_index))
    elif fault.kind == "erasure":
        channels.append(ErasureChannel(fault.qubits, fault.probability))
    if task.intrinsic_p > 0:
        channels.append(DepolarizingNoise(task.intrinsic_p))
    return NoiseModel(channels)


def _frame_program(task: InjectionTask, experiment: MemoryExperiment,
                   noise: NoiseModel) -> Optional[FrameProgram]:
    """Resolve the task's backend: a compiled frame program, or ``None``
    for the batched-tableau path.

    ``"auto"`` takes the frame path only when the lowering is *exact*
    (the paper's fault semantics are preserved bit-for-bit in
    distribution); ``"frames"`` also accepts programs with twirled reset
    sites — the documented reset-to-mixed approximation — and fails
    loudly when a channel has no lowering at all.

    The program embeds the reference sample, seeded from the task seed
    alone (:func:`frame_ref_seed`), so every block, chunk grouping and
    resume of the task shares one reference — the chunking-invariance
    contract holds per backend.
    """
    if task.backend == "tableau":
        return None
    try:
        with obs.span("compile"):
            program = compile_frame_program(
                experiment.circuit, noise, rng=frame_ref_seed(task.seed))
    except FrameLoweringError:
        if task.backend == "frames":
            raise
        return None
    if task.backend == "auto" and not program.exact_noise:
        return None
    return program


@lru_cache(maxsize=256)
def _resolved_sampler(task: InjectionTask) -> SamplerSpec:
    """Resolve an auto-tilt task's sampler by running the pilot once.

    Cached per process and keyed by the full task spec, so the pilot
    runs at most once per task wherever resolution happens.
    ``Campaign._seeded`` resolves in the *parent* before dispatch —
    workers then receive pinned samplers and never re-run the pilot —
    while direct ``run_task`` callers resolve lazily through
    :func:`_task_context`.  The pilot is a pure function of the task
    spec (reserved seed path), so every resolution site pins the same
    tilt and task keys stay consistent across run modes and resumes.
    """
    probe = dataclasses.replace(
        task, sampler=dataclasses.replace(task.sampler, tilt=1.0))
    experiment, decoder, noise, program, _, _ = _task_context(probe)
    # Imported lazily (the pilot executes blocks through this module's
    # own block runner).
    from ..rare.pilot import resolve_tilt

    return resolve_tilt(task, experiment, decoder, noise, program)


@lru_cache(maxsize=64)
def _task_context(task: InjectionTask):
    """Worker-side cache of everything a chunk execution needs.

    ``(experiment, base decoder, noise model, frame program, resolved
    sampler, tilted-tableau model)`` depend only on the task spec, so
    they are shared by every chunk of the task — crucial for the
    parallel scheduler, whose workers execute a task's blocks one small
    lease at a time: without this cache each lease would re-run the
    reference pass, the noise lowering, and (for auto-tilt tasks) the
    pilot run.

    Sampler resolution happens here: ``tilt=0`` (auto) runs the
    deterministic pilot controller once and pins the chosen tilt;
    ``split`` validates that the task actually resolved to the frame
    backend; tableau-path tilts pre-build the tilted noise model and
    its shared weight sink.
    """
    experiment, decoder, _ = _prepared(
        task.code, task.rounds, task.basis, task.arch, task.layout,
        task.decoder, task.readout)
    noise = _build_noise(task, experiment)
    program = _frame_program(task, experiment, noise)
    sampler = task.sampler
    tilted = None
    if sampler.kind == "split" and program is None:
        raise ValueError(
            "sampler 'split' resamples bit-packed frame batches and "
            "needs the frame backend; set backend='frames' (or 'auto' "
            "with an exactly-lowerable noise model)")
    if sampler.kind == "tilt":
        if sampler.auto_tilt:
            sampler = _resolved_sampler(task)
        if program is None:
            from ..rare.tilt import tilted_noise_model

            tilted = tilted_noise_model(noise, sampler)
    return experiment, decoder, noise, program, sampler, tilted


def execute_block(experiment: MemoryExperiment, decoder, noise, program,
                  sampler: SamplerSpec, tilted, size: int, rng):
    """Run + decode one simulation block under a sampling measure.

    Returns ``(num_errors, raw_errors, corrections,
    weight_stats-or-None)``.  This is the one place a noise realisation
    is ever drawn, shared by the serial engine, the parallel workers
    (via :func:`iter_task_chunks`) and the auto-tilt pilot — so every
    consumer samples the identical stream for identical inputs.

    On the frame backend the block stays bit-packed end to end: the
    sampler's word stream is wrapped in a :class:`~repro.decoders.
    batch.SyndromeBatch` and packed-native decoders (all in-repo ones,
    including the burst-adaptive wrapper) extract syndromes, detectors
    and the raw readout by whole-word ops — the full-record
    ``unpack_words`` round-trip only happens for third-party decoders
    that advertise ``packed_native = False``.
    """
    weights = None
    with obs.span("sample"):
        if program is not None:
            if sampler.kind == "split":
                from ..rare.split import run_split_packed

                sim = FrameSimulator(experiment.circuit.num_qubits, size,
                                     rng=rng)
                record_words, weights = run_split_packed(
                    sim, program, experiment, sampler)
            else:
                tilt = sampler.tilt if sampler.kind == "tilt" else 1.0
                sim = FrameSimulator(experiment.circuit.num_qubits, size,
                                     rng=rng, tilt=tilt,
                                     tilt_p_cap=sampler.p_cap)
                record_words = sim.run_packed(program)
                if sampler.kind == "tilt":
                    weights = sim.shot_weights()
            batch = SyndromeBatch.from_record_words(record_words, size)
        elif sampler.kind == "tilt":
            tilted_model, sink = tilted
            sink.reset(size)
            batch = SyndromeBatch.from_records(run_batch_noisy(
                experiment.circuit, tilted_model, size, rng=rng,
                backend="tableau"))
            weights = sink.weights()
        else:
            batch = SyndromeBatch.from_records(run_batch_noisy(
                experiment.circuit, noise, size, rng=rng,
                backend="tableau"))
    with obs.span("decode"):
        if getattr(decoder, "packed_native", False):
            decoded = decoder.decode_batch(experiment, batch)
        else:
            # Unpack fallback for decoders that only take uint8 rows.
            decoded = decoder.decode_batch(experiment, batch.records)
    readout = batch.bit_column(experiment.readout_cbit)
    errors = decoded.num_errors
    raw = int(np.count_nonzero(readout != experiment.expected_logical))
    corr = int(np.count_nonzero(decoded.corrections))
    stats = (WeightStats.from_weights(weights, decoded.errors)
             if sampler.weighted else None)
    return errors, raw, corr, stats


def _normalize_chunk(chunk_shots: Optional[int]) -> int:
    """Round a requested chunk size up to a whole number of blocks."""
    if chunk_shots is None:
        return DEFAULT_CHUNK_SHOTS
    chunk_shots = int(chunk_shots)
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    blocks = -(-chunk_shots // SIM_BLOCK)
    return blocks * SIM_BLOCK


def iter_task_chunks(task: InjectionTask,
                     chunk_shots: Optional[int] = None,
                     start_shot: int = 0,
                     total_shots: Optional[int] = None
                     ) -> Iterator[ChunkResult]:
    """Stream a task's shots chunk by chunk.

    Yields one :class:`ChunkResult` per chunk covering
    ``[start_shot, total_shots)`` (``total_shots`` defaults to
    ``task.shots``).  ``start_shot`` must sit on a block boundary —
    the only positions a checkpoint can legally stop at short of the
    final, possibly partial, block.
    """
    total = task.shots if total_shots is None else int(total_shots)
    chunk = _normalize_chunk(chunk_shots)
    if start_shot % SIM_BLOCK and start_shot < total:
        raise ValueError(
            f"start_shot {start_shot} is not on a {SIM_BLOCK}-shot "
            f"block boundary")
    # Backend + sampler resolution happens once per task: the frame
    # program (the reference pass + lowered noise) and the resolved
    # sampling measure are shared by every block of every chunk, across
    # however many calls schedule them.
    experiment, decoder, noise, program, sampler, tilted = \
        _task_context(task)
    if task.recovery != "static":
        # Imported lazily (repro.detect sits above the decoder layer).
        from ..detect.recovery import BurstAdaptiveDecoder

        decoder = BurstAdaptiveDecoder(decoder, policy=task.recovery)
    pos = start_shot
    while pos < total:
        t0 = time.perf_counter()
        end = min(total, pos + chunk)
        errors = raw = corr = 0
        block_weights = [] if sampler.weighted else None
        block = pos
        while block < end:
            size = min(SIM_BLOCK, end - block)
            rng = np.random.default_rng(
                block_seed(task.seed, block // SIM_BLOCK))
            b_err, b_raw, b_corr, b_stats = execute_block(
                experiment, decoder, noise, program, sampler, tilted,
                size, rng)
            errors += b_err
            raw += b_raw
            corr += b_corr
            _OBS_SHOTS.inc(size)
            _OBS_ERRORS.inc(b_err)
            _OBS_BLOCKS.inc()
            if block_weights is not None:
                block_weights.append((b_stats.wsum, b_stats.wsq,
                                      b_stats.esum, b_stats.esq))
            block += size
        _OBS_CHUNKS.inc()
        yield ChunkResult(start=pos, shots=end - pos, errors=errors,
                          raw_errors=raw, corrections_applied=corr,
                          elapsed_s=time.perf_counter() - t0,
                          block_weights=(None if block_weights is None
                                         else tuple(block_weights)))
        pos = end


def _assemble(task: InjectionTask, shots: int, errors: int, raw: int,
              corr: int, elapsed: float, chunks: int,
              weights: Optional[Tuple[float, float, float, float]] = None
              ) -> InjectionResult:
    _, _, swap_count = _prepared(
        task.code, task.rounds, task.basis, task.arch, task.layout,
        task.decoder, task.readout)
    return InjectionResult(
        task=task, shots=shots, errors=errors, raw_errors=raw,
        corrections_applied=corr, swap_count=swap_count,
        elapsed_s=elapsed, chunks=max(chunks, 1), weights=weights)


def _weight_stats(task: InjectionTask, shots: int,
                  weights: Optional[Tuple[float, float, float, float]]
                  ) -> Optional[WeightStats]:
    """The policy-facing weighted moments, or ``None`` for plain MC."""
    if not task.sampler.weighted:
        return None
    w = weights or (0.0, 0.0, 0.0, 0.0)
    return WeightStats(shots=shots, wsum=w[0], wsq=w[1], esum=w[2],
                       esq=w[3], iid=task.sampler.kind != "split")


def run_task(task: InjectionTask,
             chunk_shots: Optional[int] = None,
             adaptive: Optional[AdaptivePolicy] = None,
             prior: Tuple = (0, 0, 0, 0, 0.0, 0),
             on_chunk: Optional[Callable[[ChunkResult], None]] = None
             ) -> InjectionResult:
    """Execute one campaign point (picklable module-level worker).

    ``prior`` — ``(shots, errors, raw_errors, corrections, elapsed_s,
    chunks[, weight_moments])`` already banked for this point (store
    resume); execution continues at the next block boundary.  With an
    ``adaptive`` policy the point runs watermark segment by watermark
    segment and stops at the first decision threshold where the
    precision target is met, capped at ``adaptive.ceiling(task.shots)``
    — the stop shot depends only on the canonical block stream, never
    on ``chunk_shots`` (which keeps its role as checkpoint granularity
    within a segment) or on how a parallel scheduler interleaved the
    work.  Without a policy exactly ``task.shots`` run.  ``on_chunk``
    fires after each finished chunk (serial checkpoint streaming).
    """
    shots, errors, raw, corr, elapsed, nchunks, weights = \
        normalize_prior(prior)
    weighted = task.sampler.weighted
    if weighted and weights is None:
        weights = (0.0, 0.0, 0.0, 0.0)
    mon = obs.active()
    target = adaptive.ceiling(task.shots) if adaptive else task.shots
    while shots < target:
        # Decisions fire only ON the watermark grid: a prior that
        # happens to sit between watermarks (e.g. a fine-grained
        # checkpoint) resumes sampling to the next watermark first, so
        # the evaluated prefixes — and the stop shot — match an
        # uninterrupted run exactly.
        if adaptive and shots % adaptive.decision_step == 0 and shots:
            _OBS_DECISIONS.inc()
            if adaptive.should_stop(errors, shots, task.shots,
                                    _weight_stats(task, shots, weights)):
                _OBS_EARLY_STOPS.inc()
                break
        segment_end = (adaptive.next_watermark(shots, task.shots)
                       if adaptive else target)
        for chunk in iter_task_chunks(task, chunk_shots=chunk_shots,
                                      start_shot=shots,
                                      total_shots=segment_end):
            shots = chunk.end
            errors += chunk.errors
            raw += chunk.raw_errors
            corr += chunk.corrections_applied
            elapsed += chunk.elapsed_s
            nchunks += 1
            if weighted:
                weights = chunk.fold_weights(weights)
            if on_chunk is not None:
                on_chunk(chunk)
            if mon is not None:
                ws = (_weight_stats(task, shots, weights) if weighted
                      else None)
                if ws is not None:
                    obs.gauge("rare.ess").set(ws.ess)
                    obs.gauge("rare.wsum").set(ws.wsum)
                    obs.gauge("rare.wsq").set(ws.wsq)
                mon.task_progress(task, shots, errors, target, ws)
                mon.tick()
    return _assemble(task, shots, errors, raw, corr, elapsed, nchunks,
                     weights if weighted else None)


def _replay_prior(store: CampaignStore, key: str,
                  adaptive: Optional[AdaptivePolicy],
                  task: InjectionTask) -> Tuple:
    """The resumable prior for one point, policy decisions replayed.

    Without a policy this is :meth:`CampaignStore.partial`.  With one,
    banked chunks are consumed in contiguous order while re-evaluating
    the stopping rule at each watermark, so the prior ends exactly
    where an uninterrupted adaptive run would have stopped — a store
    may legitimately hold chunks *past* that point (a parallel
    worker's speculative in-flight leases land in its shard before the
    stop decision; a fixed-budget run banks the whole budget) and they
    must not drag the resumed stop shot forward.  A banked chunk that
    straddles an undecided watermark (coarser ``chunk_shots`` than the
    decision grid) is not consumed: its counts at the watermark are
    unrecoverable, so the engine re-samples from the last aligned
    boundary instead — canonical blocks make the re-run bit-identical.
    """
    task_shots = task.shots
    if adaptive is None:
        return store.partial(key)
    shots = errors = raw = corr = nchunks = 0
    elapsed = 0.0
    weights = (0.0, 0.0, 0.0, 0.0)
    weighted = task.sampler.weighted
    ceiling = adaptive.ceiling(task_shots)
    for chunk in store.chunks_for(key):
        if chunk.start != shots or shots >= ceiling:
            break
        boundary = adaptive.next_watermark(shots, task_shots)
        if chunk.end > boundary or (chunk.end % SIM_BLOCK
                                    and chunk.end < ceiling):
            break
        shots = chunk.end
        errors += chunk.errors
        raw += chunk.raw_errors
        corr += chunk.corrections_applied
        elapsed += chunk.elapsed_s
        nchunks += 1
        if weighted:
            weights = chunk.fold_weights(weights)
        if shots >= boundary and adaptive.should_stop(
                errors, shots, task_shots,
                _weight_stats(task, shots, weights) if weighted
                else None):
            break
    return (shots, errors, raw, corr, elapsed, nchunks,
            weights if weighted else None)


def _reusable(banked: Optional[InjectionResult],
              adaptive: Optional[AdaptivePolicy]) -> bool:
    """Is a stored completed result valid for the *current* run mode?

    The task key pins the spec (including the shot budget) but not the
    stopping rule, so a point completed by an adaptive run may hold
    fewer shots than the fixed budget.  A fixed-mode resume therefore
    only reuses full-budget results (and tops up the banked chunks
    otherwise — the blocks are canonical, so continuing is exact); an
    adaptive resume reuses anything its own policy would have stopped
    at, including full-budget results.
    """
    if banked is None:
        return False
    if adaptive is None:
        return banked.shots >= banked.task.shots
    return adaptive.should_stop(banked.errors, banked.shots,
                                banked.task.shots,
                                banked.weight_stats if banked.weighted
                                else None)


def _run_point(payload: Tuple[InjectionTask, Optional[int],
                              Optional[AdaptivePolicy],
                              Tuple[int, int, int, int, float, int]]
               ) -> Tuple[InjectionResult, List[ChunkResult]]:
    """Pool worker: run one point, returning its new chunks for the
    parent process to checkpoint (workers never touch the store file)."""
    task, chunk_shots, adaptive, prior = payload
    new_chunks: List[ChunkResult] = []
    result = run_task(task, chunk_shots=chunk_shots, adaptive=adaptive,
                      prior=prior, on_chunk=new_chunks.append)
    return result, new_chunks


class Campaign:
    """A set of injection tasks executed together.

    Parameters
    ----------
    tasks:
        Initial task list (more can be added).
    root_seed:
        Seeds every task missing an explicit non-zero seed, derived
        per-index via ``SeedSequence`` so the campaign is reproducible
        under any parallel schedule.
    workers:
        Default worker count for :meth:`run` (the sweep-spec
        ``"workers"`` key); ``None`` leaves the choice to the caller.
    """

    def __init__(self, tasks: Optional[Iterable[InjectionTask]] = None,
                 root_seed: int = 2024,
                 workers: Optional[int] = None) -> None:
        self.tasks: List[InjectionTask] = list(tasks or [])
        self.root_seed = int(root_seed)
        self.workers = None if workers is None else int(workers)

    def add(self, task: InjectionTask) -> None:
        self.tasks.append(task)

    def extend(self, tasks: Iterable[InjectionTask]) -> None:
        self.tasks.extend(tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def _seeded(self, backend: Optional[str] = None,
                recovery: Optional[str] = None,
                sampler: Union[SamplerSpec, str, None] = None,
                decoder: Union[DecoderSpec, str, None] = None
                ) -> List[InjectionTask]:
        sampler = as_sampler(sampler) if sampler is not None else None
        decoder = as_decoder(decoder) if decoder is not None else None
        out = []
        for i, t in enumerate(self.tasks):
            if t.seed == 0:
                t = dataclasses.replace(t, seed=task_seed(self.root_seed, i))
            if backend is not None and t.backend != backend:
                t = dataclasses.replace(t, backend=backend)
            if recovery is not None and t.recovery != recovery:
                t = dataclasses.replace(t, recovery=recovery)
            if sampler is not None and t.sampler != sampler:
                t = dataclasses.replace(t, sampler=sampler)
            if decoder is not None and t.decoder != decoder:
                t = dataclasses.replace(t, decoder=decoder)
            if t.sampler.auto_tilt:
                # Resolve auto-tilt in the parent, once per task:
                # workers receive the pinned tilt instead of each
                # re-running the (deterministic) pilot, and every run
                # mode keys the store by the same resolved spec.
                t = dataclasses.replace(t, sampler=_resolved_sampler(t))
            out.append(t)
        return out

    def banked(self, store: Union[CampaignStore, str, None],
               adaptive: Optional[AdaptivePolicy] = None,
               backend: Optional[str] = None,
               recovery: Optional[str] = None,
               sampler: Union[SamplerSpec, str, None] = None,
               decoder: Union[DecoderSpec, str, None] = None) -> int:
        """How many of *this campaign's* points a resume would skip
        (store files are shared across campaigns, so ``len(store)``
        over-counts).  Pass the same ``backend``/``recovery``/
        ``sampler``/``decoder`` overrides as the run: all participate
        in the task key."""
        store = CampaignStore.coerce(store)
        if store is None:
            return 0
        return sum(1 for t in self._seeded(backend, recovery, sampler,
                                           decoder)
                   if _reusable(store.result_for(t), adaptive))

    def run(self, max_workers: Optional[int] = None,
            chunk_shots: Optional[int] = None,
            adaptive: Optional[AdaptivePolicy] = None,
            resume: Union[CampaignStore, str, None] = None,
            backend: Optional[str] = None,
            recovery: Optional[str] = None,
            workers: Optional[int] = None,
            sampler: Union[SamplerSpec, str, None] = None,
            decoder: Union[DecoderSpec, str, None] = None) -> ResultSet:
        """Run all tasks; ``max_workers=1`` forces serial execution.

        ``workers`` — hand the campaign to the :mod:`repro.parallel`
        work-stealing scheduler with that many worker processes
        (``None`` falls back to the campaign's own ``workers`` default,
        e.g. from a sweep spec).  Unlike the legacy point-level pool
        (``max_workers``), the scheduler splits *within* tasks at
        simulation-block granularity, so even a single deep point
        scales across cores; counts and adaptive stop shots are
        bit-identical to a serial run.

        ``resume`` — a :class:`CampaignStore` (or its path): completed
        points are reconstructed from the checkpoint instead of re-run,
        partially-sampled points continue from their last recorded
        chunk, and every newly finished chunk/point is appended, so a
        killed campaign picks up where it stopped with identical
        results.  ``adaptive`` applies an early-stopping policy to every
        point (``task.shots`` becomes the ceiling unless the policy
        carries its own).  ``backend`` overrides every task's simulation
        backend ("auto"/"frames"/"tableau"); since the backend is part
        of the task identity, stores keep per-backend results distinct.
        ``recovery`` likewise overrides every task's burst-recovery
        policy ("static"/"reweight"/"discard_window"), ``sampler`` the
        rare-event sampling measure ("mc"/"tilt"/"split", a
        :class:`~repro.rare.sampler.SamplerSpec`, or a string like
        "tilt:8" — see :func:`repro.rare.sampler.as_sampler`), and
        ``decoder`` the decoding configuration (a :class:`~repro.
        decoders.spec.DecoderSpec` or a string like "mwpm" /
        "union-find:hooks" — see :func:`repro.decoders.spec.
        as_decoder`).
        """
        mon = obs.active()
        try:
            return self._run(mon, max_workers, chunk_shots, adaptive,
                             resume, backend, recovery, workers, sampler,
                             decoder)
        finally:
            if mon is not None:
                # Campaign boundary, not session end: force a telemetry
                # snapshot/redraw but leave the ambient session open
                # (headline runs several campaigns in one session).
                mon.campaign_end()

    def _run(self, mon, max_workers, chunk_shots, adaptive, resume,
             backend, recovery, workers, sampler, decoder) -> ResultSet:
        seeded = self._seeded(backend, recovery, sampler, decoder)
        store = CampaignStore.coerce(resume)
        if workers is None and max_workers is None:
            # The sweep-spec default fills in only when the caller
            # expressed no preference: an explicit max_workers=1 (the
            # documented serial switch) must never be overridden into
            # a process fleet by a spec's "workers" key.
            workers = self.workers
        use_scheduler = workers is not None and int(workers) > 1
        if workers is not None and int(workers) == 1:
            max_workers = 1     # "one process total" — serial streaming
        if store is not None:
            # A crashed parallel run leaves per-worker shards next to
            # the store; fold them in before computing priors —
            # whatever mode this resume runs in — so no completed
            # chunk is ever re-sampled.
            from ..parallel import absorb_stale_shards

            absorb_stale_shards(store)
        results: List[Optional[InjectionResult]] = [None] * len(seeded)
        todo: List[int] = []
        payloads = []
        keys: List[Optional[str]] = [None] * len(seeded)
        for i, t in enumerate(seeded):
            prior = (0, 0, 0, 0, 0.0, 0, None)
            if store is not None:
                keys[i] = task_key(t)
                banked = store.result_for(t)
                if _reusable(banked, adaptive):
                    results[i] = banked
                    continue
                prior = _replay_prior(store, keys[i], adaptive, t)
            todo.append(i)
            payloads.append((t, chunk_shots, adaptive, prior))

        if mon is not None:
            mon.begin_campaign(
                seeded, [adaptive.ceiling(t.shots) if adaptive else t.shots
                         for t in seeded])
            for i, banked in enumerate(results):
                if banked is not None:
                    mon.task_done(seeded[i], banked.shots, banked.errors)

        if use_scheduler and payloads:
            from ..parallel import WorkStealingScheduler

            scheduler = WorkStealingScheduler(
                int(workers), chunk_shots=chunk_shots, adaptive=adaptive,
                store=store)
            for i, result in zip(todo, scheduler.run(
                    [seeded[i] for i in todo],
                    priors=[p[3] for p in payloads])):
                results[i] = result
            return ResultSet(results)

        if store is not None and (max_workers == 1 or len(payloads) <= 1):
            # Serial + store: stream every chunk straight to the
            # checkpoint, so even a kill mid-point loses at most one
            # chunk of work.
            for j, (t, cs, ad, prior) in enumerate(payloads):
                i, key = todo[j], keys[todo[j]]
                result = run_task(
                    t, chunk_shots=cs, adaptive=ad, prior=prior,
                    on_chunk=lambda c, k=key: store.append_chunk(k, c))
                store.mark_done(key, result)
                results[i] = result
                if mon is not None:
                    mon.task_done(t, result.shots, result.errors)
            return ResultSet(results)

        def checkpoint(j: int, out: Tuple[InjectionResult,
                                          List[ChunkResult]]) -> None:
            result, new_chunks = out
            i = todo[j]
            results[i] = result
            if store is not None:
                for chunk in new_chunks:
                    store.append_chunk(keys[i], chunk)
                store.mark_done(keys[i], result)
            if mon is not None:
                mon.task_done(seeded[i], result.shots, result.errors)
                mon.tick()

        parallel_map(_run_point, payloads, max_workers=max_workers,
                     on_result=checkpoint)
        return ResultSet(results)
