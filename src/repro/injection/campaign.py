"""Fault-injection campaign runner.

Executes :class:`~repro.injection.spec.InjectionTask` points: build the
memory experiment, transpile it onto the task's architecture, attach the
intrinsic noise model and the specified fault, run the batched noisy
simulation, decode, count logical errors.  Points are independent, so
campaigns distribute over a process pool (serial fallback) with one
deterministic random stream per task.
"""

from __future__ import annotations

import dataclasses
import time
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..codes.base import MemoryExperiment
from ..decoders import decoder_for
from ..noise import (
    DepolarizingNoise,
    ErasureChannel,
    NoiseModel,
    RadiationEvent,
    run_batch_noisy,
)
from ..transpile import transpile
from ..util.parallel import parallel_map
from ..util.rng import task_seed
from .results import InjectionResult, ResultSet
from .spec import ArchSpec, CodeSpec, InjectionTask, build_arch, build_experiment


@lru_cache(maxsize=256)
def _prepared(code: CodeSpec, rounds: int, basis: str,
              arch: Optional[ArchSpec], layout: str, decoder_kind: str,
              readout: str = "ancilla"):
    """Worker-side cache: (experiment-on-physical-qubits, decoder, swaps).

    Transpilation and detector-graph construction dominate small tasks;
    caching them per worker process amortises the cost across the many
    tasks sharing a configuration.
    """
    experiment = build_experiment(code, rounds, basis)
    swap_count = 0
    if arch is not None:
        graph = build_arch(arch)
        routed = transpile(experiment.circuit, graph, layout=layout)
        experiment = dataclasses.replace(experiment, circuit=routed.circuit)
        swap_count = routed.swap_count
    decoder = decoder_for(experiment, decoder_kind,
                          use_final_data=(readout == "data"))
    return experiment, decoder, swap_count


def _build_noise(task: InjectionTask, experiment: MemoryExperiment
                 ) -> NoiseModel:
    channels = []
    fault = task.fault
    if fault.kind == "radiation":
        if task.arch is not None:
            graph = build_arch(task.arch)
            distances = graph.distances_from(fault.root_qubit)
            nq = graph.num_qubits
        else:
            # No architecture: faults spread over the circuit's own qubit
            # line (unit distance per index step) — mainly for tests.
            nq = experiment.circuit.num_qubits
            distances = {q: abs(q - fault.root_qubit) for q in range(nq)}
        event = RadiationEvent(
            root_qubit=fault.root_qubit, distances=distances, num_qubits=nq,
            gamma=fault.gamma, n=fault.spatial_n,
            num_samples=fault.num_samples, spread=fault.spread)
        channels.append(event.channel(fault.time_index))
    elif fault.kind == "erasure":
        channels.append(ErasureChannel(fault.qubits, fault.probability))
    if task.intrinsic_p > 0:
        channels.append(DepolarizingNoise(task.intrinsic_p))
    return NoiseModel(channels)


def run_task(task: InjectionTask) -> InjectionResult:
    """Execute one campaign point (picklable module-level worker)."""
    t0 = time.perf_counter()
    experiment, decoder, swap_count = _prepared(
        task.code, task.rounds, task.basis, task.arch, task.layout,
        task.decoder, task.readout)
    noise = _build_noise(task, experiment)
    records = run_batch_noisy(experiment.circuit, noise, task.shots,
                              rng=task.seed)
    result = decoder.decode_batch(experiment, records)
    raw = experiment.raw_readout(records)
    raw_errors = int(np.count_nonzero(raw != experiment.expected_logical))
    return InjectionResult(
        task=task,
        shots=task.shots,
        errors=result.num_errors,
        raw_errors=raw_errors,
        corrections_applied=int(np.count_nonzero(result.corrections)),
        swap_count=swap_count,
        elapsed_s=time.perf_counter() - t0,
    )


class Campaign:
    """A set of injection tasks executed together.

    Parameters
    ----------
    tasks:
        Initial task list (more can be added).
    root_seed:
        Seeds every task missing an explicit non-zero seed, derived
        per-index via ``SeedSequence`` so the campaign is reproducible
        under any parallel schedule.
    """

    def __init__(self, tasks: Optional[Iterable[InjectionTask]] = None,
                 root_seed: int = 2024) -> None:
        self.tasks: List[InjectionTask] = list(tasks or [])
        self.root_seed = int(root_seed)

    def add(self, task: InjectionTask) -> None:
        self.tasks.append(task)

    def extend(self, tasks: Iterable[InjectionTask]) -> None:
        self.tasks.extend(tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def _seeded(self) -> List[InjectionTask]:
        out = []
        for i, t in enumerate(self.tasks):
            if t.seed == 0:
                t = dataclasses.replace(t, seed=task_seed(self.root_seed, i))
            out.append(t)
        return out

    def run(self, max_workers: Optional[int] = None) -> ResultSet:
        """Run all tasks; ``max_workers=1`` forces serial execution."""
        seeded = self._seeded()
        results = parallel_map(run_task, seeded, max_workers=max_workers)
        return ResultSet(results)
