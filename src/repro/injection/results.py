"""Campaign result containers and aggregation."""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .spec import InjectionTask

#: Canonical simulation block: the batch size every shot is actually
#: simulated at.  Part of the reproducibility contract — changing it
#: changes every sampled stream (keep it fixed; tune *chunk* size for
#: scheduling instead).  Lives here, next to :class:`ChunkResult`, so
#: both the engine and the store can see it without an import cycle.
SIM_BLOCK = 512


def wilson_interval(errors: int, shots: int, z: float = 1.96
                    ) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because campaign points
    frequently sit at very low (or very high) error counts.
    """
    if shots <= 0:
        return (0.0, 1.0)
    p = errors / shots
    denom = 1.0 + z * z / shots
    centre = (p + z * z / (2 * shots)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / shots
                                   + z * z / (4 * shots * shots))
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class ChunkResult:
    """Counts from one contiguous chunk of a task's shot budget.

    Chunks are the engine's streaming/checkpoint unit: they aggregate a
    whole number of canonical simulation blocks, so a chunk's counts
    depend only on the task spec and its ``[start, start+shots)`` range
    — never on how the surrounding run was scheduled or interrupted.
    """

    start: int
    shots: int
    errors: int
    raw_errors: int
    corrections_applied: int
    elapsed_s: float = 0.0

    @property
    def end(self) -> int:
        return self.start + self.shots

    def to_row(self) -> Dict[str, object]:
        return {"start": self.start, "shots": self.shots,
                "errors": self.errors, "raw_errors": self.raw_errors,
                "corrections": self.corrections_applied,
                "elapsed_s": self.elapsed_s}

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "ChunkResult":
        return cls(start=int(row["start"]), shots=int(row["shots"]),
                   errors=int(row["errors"]),
                   raw_errors=int(row["raw_errors"]),
                   corrections_applied=int(row["corrections"]),
                   elapsed_s=float(row.get("elapsed_s", 0.0)))


@dataclass
class InjectionResult:
    """Outcome of one campaign point."""

    task: InjectionTask
    shots: int
    errors: int
    raw_errors: int            # readout wrong before decoding
    corrections_applied: int   # shots where the decoder flipped readout
    swap_count: int = 0
    elapsed_s: float = 0.0
    chunks: int = 1            # streaming chunks the counts aggregate

    @property
    def logical_error_rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    @property
    def raw_error_rate(self) -> float:
        return self.raw_errors / self.shots if self.shots else 0.0

    @property
    def confidence_interval(self) -> Tuple[float, float]:
        return wilson_interval(self.errors, self.shots)

    @property
    def counts(self) -> Tuple[int, int, int, int]:
        """``(shots, errors, raw_errors, corrections)`` — the
        deterministic payload, excluding timing/bookkeeping."""
        return (self.shots, self.errors, self.raw_errors,
                self.corrections_applied)

    def to_row(self) -> Dict[str, object]:
        lo, hi = self.confidence_interval
        row: Dict[str, object] = {
            "code": self.task.code.label,
            "arch": self.task.arch.label if self.task.arch else "-",
            "fault": self.task.fault.kind,
            "p": self.task.intrinsic_p,
            "decoder": self.task.decoder,
            "shots": self.shots,
            "errors": self.errors,
            "ler": self.logical_error_rate,
            "ler_lo": lo,
            "ler_hi": hi,
            "raw_ler": self.raw_error_rate,
            "swaps": self.swap_count,
            "seed": self.task.seed,
            "backend": self.task.backend,
            "recovery": self.task.recovery,
        }
        row.update(dict(self.task.tags))
        return row


class ResultSet:
    """Ordered collection of :class:`InjectionResult` with helpers."""

    def __init__(self, results: Optional[Iterable[InjectionResult]] = None
                 ) -> None:
        self.results: List[InjectionResult] = list(results or [])

    def append(self, result: InjectionResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx):
        return self.results[idx]

    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[InjectionResult], bool]
               ) -> "ResultSet":
        return ResultSet(r for r in self.results if predicate(r))

    def filter_tags(self, **tags: object) -> "ResultSet":
        want = {k: str(v) for k, v in tags.items()}

        def match(r: InjectionResult) -> bool:
            have = dict(r.task.tags)
            return all(have.get(k) == v for k, v in want.items())

        return self.filter(match)

    def rates(self) -> np.ndarray:
        return np.array([r.logical_error_rate for r in self.results])

    def median_rate(self) -> float:
        rates = self.rates()
        return float(np.median(rates)) if rates.size else float("nan")

    def mean_rate(self) -> float:
        rates = self.rates()
        return float(np.mean(rates)) if rates.size else float("nan")

    def pooled_rate(self) -> float:
        """Error rate pooling shots across all points."""
        shots = sum(r.shots for r in self.results)
        errors = sum(r.errors for r in self.results)
        return errors / shots if shots else float("nan")

    def total_shots(self) -> int:
        """Shots spent across the whole set (adaptive-run budget line)."""
        return sum(r.shots for r in self.results)

    def counts(self) -> List[Tuple[int, int, int, int]]:
        """Per-point deterministic payloads, in task order — two runs of
        the same campaign are equal iff their ``counts()`` are."""
        return [r.counts for r in self.results]

    def group_by(self, key: Callable[[InjectionResult], object]
                 ) -> Dict[object, "ResultSet"]:
        groups: Dict[object, ResultSet] = {}
        for r in self.results:
            groups.setdefault(key(r), ResultSet()).append(r)
        return groups

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        return [r.to_row() for r in self.results]

    def to_json(self) -> str:
        return json.dumps(self.to_rows(), indent=2, default=str)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
