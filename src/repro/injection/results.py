"""Campaign result containers and aggregation."""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..rare.stats import WeightStats, wilson_from_rate
from .spec import InjectionTask

#: Canonical simulation block: the batch size every shot is actually
#: simulated at.  Part of the reproducibility contract — changing it
#: changes every sampled stream (keep it fixed; tune *chunk* size for
#: scheduling instead).  Lives here, next to :class:`ChunkResult`, so
#: both the engine and the store can see it without an import cycle.
SIM_BLOCK = 512


def wilson_interval(errors: int, shots: int, z: float = 1.96
                    ) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because campaign points
    frequently sit at very low (or very high) error counts.
    """
    if shots <= 0:
        return (0.0, 1.0)
    # Shared float core (repro.rare.stats): the weighted ESS-based
    # interval evaluates the identical expression, so weighted and
    # unweighted decisions agree bit-for-bit at unit weights.
    return wilson_from_rate(errors / shots, shots, z)


#: One block's (or an accumulated prefix's) importance-weight moments.
WeightMoments = Tuple[float, float, float, float]


def fold_moments(acc: WeightMoments, blocks: Sequence[WeightMoments]
                 ) -> WeightMoments:
    """Left-fold per-block weight moments onto an accumulator.

    Weighted counts are floats, and float addition is not associative —
    so the engine defines ONE canonical reduction: a strict left fold
    over the canonical simulation blocks in stream order.  Chunks store
    their moments per block (not pre-summed) precisely so that every
    aggregator — serial streaming, store resume, the parallel
    scheduler's contiguous frontier — performs this same fold and lands
    on bit-identical weighted counts whatever the chunk grouping or
    worker count.
    """
    wsum, wsq, esum, esq = acc
    for b in blocks:
        wsum += b[0]
        wsq += b[1]
        esum += b[2]
        esq += b[3]
    return (wsum, wsq, esum, esq)


def normalize_prior(prior) -> Tuple[int, int, int, int, float, int,
                                    Optional[WeightMoments]]:
    """Coerce a banked-counts prior into its canonical 7-tuple.

    Priors are ``(shots, errors, raw_errors, corrections, elapsed_s,
    chunks)`` with an optional seventh element holding the accumulated
    importance-weight moments ``(wsum, wsq, esum, esq)`` (or ``None``
    for plain-MC history).  The 6-tuple form predates weighted
    sampling and stays accepted everywhere a prior is.
    """
    if len(prior) == 6:
        return (*tuple(prior), None)
    if len(prior) == 7:
        return tuple(prior)
    raise ValueError(f"malformed prior {prior!r}")


@dataclass(frozen=True)
class ChunkResult:
    """Counts from one contiguous chunk of a task's shot budget.

    Chunks are the engine's streaming/checkpoint unit: they aggregate a
    whole number of canonical simulation blocks, so a chunk's counts
    depend only on the task spec and its ``[start, start+shots)`` range
    — never on how the surrounding run was scheduled or interrupted.
    """

    start: int
    shots: int
    errors: int
    raw_errors: int
    corrections_applied: int
    elapsed_s: float = 0.0
    #: Per-canonical-block importance-weight moments, in block order —
    #: one ``(wsum, wsq, esum, esq)`` tuple per simulation block the
    #: chunk covers (see :func:`fold_moments` for why they are kept
    #: unsummed).  ``None`` for plain MC (unit weights, derivable from
    #: the counts), keeping legacy rows/stores valid.
    block_weights: Optional[Tuple[WeightMoments, ...]] = None

    @property
    def end(self) -> int:
        return self.start + self.shots

    @property
    def weighted(self) -> bool:
        return self.block_weights is not None

    def fold_weights(self, acc: WeightMoments) -> WeightMoments:
        """Fold this chunk's block moments onto a running accumulator
        (unit-weight moments for MC chunks)."""
        if self.block_weights is None:
            return fold_moments(acc, [(float(self.shots),
                                       float(self.shots),
                                       float(self.errors),
                                       float(self.errors))])
        return fold_moments(acc, self.block_weights)

    @property
    def weight_stats(self) -> WeightStats:
        """This chunk's weighted moments (unit-weight for MC chunks)."""
        if self.block_weights is None:
            return WeightStats.from_counts(self.shots, self.errors)
        wsum, wsq, esum, esq = self.fold_weights((0.0, 0.0, 0.0, 0.0))
        return WeightStats(shots=self.shots, wsum=wsum, wsq=wsq,
                           esum=esum, esq=esq)

    def to_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "start": self.start, "shots": self.shots,
            "errors": self.errors, "raw_errors": self.raw_errors,
            "corrections": self.corrections_applied,
            "elapsed_s": self.elapsed_s}
        if self.block_weights is not None:
            row["weights"] = [list(b) for b in self.block_weights]
        return row

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "ChunkResult":
        weights = None
        if row.get("weights") is not None:
            weights = tuple(tuple(float(v) for v in b)
                            for b in row["weights"])
        return cls(start=int(row["start"]), shots=int(row["shots"]),
                   errors=int(row["errors"]),
                   raw_errors=int(row["raw_errors"]),
                   corrections_applied=int(row["corrections"]),
                   elapsed_s=float(row.get("elapsed_s", 0.0)),
                   block_weights=weights)


@dataclass
class InjectionResult:
    """Outcome of one campaign point."""

    task: InjectionTask
    shots: int
    errors: int
    raw_errors: int            # readout wrong before decoding
    corrections_applied: int   # shots where the decoder flipped readout
    swap_count: int = 0
    elapsed_s: float = 0.0
    chunks: int = 1            # streaming chunks the counts aggregate
    #: Importance-weight moments for rare-event samplers (None for MC).
    weights: Optional[Tuple[float, float, float, float]] = None

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    @property
    def weight_stats(self) -> WeightStats:
        if self.weights is None:
            return WeightStats.from_counts(self.shots, self.errors)
        wsum, wsq, esum, esq = self.weights
        return WeightStats(shots=self.shots, wsum=wsum, wsq=wsq,
                           esum=esum, esq=esq,
                           iid=self.task.sampler.kind != "split")

    @property
    def logical_error_rate(self) -> float:
        """Point LER: the self-normalized weighted estimate for
        rare-event samplers, the plain rate otherwise."""
        if self.weighted:
            return self.weight_stats.estimate("sn")
        return self.errors / self.shots if self.shots else 0.0

    @property
    def ht_error_rate(self) -> float:
        """Horvitz-Thompson (unbiased) weighted estimate."""
        return self.weight_stats.estimate("ht")

    @property
    def effective_shots(self) -> float:
        """Kish effective sample size (== shots for plain MC)."""
        return self.weight_stats.ess

    @property
    def raw_error_rate(self) -> float:
        return self.raw_errors / self.shots if self.shots else 0.0

    @property
    def confidence_interval(self) -> Tuple[float, float]:
        if self.weighted:
            return self.weight_stats.wilson_interval()
        return wilson_interval(self.errors, self.shots)

    @property
    def counts(self) -> Tuple[int, int, int, int]:
        """``(shots, errors, raw_errors, corrections)`` — the
        deterministic payload, excluding timing/bookkeeping."""
        return (self.shots, self.errors, self.raw_errors,
                self.corrections_applied)

    @property
    def payload(self) -> Tuple:
        """The full deterministic payload: counts plus, for weighted
        runs, the four weight moments — two runs of a weighted point
        must agree on *this*, not just on :attr:`counts`."""
        if self.weights is None:
            return self.counts
        return self.counts + self.weights

    def to_row(self) -> Dict[str, object]:
        lo, hi = self.confidence_interval
        row: Dict[str, object] = {
            "code": self.task.code.label,
            "arch": self.task.arch.label if self.task.arch else "-",
            "fault": self.task.fault.kind,
            "p": self.task.intrinsic_p,
            "decoder": self.task.decoder.label,
            "shots": self.shots,
            "errors": self.errors,
            "ler": self.logical_error_rate,
            "ler_lo": lo,
            "ler_hi": hi,
            "raw_ler": self.raw_error_rate,
            "swaps": self.swap_count,
            "seed": self.task.seed,
            "backend": self.task.backend,
            "recovery": self.task.recovery,
            "sampler": self.task.sampler.label,
        }
        if self.weighted:
            stats = self.weight_stats
            row["ess"] = stats.ess
            row["ler_ht"] = stats.estimate("ht")
        row.update(dict(self.task.tags))
        return row


class ResultSet:
    """Ordered collection of :class:`InjectionResult` with helpers."""

    def __init__(self, results: Optional[Iterable[InjectionResult]] = None
                 ) -> None:
        self.results: List[InjectionResult] = list(results or [])

    def append(self, result: InjectionResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx):
        return self.results[idx]

    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[InjectionResult], bool]
               ) -> "ResultSet":
        return ResultSet(r for r in self.results if predicate(r))

    def filter_tags(self, **tags: object) -> "ResultSet":
        want = {k: str(v) for k, v in tags.items()}

        def match(r: InjectionResult) -> bool:
            have = dict(r.task.tags)
            return all(have.get(k) == v for k, v in want.items())

        return self.filter(match)

    def rates(self) -> np.ndarray:
        return np.array([r.logical_error_rate for r in self.results])

    def median_rate(self) -> float:
        rates = self.rates()
        return float(np.median(rates)) if rates.size else float("nan")

    def mean_rate(self) -> float:
        rates = self.rates()
        return float(np.mean(rates)) if rates.size else float("nan")

    def pooled_rate(self) -> float:
        """Error rate pooling shots across all points."""
        shots = sum(r.shots for r in self.results)
        errors = sum(r.errors for r in self.results)
        return errors / shots if shots else float("nan")

    def total_shots(self) -> int:
        """Shots spent across the whole set (adaptive-run budget line)."""
        return sum(r.shots for r in self.results)

    def counts(self) -> List[Tuple[int, int, int, int]]:
        """Per-point deterministic payloads, in task order — two runs of
        the same campaign are equal iff their ``counts()`` are."""
        return [r.counts for r in self.results]

    def payloads(self) -> List[Tuple]:
        """Like :meth:`counts` but including weight moments, so two
        weighted runs must also agree on every importance weight."""
        return [r.payload for r in self.results]

    def group_by(self, key: Callable[[InjectionResult], object]
                 ) -> Dict[object, "ResultSet"]:
        groups: Dict[object, ResultSet] = {}
        for r in self.results:
            groups.setdefault(key(r), ResultSet()).append(r)
        return groups

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        return [r.to_row() for r in self.results]

    def to_json(self) -> str:
        return json.dumps(self.to_rows(), indent=2, default=str)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
