"""Declarative sweep specifications → campaigns.

A sweep is the Cartesian product of small axis lists — codes ×
architectures × faults × intrinsic noise levels — described by a plain
JSON-able mapping, so campaigns can be launched from the CLI (``repro
campaign spec.json``), version-controlled next to their results, and
re-run bit-identically.

Example spec::

    {
      "codes":  [{"kind": "repetition", "distance": [5, 1]},
                 {"kind": "xxzz", "distance": [3, 3]}],
      "archs":  [null, {"name": "mesh", "args": [5, 4]}, "cairo"],
      "faults": [{"kind": "none"},
                 {"kind": "radiation", "root_qubit": 2, "time_index": 0}],
      "p_values": [1e-3, 1e-2],
      "shots": 4000,
      "root_seed": 2024,
      "tags": {"sweep": "demo"}
    }

Scalar knobs (``rounds``, ``basis``, ``decoder`` — a kind string like
``"union-find:hooks"`` or a mapping, see :func:`repro.decoders.spec.
as_decoder` — ``readout``, ``layout``, ``backend``, ``recovery``,
``sampler`` — a kind string like ``"tilt:8"`` or a mapping, see
:func:`repro.rare.sampler.as_sampler`) apply to every task.  A
``"workers"`` key sets the campaign's default worker-process count
(``Campaign.run`` routes >1 through the :mod:`repro.parallel`
work-stealing scheduler; counts stay bit-identical either way).  Each
task is tagged with its axis coordinates so results group naturally.
"""

from __future__ import annotations

import difflib
from typing import Any, List, Mapping, Optional, Sequence

from ..decoders.spec import as_decoder
from ..rare.sampler import as_sampler
from .campaign import Campaign
from .spec import ArchSpec, CodeSpec, FaultSpec, InjectionTask

#: Recognised top-level spec keys (anything else is a typo worth failing
#: loudly on — a silently ignored axis would corrupt a week-long sweep).
SPEC_KEYS = frozenset({
    "codes", "archs", "faults", "p_values", "shots", "rounds", "basis",
    "decoder", "readout", "layout", "backend", "recovery", "sampler",
    "root_seed", "tags", "workers",
})


def _unknown_key_error(unknown) -> ValueError:
    """Unknown-key failure with a did-you-mean hint per typo."""
    hints = []
    for key in sorted(unknown):
        close = difflib.get_close_matches(str(key), sorted(SPEC_KEYS),
                                          n=1, cutoff=0.6)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)"
                                   if close else ""))
    return ValueError(
        f"unknown sweep spec key{'s' if len(hints) > 1 else ''}: "
        f"{', '.join(hints)}; recognised: {sorted(SPEC_KEYS)}")


def _code(entry: Any) -> CodeSpec:
    if isinstance(entry, CodeSpec):
        return entry
    if isinstance(entry, Mapping):
        return CodeSpec(kind=str(entry["kind"]),
                        distance=tuple(int(d) for d in entry["distance"]))
    if isinstance(entry, Sequence) and len(entry) == 2:
        kind, dist = entry
        return CodeSpec(kind=str(kind), distance=tuple(int(d) for d in dist))
    raise ValueError(f"cannot parse code spec {entry!r}")


def _arch(entry: Any) -> Optional[ArchSpec]:
    if entry is None or isinstance(entry, ArchSpec):
        return entry
    if isinstance(entry, str):
        return ArchSpec(entry)
    if isinstance(entry, Mapping):
        return ArchSpec(name=str(entry["name"]),
                        args=tuple(int(a) for a in entry.get("args", ())))
    raise ValueError(f"cannot parse arch spec {entry!r}")


def _fault(entry: Any) -> FaultSpec:
    if isinstance(entry, FaultSpec):
        return entry
    if isinstance(entry, Mapping):
        kwargs = dict(entry)
        if "qubits" in kwargs:
            kwargs["qubits"] = tuple(int(q) for q in kwargs["qubits"])
        return FaultSpec(**kwargs)
    raise ValueError(f"cannot parse fault spec {entry!r}")


def fault_label(fault: FaultSpec) -> str:
    """Short tag value identifying a fault axis entry."""
    if fault.kind == "radiation":
        if fault.strike_round >= 0:
            return (f"radiation(q{fault.root_qubit},r{fault.strike_round}"
                    f"*{fault.intensity:g})")
        return f"radiation(q{fault.root_qubit},t{fault.time_index})"
    if fault.kind == "erasure":
        return f"erasure({','.join(map(str, fault.qubits))})"
    return "none"


def _axes(spec: Mapping[str, Any]):
    """Validate + normalize the four product axes (shared by
    :func:`build_sweep` and :func:`sweep_size`, so the pre-flight count
    can never disagree with the expansion)."""
    unknown = set(spec) - SPEC_KEYS
    if unknown:
        raise _unknown_key_error(unknown)
    for axis in ("codes", "archs", "faults", "p_values"):
        if axis in spec and not spec[axis]:
            raise ValueError(f"sweep spec axis {axis!r} is empty — the "
                             f"product would be zero points")
    if "codes" not in spec:
        raise ValueError("sweep spec needs a non-empty 'codes' axis")
    codes = [_code(c) for c in spec["codes"]]
    archs = [_arch(a) for a in spec.get("archs", [None])]
    faults = [_fault(f) for f in spec.get("faults", [{"kind": "none"}])]
    p_values = [float(p) for p in spec.get("p_values", [0.01])]
    return codes, archs, faults, p_values


def build_sweep(spec: Mapping[str, Any]) -> Campaign:
    """Expand a sweep spec into a seeded :class:`Campaign`.

    Task order — and therefore per-task derived seeds — is the
    deterministic product order codes → archs → faults → p_values.
    """
    codes, archs, faults, p_values = _axes(spec)
    base_tags = {str(k): str(v) for k, v in dict(spec.get("tags", {})).items()}

    common = dict(
        shots=int(spec.get("shots", 2000)),
        rounds=int(spec.get("rounds", 2)),
        basis=str(spec.get("basis", "Z")),
        decoder=as_decoder(spec.get("decoder")),
        readout=str(spec.get("readout", "ancilla")),
        layout=str(spec.get("layout", "best")),
        backend=str(spec.get("backend", "auto")),
        recovery=str(spec.get("recovery", "static")),
        sampler=as_sampler(spec.get("sampler")),
    )

    tasks: List[InjectionTask] = []
    for code in codes:
        for arch in archs:
            for fault in faults:
                for p in p_values:
                    task = InjectionTask(code=code, arch=arch, fault=fault,
                                         intrinsic_p=p, **common)
                    tasks.append(task.with_tags(
                        code=code.label,
                        arch=arch.label if arch else "-",
                        fault=fault_label(fault), p=p, **base_tags))
    workers = spec.get("workers")
    return Campaign(tasks, root_seed=int(spec.get("root_seed", 2024)),
                    workers=None if workers is None else int(workers))


def sweep_size(spec: Mapping[str, Any]) -> int:
    """Number of points a spec expands to (cheap pre-flight check)."""
    codes, archs, faults, p_values = _axes(spec)
    return len(codes) * len(archs) * len(faults) * len(p_values)
