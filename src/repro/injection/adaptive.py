"""Adaptive shot allocation for campaign points.

Fixed shot counts are the wrong tool for radiation campaigns: the
interesting regimes sit at very low logical-error rates, so a count
large enough to resolve them wastes compute on every mid-rate point,
while a count sized for mid-rate points under-resolves the tails.
An :class:`AdaptivePolicy` instead keeps sampling a point — one chunk
at a time — until its Wilson interval is tight enough relative to the
measured rate, or a shot ceiling is reached.

Stopping decisions are **watermark-based**: the policy is consulted
only when the cumulative shot count crosses a fixed decision threshold
(a multiple of :data:`DECISION_SHOTS`, block-aligned), and each
decision is a pure function of the cumulative ``(errors, shots)`` at
that threshold.  Chunk streams are seeded deterministically from the
task seed and blocks are canonical, so the prefix counts at any
watermark — and therefore the stop shot — are identical however the
run was scheduled: serial, chunked coarser or finer, interrupted and
resumed, or spread across N workers by :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..rare.stats import WeightStats
from .results import SIM_BLOCK, wilson_interval

#: Default decision-watermark spacing, in shots.  Matches the engine's
#: default chunk so plain sequential runs behave as before; what matters
#: is that it is *fixed per policy*, not inherited from however the
#: caller happened to chunk the stream.
DECISION_SHOTS = 2 * SIM_BLOCK


@dataclass(frozen=True)
class AdaptivePolicy:
    """Early-stopping rule evaluated after each finished chunk.

    Parameters
    ----------
    rel_halfwidth:
        Stop once the Wilson half-width is at most this fraction of the
        measured rate (e.g. ``0.25`` → ±25% relative precision).
    abs_halfwidth:
        Alternative absolute target; satisfied when the half-width
        itself drops below it.  Either criterion stopping is enough.
    min_shots / min_errors:
        Never stop before both are reached — a handful of lucky shots
        at a low-rate point must not end sampling prematurely.
    max_shots:
        Shot ceiling; ``None`` uses the task's own ``shots`` field, so
        existing fixed-shot campaigns keep their budget as an upper
        bound and simply finish early when the target is met.
    z:
        Normal quantile of the interval (1.96 → 95%).
    decision_shots:
        Watermark spacing: the policy is evaluated at multiples of this
        shot count (rounded up to whole simulation blocks) plus the
        ceiling itself, regardless of chunking or worker count.
    """

    rel_halfwidth: float = 0.25
    abs_halfwidth: Optional[float] = None
    min_shots: int = 512
    min_errors: int = 5
    max_shots: Optional[int] = None
    z: float = 1.96
    decision_shots: int = DECISION_SHOTS

    def __post_init__(self) -> None:
        if self.rel_halfwidth <= 0:
            raise ValueError("rel_halfwidth must be positive")
        if self.min_shots < 1:
            raise ValueError("min_shots must be at least 1")
        if self.decision_shots < 1:
            raise ValueError("decision_shots must be at least 1")

    def ceiling(self, task_shots: int) -> int:
        """The hard shot cap for a task."""
        return task_shots if self.max_shots is None else int(self.max_shots)

    @property
    def decision_step(self) -> int:
        """Watermark spacing rounded up to whole simulation blocks."""
        return -(-self.decision_shots // SIM_BLOCK) * SIM_BLOCK

    def next_watermark(self, shots: int, task_shots: int) -> int:
        """First decision point strictly past ``shots`` (≤ the ceiling).

        Execution proceeds watermark to watermark: a segment's counts
        are banked, the policy is evaluated at its end, and only then
        may sampling stop — so the stop shot is a pure function of the
        canonical block stream, never of chunk sizes or schedules.
        """
        ceiling = self.ceiling(task_shots)
        if shots >= ceiling:
            return ceiling
        step = self.decision_step
        return min((shots // step + 1) * step, ceiling)

    def watermarks(self, start: int, task_shots: int) -> Iterator[int]:
        """The decision points in ``(start, ceiling]``, ascending."""
        pos = start
        ceiling = self.ceiling(task_shots)
        while pos < ceiling:
            pos = self.next_watermark(pos, task_shots)
            yield pos

    def satisfied(self, errors: int, shots: int,
                  weights: Optional[WeightStats] = None) -> bool:
        """True when ``(errors, shots)`` meets the precision target.

        ``weights`` switches the criterion to the *weighted* estimator
        of a rare-event sampler: the self-normalized rate with the
        weighted Wilson interval over the effective sample size
        (:meth:`repro.rare.stats.WeightStats.wilson_interval`).  The
        ``min_shots`` / ``min_errors`` floors stay in raw shots and raw
        observed failures — a handful of heavy-weight error shots must
        not stop a point whose ESS is still tiny.

        Non-iid weights (multilevel splitting: lanes are correlated
        clones, so the variance formulas understate the estimator's
        true spread — ``min_errors`` could even be met by clones of a
        single original failure) never satisfy the target: split
        points run their full budget and only the ceiling stops them.
        """
        if shots < self.min_shots or errors < self.min_errors:
            return False
        if weights is not None and not weights.iid:
            return False
        if weights is not None:
            rate = weights.estimate("sn")
            if rate <= 0.0:
                return False
            lo, hi = weights.wilson_interval(self.z)
        else:
            rate = errors / shots
            lo, hi = wilson_interval(errors, shots, self.z)
        half = (hi - lo) / 2.0
        if self.abs_halfwidth is not None and half <= self.abs_halfwidth:
            return True
        return half <= self.rel_halfwidth * rate

    def should_stop(self, errors: int, shots: int, task_shots: int,
                    weights: Optional[WeightStats] = None) -> bool:
        """Stop when the target is met or the ceiling is exhausted."""
        return shots >= self.ceiling(task_shots) or \
            self.satisfied(errors, shots, weights)
