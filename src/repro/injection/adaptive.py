"""Adaptive shot allocation for campaign points.

Fixed shot counts are the wrong tool for radiation campaigns: the
interesting regimes sit at very low logical-error rates, so a count
large enough to resolve them wastes compute on every mid-rate point,
while a count sized for mid-rate points under-resolves the tails.
An :class:`AdaptivePolicy` instead keeps sampling a point — one chunk
at a time — until its Wilson interval is tight enough relative to the
measured rate, or a shot ceiling is reached.

Stopping decisions depend only on the cumulative ``(errors, shots)``
at chunk boundaries, and chunk streams are seeded deterministically
from the task seed, so adaptive runs are exactly reproducible and
resumable mid-point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .results import wilson_interval


@dataclass(frozen=True)
class AdaptivePolicy:
    """Early-stopping rule evaluated after each finished chunk.

    Parameters
    ----------
    rel_halfwidth:
        Stop once the Wilson half-width is at most this fraction of the
        measured rate (e.g. ``0.25`` → ±25% relative precision).
    abs_halfwidth:
        Alternative absolute target; satisfied when the half-width
        itself drops below it.  Either criterion stopping is enough.
    min_shots / min_errors:
        Never stop before both are reached — a handful of lucky shots
        at a low-rate point must not end sampling prematurely.
    max_shots:
        Shot ceiling; ``None`` uses the task's own ``shots`` field, so
        existing fixed-shot campaigns keep their budget as an upper
        bound and simply finish early when the target is met.
    z:
        Normal quantile of the interval (1.96 → 95%).
    """

    rel_halfwidth: float = 0.25
    abs_halfwidth: Optional[float] = None
    min_shots: int = 512
    min_errors: int = 5
    max_shots: Optional[int] = None
    z: float = 1.96

    def __post_init__(self) -> None:
        if self.rel_halfwidth <= 0:
            raise ValueError("rel_halfwidth must be positive")
        if self.min_shots < 1:
            raise ValueError("min_shots must be at least 1")

    def ceiling(self, task_shots: int) -> int:
        """The hard shot cap for a task."""
        return task_shots if self.max_shots is None else int(self.max_shots)

    def satisfied(self, errors: int, shots: int) -> bool:
        """True when ``(errors, shots)`` meets the precision target."""
        if shots < self.min_shots or errors < self.min_errors:
            return False
        lo, hi = wilson_interval(errors, shots, self.z)
        half = (hi - lo) / 2.0
        if self.abs_halfwidth is not None and half <= self.abs_halfwidth:
            return True
        return half <= self.rel_halfwidth * (errors / shots)

    def should_stop(self, errors: int, shots: int, task_shots: int) -> bool:
        """Stop when the target is met or the ceiling is exhausted."""
        return shots >= self.ceiling(task_shots) or \
            self.satisfied(errors, shots)
