"""Persistent campaign checkpoint store (append-only JSONL).

Long sweeps die — machines reboot, jobs hit walltime, laptops sleep.
The store turns a campaign into a resumable computation: every finished
chunk and every completed point is appended as one JSON line keyed by a
stable hash of the task spec, so ``Campaign.run(resume=store)`` skips
completed points, continues partially-sampled ones at the next chunk
boundary, and — because chunk streams are seeded deterministically —
produces bit-identical counts to an uninterrupted run with the same
settings (adaptive stopping decisions happen at fixed shot watermarks
independent of chunking or worker count, so resume adaptive sweeps
with the same policy).

The format is deliberately dumb: one self-describing JSON object per
line, tolerant of a torn final line after a crash, diffable, and
mergeable with ``cat``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from .results import SIM_BLOCK, ChunkResult, InjectionResult
from .spec import InjectionTask

#: Bump when the canonical task serialization changes shape.
#: v2: InjectionTask grew the ``backend`` field (frame sampling PR) —
#: the backend selects the random stream, so it must shape the key.
#: v3: FaultSpec grew ``strike_round``/``intensity`` and InjectionTask
#: ``recovery`` (detection PR) — the burst scenario and decode policy
#: both change a point's counts, so they must shape the key.
#: v4: InjectionTask grew the ``sampler`` spec (rare-event importance
#: sampling PR) — the sampling measure selects the random stream and
#: the estimator, so it must shape the key.
#: v5: the ``decoder`` field became a ``DecoderSpec`` (batched-decoding
#: PR) — hook edges and the weighting mode change a point's counted
#: errors, so the full decoder configuration must shape the key (and
#: the serialized form changed from a string to a dict).
KEY_VERSION = 5


#: Zero weight-moment accumulator ``(wsum, wsq, esum, esq)``.
_ZERO_W = (0.0, 0.0, 0.0, 0.0)


def canonical_task(task: InjectionTask) -> Dict[str, object]:
    """A plain, deterministic dict capturing the full task identity."""
    d = dataclasses.asdict(task)
    d["tags"] = sorted([list(kv) for kv in task.tags])
    return d


def task_key(task: InjectionTask) -> str:
    """Stable content hash identifying one campaign point.

    Every spec field participates — including seed and shot budget —
    so a key never aliases two points that could sample differently.
    """
    blob = json.dumps({"v": KEY_VERSION, "task": canonical_task(task)},
                      sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


class CampaignStore:
    """JSONL-backed chunk/result checkpoint for one or more campaigns.

    Record kinds:

    ``{"kind": "chunk", "key": k, "start": s, "shots": n, ...counts}``
        one finished streaming chunk of point ``k``;
    ``{"kind": "done", "key": k, ...aggregate, "task": {...}}``
        point ``k`` completed (fixed budget exhausted or adaptive
        target met).  The embedded task dict is informational — results
        are reconstructed against the in-memory task, whose key must
        match.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._chunks: Dict[str, List[ChunkResult]] = {}
        self._done: Dict[str, Dict[str, object]] = {}
        self._fh = None
        if os.path.exists(self.path):
            self._load()

    @classmethod
    def coerce(cls, obj: Union["CampaignStore", str, os.PathLike, None]
               ) -> Optional["CampaignStore"]:
        if obj is None or isinstance(obj, CampaignStore):
            return obj
        return cls(obj)

    # -- reading -------------------------------------------------------
    @staticmethod
    def _iter_records(path: Union[str, os.PathLike]):
        """Yield the parseable JSON records of one store file.

        Torn final lines (crash mid-write) and undecodable bytes (a
        shard truncated inside a multi-byte sequence, or a wrong file
        passed as a shard) terminate the scan with a warning instead of
        raising — everything parsed up to that point is kept.
        """
        with open(path, "r", encoding="utf-8") as fh:
            try:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a crash mid-write
                    if isinstance(rec, dict):
                        yield rec
            except UnicodeDecodeError:
                warnings.warn(
                    f"store file {os.fspath(path)!r} contains undecodable "
                    f"bytes; keeping the records read so far",
                    RuntimeWarning, stacklevel=2)
                obs.event("store.undecodable_bytes",
                          f"undecodable bytes in {os.fspath(path)!r}",
                          path=os.fspath(path))

    def _load(self) -> None:
        for rec in self._iter_records(self.path):
            kind = rec.get("kind")
            try:
                if kind == "chunk":
                    self._chunks.setdefault(rec["key"], []).append(
                        ChunkResult.from_row(rec))
                elif kind == "done" and "key" in rec:
                    self._done[rec["key"]] = rec
            except (KeyError, TypeError, ValueError):
                warnings.warn(
                    f"skipping malformed {kind!r} record in {self.path!r}",
                    RuntimeWarning, stacklevel=2)
                obs.event("store.malformed_record",
                          f"malformed {kind!r} record in {self.path!r}",
                          path=self.path)

    def done_record(self, key: str) -> Optional[Dict[str, object]]:
        return self._done.get(key)

    def chunks_for(self, key: str) -> List[ChunkResult]:
        return sorted(self._chunks.get(key, ()), key=lambda c: c.start)

    def partial(self, key: str) -> Tuple:
        """Aggregate the resumable chunk prefix recorded for ``key``.

        Returns ``(shots, errors, raw_errors, corrections, elapsed_s,
        num_chunks, weights)`` — ``weights`` is the accumulated
        ``(wsum, wsq, esum, esq)`` moments when any banked chunk was
        importance-weighted, else ``None``.  Chunks after a gap or
        overlap (e.g. from a mangled merge) are discarded rather than
        double-counted, and the prefix is trimmed back to the last
        ``SIM_BLOCK`` boundary: a point that *completed* on a partial
        final block (shots not a block multiple) is reused via its done
        record, but execution can only be extended from an aligned
        position — the truncated block's counts are dropped and
        resampled at full size when a later run raises the ceiling.
        """
        shots = errors = raw = corr = nchunks = 0
        elapsed = 0.0
        weights = _ZERO_W
        weighted = False
        aligned = (0, 0, 0, 0, 0.0, 0, None)
        for chunk in self.chunks_for(key):
            if chunk.start != shots:
                break
            shots += chunk.shots
            errors += chunk.errors
            raw += chunk.raw_errors
            corr += chunk.corrections_applied
            elapsed += chunk.elapsed_s
            nchunks += 1
            if chunk.weighted:
                weighted = True
            weights = chunk.fold_weights(weights)
            if shots % SIM_BLOCK == 0:
                aligned = (shots, errors, raw, corr, elapsed, nchunks,
                           weights if weighted else None)
        if shots % SIM_BLOCK == 0:
            return (shots, errors, raw, corr, elapsed, nchunks,
                    weights if weighted else None)
        return aligned

    def result_for(self, task: InjectionTask) -> Optional[InjectionResult]:
        """Reconstruct a completed point's result, or ``None``."""
        rec = self._done.get(task_key(task))
        if rec is None:
            return None
        weights = None
        if "wsum" in rec:
            weights = (float(rec["wsum"]), float(rec["wsq"]),
                       float(rec["esum"]), float(rec["esq"]))
        return InjectionResult(
            task=task,
            shots=int(rec["shots"]),
            errors=int(rec["errors"]),
            raw_errors=int(rec["raw_errors"]),
            corrections_applied=int(rec["corrections"]),
            swap_count=int(rec.get("swap_count", 0)),
            elapsed_s=float(rec.get("elapsed_s", 0.0)),
            chunks=int(rec.get("chunks", 1)),
            weights=weights,
        )

    def __len__(self) -> int:
        return len(self._done)

    # -- lookup --------------------------------------------------------
    def keys(self) -> List[str]:
        """Every task key with any record (done or chunk), sorted."""
        return sorted(set(self._done) | set(self._chunks))

    def find_keys(self, prefix: str = "") -> List[str]:
        """Keys matching a (possibly empty) hex prefix, sorted."""
        return [k for k in self.keys() if k.startswith(prefix)]

    def key_stats(self, key: str) -> Dict[str, object]:
        """Cached state of one key: status, counts, rate and CI.

        ``status`` is ``"done"`` (a completed point), ``"partial"``
        (banked chunks only — the resumable prefix's counts are
        reported) or ``"absent"``.  This is the content-addressed
        cache-hit path shared by ``repro store lookup`` and the
        campaign service: a popular point is a dictionary read here,
        never a simulation.
        """
        from .results import wilson_interval

        rec = self._done.get(key)
        chunks = self._chunks.get(key, ())
        row: Dict[str, object] = {
            "key": key,
            "chunk_records": len(chunks),
        }
        if rec is not None:
            row["status"] = "done"
            row["shots"] = int(rec["shots"])
            row["errors"] = int(rec["errors"])
            row["raw_errors"] = int(rec["raw_errors"])
            row["corrections"] = int(rec["corrections"])
            if rec.get("label") is not None:
                row["label"] = rec["label"]
            if rec.get("seed") is not None:
                row["seed"] = rec["seed"]
        else:
            shots, errors, raw, corr, _, _, _ = self.partial(key)
            row["status"] = "partial" if chunks else "absent"
            row["shots"] = shots
            row["errors"] = errors
            row["raw_errors"] = raw
            row["corrections"] = corr
        shots, errors = int(row["shots"]), int(row["errors"])
        if shots:
            lo, hi = wilson_interval(errors, shots)
            row["ler"] = errors / shots
            row["ler_lo"] = lo
            row["ler_hi"] = hi
        return row

    def lookup(self, task: InjectionTask) -> Dict[str, object]:
        """Cached state of one task spec (:func:`task_key` resolution).

        Like :meth:`key_stats` but weighted-sampler aware: a completed
        importance-sampled point reports its self-normalized weighted
        LER and weighted-Wilson CI (the estimates :meth:`result_for`
        would reconstruct), not the raw failure fraction.
        """
        key = task_key(task)
        row = self.key_stats(key)
        row["label"] = task.label
        row["target_shots"] = task.shots
        result = self.result_for(task)
        if result is not None and result.weighted:
            lo, hi = result.confidence_interval
            row["ler"] = result.logical_error_rate
            row["ler_lo"] = lo
            row["ler_hi"] = hi
            row["ess"] = result.weight_stats.ess
        return row

    def stats(self) -> Dict[str, object]:
        """Whole-store summary (``repro store stats``)."""
        chunk_records = sum(len(c) for c in self._chunks.values())
        return {
            "path": self.path,
            "keys": len(self.keys()),
            "done": len(self._done),
            "partial": len(set(self._chunks) - set(self._done)),
            "chunk_records": chunk_records,
            "done_shots": sum(int(r["shots"])
                              for r in self._done.values()),
            "done_errors": sum(int(r["errors"])
                               for r in self._done.values()),
        }

    # -- writing -------------------------------------------------------
    def _append(self, rec: Dict[str, object]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def append_chunk(self, key: str, chunk: ChunkResult) -> None:
        rec = {"kind": "chunk", "key": key}
        rec.update(chunk.to_row())
        self._append(rec)
        self._chunks.setdefault(key, []).append(chunk)

    def mark_done(self, key: str, result: InjectionResult) -> None:
        rec = {
            "kind": "done", "key": key,
            "shots": result.shots, "errors": result.errors,
            "raw_errors": result.raw_errors,
            "corrections": result.corrections_applied,
            "swap_count": result.swap_count,
            "elapsed_s": result.elapsed_s,
            "chunks": result.chunks,
            "seed": result.task.seed,
            "label": result.task.label,
            "task": canonical_task(result.task),
        }
        if result.weights is not None:
            rec["wsum"], rec["wsq"], rec["esum"], rec["esq"] = result.weights
        self._append(rec)
        self._done[key] = rec

    # -- merging -------------------------------------------------------
    @classmethod
    def merge(cls, out_path: Union[str, os.PathLike],
              in_paths: Sequence[Union[str, os.PathLike]]
              ) -> Dict[str, int]:
        """Merge sharded stores into one resumable store at ``out_path``.

        The sharded-campaign workflow: each host runs its slice of a
        sweep against its own JSONL store, then the shards are merged
        into a single store any host can resume from.  An existing
        ``out_path`` is treated as an implicit first input, so merging
        is incremental; the file is replaced atomically.

        Dedup rules (canonical blocks make true duplicates bit-identical):

        * ``done`` records deduplicate by task key, keeping the record
          with the most shots (an adaptive early stop never shadows a
          richer fixed-budget result) — first seen wins ties;
        * ``chunk`` records deduplicate by ``(key, start)``, first seen
          wins.

        A duplicate of either kind with *different* counts at the same
        shot coverage (two shards that somehow diverged, e.g. different
        code versions) is counted in ``conflicting_chunks`` /
        ``conflicting_done`` so the operator can investigate instead of
        silently trusting one shard.  Duplicates covering different
        spans — the same point resumed under different ``chunk_shots``,
        or an adaptive stop next to a fixed-budget completion — are
        consistent data, deduplicated without a conflict flag.

        Unusable shards degrade gracefully instead of failing the whole
        merge: a missing, empty or unreadable shard is skipped with a
        warning (counted in ``skipped_inputs``), a malformed record —
        wrong types, missing ``key``/``start`` — is dropped with a
        warning (counted in ``malformed_records``), and a shard
        truncated mid-byte keeps its parseable prefix.  Losing one
        host's partial shard must not take down the merge the other
        hosts' results depend on.

        Returns a stats dict: ``inputs``, ``skipped_inputs``,
        ``malformed_records``, ``done``, ``chunks``, ``duplicate_done``,
        ``duplicate_chunks``, ``conflicting_done``,
        ``conflicting_chunks``.
        """
        with obs.span("merge"):
            return cls._merge(out_path, in_paths)

    @classmethod
    def _merge(cls, out_path: Union[str, os.PathLike],
               in_paths: Sequence[Union[str, os.PathLike]]
               ) -> Dict[str, int]:
        out_path = os.fspath(out_path)
        paths = [os.fspath(p) for p in in_paths]
        resolved = {os.path.realpath(p) for p in paths}
        if os.path.exists(out_path) \
                and os.path.realpath(out_path) not in resolved:
            paths.insert(0, out_path)

        done: Dict[str, Dict[str, object]] = {}
        chunks: Dict[Tuple[str, int], Dict[str, object]] = {}
        order: List[Tuple[str, object]] = []  # ("chunk", ck) / ("done", key)
        stats = {"inputs": len(paths), "skipped_inputs": 0,
                 "malformed_records": 0, "duplicate_done": 0,
                 "duplicate_chunks": 0, "conflicting_done": 0,
                 "conflicting_chunks": 0}
        count_fields = ("errors", "raw_errors", "corrections")
        for path in paths:
            try:
                records = list(cls._iter_records(path))
            except OSError as exc:
                warnings.warn(f"skipping unreadable store shard {path!r}: "
                              f"{exc}", RuntimeWarning, stacklevel=2)
                obs.event("store.skipped_shard",
                          f"unreadable shard {path!r}: {exc}", path=path)
                stats["skipped_inputs"] += 1
                continue
            if not records:
                warnings.warn(f"store shard {path!r} holds no usable "
                              f"records; skipping", RuntimeWarning,
                              stacklevel=2)
                obs.event("store.skipped_shard",
                          f"empty shard {path!r}", path=path)
                stats["skipped_inputs"] += 1
                continue
            for rec in records:
                kind = rec.get("kind")
                if kind == "done":
                    key = rec.get("key")
                    if not isinstance(key, str):
                        stats["malformed_records"] += 1
                        warnings.warn(
                            f"dropping done record without a key in "
                            f"{path!r}", RuntimeWarning, stacklevel=2)
                        obs.event("store.malformed_record",
                                  f"done record without a key in {path!r}",
                                  path=path)
                        continue
                    prev = done.get(key)
                    if prev is None:
                        done[key] = rec
                        order.append(("done", key))
                    else:
                        stats["duplicate_done"] += 1
                        if prev.get("shots") == rec.get("shots") and any(
                                prev.get(f) != rec.get(f)
                                for f in count_fields):
                            stats["conflicting_done"] += 1
                        if int(rec.get("shots", 0)) > int(
                                prev.get("shots", 0)):
                            done[key] = rec
                elif kind == "chunk":
                    try:
                        ck = (rec["key"], int(rec["start"]))
                    except (KeyError, TypeError, ValueError):
                        stats["malformed_records"] += 1
                        warnings.warn(
                            f"dropping malformed chunk record in {path!r}",
                            RuntimeWarning, stacklevel=2)
                        obs.event("store.malformed_record",
                                  f"malformed chunk record in {path!r}",
                                  path=path)
                        continue
                    prev = chunks.get(ck)
                    if prev is None:
                        chunks[ck] = rec
                        order.append(("chunk", ck))
                    else:
                        stats["duplicate_chunks"] += 1
                        if prev.get("shots") == rec.get("shots") and any(
                                prev.get(f) != rec.get(f)
                                for f in count_fields):
                            stats["conflicting_chunks"] += 1
        stats["done"] = len(done)
        stats["chunks"] = len(chunks)

        tmp_path = out_path + ".merge-tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            for kind, ref in order:
                rec = chunks[ref] if kind == "chunk" else done[ref]
                fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        os.replace(tmp_path, out_path)
        return stats

    def absorb_shards(self, shard_paths: Sequence[Union[str, os.PathLike]]
                      ) -> Dict[str, int]:
        """Merge per-worker shards into this store, in place.

        The parallel scheduler's end-of-campaign (and stale-shard
        recovery) path: closes the append handle, runs :meth:`merge`
        with this store as the implicit first input, then reloads the
        in-memory indexes from the merged file so the object keeps
        working for resume queries afterwards.  Returns merge stats.
        """
        self.close()
        stats = CampaignStore.merge(self.path, shard_paths)
        self._chunks.clear()
        self._done.clear()
        if os.path.exists(self.path):
            self._load()
        return stats

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
