"""Persistent campaign checkpoint store (append-only JSONL).

Long sweeps die — machines reboot, jobs hit walltime, laptops sleep.
The store turns a campaign into a resumable computation: every finished
chunk and every completed point is appended as one JSON line keyed by a
stable hash of the task spec, so ``Campaign.run(resume=store)`` skips
completed points, continues partially-sampled ones at the next chunk
boundary, and — because chunk streams are seeded deterministically —
produces bit-identical counts to an uninterrupted run with the same
settings (adaptive stopping decisions happen at chunk boundaries, so
resume adaptive sweeps with the same policy and ``chunk_shots``).

The format is deliberately dumb: one self-describing JSON object per
line, tolerant of a torn final line after a crash, diffable, and
mergeable with ``cat``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple, Union

from .results import SIM_BLOCK, ChunkResult, InjectionResult
from .spec import InjectionTask

#: Bump when the canonical task serialization changes shape.
KEY_VERSION = 1


def canonical_task(task: InjectionTask) -> Dict[str, object]:
    """A plain, deterministic dict capturing the full task identity."""
    d = dataclasses.asdict(task)
    d["tags"] = sorted([list(kv) for kv in task.tags])
    return d


def task_key(task: InjectionTask) -> str:
    """Stable content hash identifying one campaign point.

    Every spec field participates — including seed and shot budget —
    so a key never aliases two points that could sample differently.
    """
    blob = json.dumps({"v": KEY_VERSION, "task": canonical_task(task)},
                      sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


class CampaignStore:
    """JSONL-backed chunk/result checkpoint for one or more campaigns.

    Record kinds:

    ``{"kind": "chunk", "key": k, "start": s, "shots": n, ...counts}``
        one finished streaming chunk of point ``k``;
    ``{"kind": "done", "key": k, ...aggregate, "task": {...}}``
        point ``k`` completed (fixed budget exhausted or adaptive
        target met).  The embedded task dict is informational — results
        are reconstructed against the in-memory task, whose key must
        match.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._chunks: Dict[str, List[ChunkResult]] = {}
        self._done: Dict[str, Dict[str, object]] = {}
        self._fh = None
        if os.path.exists(self.path):
            self._load()

    @classmethod
    def coerce(cls, obj: Union["CampaignStore", str, os.PathLike, None]
               ) -> Optional["CampaignStore"]:
        if obj is None or isinstance(obj, CampaignStore):
            return obj
        return cls(obj)

    # -- reading -------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a crash mid-write
                kind = rec.get("kind")
                if kind == "chunk":
                    self._chunks.setdefault(rec["key"], []).append(
                        ChunkResult.from_row(rec))
                elif kind == "done":
                    self._done[rec["key"]] = rec

    def done_record(self, key: str) -> Optional[Dict[str, object]]:
        return self._done.get(key)

    def chunks_for(self, key: str) -> List[ChunkResult]:
        return sorted(self._chunks.get(key, ()), key=lambda c: c.start)

    def partial(self, key: str) -> Tuple[int, int, int, int, float, int]:
        """Aggregate the resumable chunk prefix recorded for ``key``.

        Returns ``(shots, errors, raw_errors, corrections, elapsed_s,
        num_chunks)``.  Chunks after a gap or overlap (e.g. from a
        mangled merge) are discarded rather than double-counted, and the
        prefix is trimmed back to the last ``SIM_BLOCK`` boundary: a
        point that *completed* on a partial final block (shots not a
        block multiple) is reused via its done record, but execution can
        only be extended from an aligned position — the truncated
        block's counts are dropped and resampled at full size when a
        later run raises the ceiling.
        """
        shots = errors = raw = corr = nchunks = 0
        elapsed = 0.0
        aligned = (0, 0, 0, 0, 0.0, 0)
        for chunk in self.chunks_for(key):
            if chunk.start != shots:
                break
            shots += chunk.shots
            errors += chunk.errors
            raw += chunk.raw_errors
            corr += chunk.corrections_applied
            elapsed += chunk.elapsed_s
            nchunks += 1
            if shots % SIM_BLOCK == 0:
                aligned = (shots, errors, raw, corr, elapsed, nchunks)
        if shots % SIM_BLOCK == 0:
            return shots, errors, raw, corr, elapsed, nchunks
        return aligned

    def result_for(self, task: InjectionTask) -> Optional[InjectionResult]:
        """Reconstruct a completed point's result, or ``None``."""
        rec = self._done.get(task_key(task))
        if rec is None:
            return None
        return InjectionResult(
            task=task,
            shots=int(rec["shots"]),
            errors=int(rec["errors"]),
            raw_errors=int(rec["raw_errors"]),
            corrections_applied=int(rec["corrections"]),
            swap_count=int(rec.get("swap_count", 0)),
            elapsed_s=float(rec.get("elapsed_s", 0.0)),
            chunks=int(rec.get("chunks", 1)),
        )

    def __len__(self) -> int:
        return len(self._done)

    # -- writing -------------------------------------------------------
    def _append(self, rec: Dict[str, object]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def append_chunk(self, key: str, chunk: ChunkResult) -> None:
        rec = {"kind": "chunk", "key": key}
        rec.update(chunk.to_row())
        self._append(rec)
        self._chunks.setdefault(key, []).append(chunk)

    def mark_done(self, key: str, result: InjectionResult) -> None:
        rec = {
            "kind": "done", "key": key,
            "shots": result.shots, "errors": result.errors,
            "raw_errors": result.raw_errors,
            "corrections": result.corrections_applied,
            "swap_count": result.swap_count,
            "elapsed_s": result.elapsed_s,
            "chunks": result.chunks,
            "seed": result.task.seed,
            "label": result.task.label,
            "task": canonical_task(result.task),
        }
        self._append(rec)
        self._done[key] = rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
