"""Quantum fault-injection toolkit (the paper's §III contribution)."""

from .adaptive import DECISION_SHOTS, AdaptivePolicy
from .campaign import (
    DEFAULT_CHUNK_SHOTS,
    SIM_BLOCK,
    Campaign,
    iter_task_chunks,
    run_task,
)
from ..rare.sampler import SamplerSpec
from .results import ChunkResult, InjectionResult, ResultSet, wilson_interval
from .spec import ArchSpec, CodeSpec, FaultSpec, InjectionTask
from .store import CampaignStore, task_key
from .sweep import build_sweep, sweep_size

__all__ = [
    "AdaptivePolicy",
    "Campaign",
    "DECISION_SHOTS",
    "CampaignStore",
    "ChunkResult",
    "DEFAULT_CHUNK_SHOTS",
    "SIM_BLOCK",
    "build_sweep",
    "sweep_size",
    "iter_task_chunks",
    "run_task",
    "task_key",
    "InjectionResult",
    "ResultSet",
    "wilson_interval",
    "ArchSpec",
    "CodeSpec",
    "FaultSpec",
    "InjectionTask",
    "SamplerSpec",
]
