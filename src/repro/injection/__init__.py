"""Quantum fault-injection toolkit (the paper's §III contribution)."""

from .campaign import Campaign, run_task
from .results import InjectionResult, ResultSet, wilson_interval
from .spec import ArchSpec, CodeSpec, FaultSpec, InjectionTask

__all__ = [
    "Campaign",
    "run_task",
    "InjectionResult",
    "ResultSet",
    "wilson_interval",
    "ArchSpec",
    "CodeSpec",
    "FaultSpec",
    "InjectionTask",
]
