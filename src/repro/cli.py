"""Command-line entry point: figures and campaign sweeps.

Usage::

    python -m repro fig3            # temporal decay series
    python -m repro fig5 --shots 500
    python -m repro headline        # all observation checks (long)
    repro fig6 --workers 8 --csv out.csv
    repro fig5 --store fig5.jsonl   # checkpoint / resume the sweep
    repro campaign spec.json --store sweep.jsonl --adaptive 0.2
    repro campaign spec.json -j 8   # block-level work-stealing scheduler
    repro fig6 --backend tableau    # pin the batched-tableau backend
    repro store merge all.jsonl hostA.jsonl hostB.jsonl
    repro store lookup sweep.jsonl --key 860e    # cached counts by key
    repro serve --store shared.jsonl --port 8765 # campaign service
    repro serve --runner http://head:8765        # pull-based worker
    repro submit spec.json --wait                # submit to the service
    repro status job-1                           # poll a service job

``repro campaign`` runs an arbitrary sweep described by a JSON spec
(codes × architectures × faults × noise levels — see
:mod:`repro.injection.sweep`) through the orchestration engine, with
JSONL checkpointing (``--store``, resumable by re-running the same
command) and adaptive shot allocation (``--adaptive REL``).

``repro serve`` exposes the same engine as a JSON-over-HTTP service
(:mod:`repro.service`): sweep submissions are canonicalised to task
keys, answered from the shared store on cache hit, coalesced onto
in-flight work when identical, and simulated only on miss.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis.report import ascii_table, percent, to_csv


def _write(rows, args, title: str) -> None:
    print(ascii_table(rows, title=title))
    if getattr(args, "csv", None):
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(to_csv(rows))
        print(f"\n[csv written to {args.csv}]")


def _sibling_csv(path: str, suffix: str) -> str:
    """``out.csv`` → ``out.<suffix>.csv`` for a command's extra table."""
    stem, ext = os.path.splitext(path)
    return f"{stem}.{suffix}{ext}" if ext else f"{path}.{suffix}"


#: Default adaptive floor; kept in one place so _policy can tell an
#: explicit --min-shots from the untouched default.
DEFAULT_MIN_SHOTS = 512


def _policy(args):
    """Build the adaptive policy requested on the command line."""
    from .injection.adaptive import AdaptivePolicy

    if getattr(args, "adaptive", None) is None:
        if getattr(args, "max_shots", None) is not None or \
                getattr(args, "min_shots", DEFAULT_MIN_SHOTS) \
                != DEFAULT_MIN_SHOTS:
            sys.exit("error: --min-shots/--max-shots only apply to "
                     "adaptive runs; pass --adaptive REL as well")
        return None
    return AdaptivePolicy(rel_halfwidth=args.adaptive,
                          min_shots=args.min_shots,
                          max_shots=args.max_shots)


def _engine_kwargs(args) -> dict:
    """Campaign-engine pass-through shared by figure subcommands."""
    return {
        "max_workers": args.workers,
        "store": getattr(args, "store", None),
        "adaptive": _policy(args),
        "chunk_shots": getattr(args, "chunk_shots", None),
        "backend": getattr(args, "backend", None),
        "workers": getattr(args, "jobs", None),
    }


def cmd_fig3(args) -> None:
    from .experiments import fig3_temporal

    fig3_temporal.run()
    _write(fig3_temporal.sample_table(), args,
           "Fig. 3 — sampled injection probabilities (gamma=10, ns=10)")
    print()
    # The ablation is a second table: give it a sibling CSV path rather
    # than clobbering the main one (or dropping it, as this once did).
    ablation_args = argparse.Namespace(
        csv=_sibling_csv(args.csv, "ablation") if args.csv else None)
    _write(fig3_temporal.sampling_ablation(), ablation_args,
           "n_s ablation — step-function approximation error")


def cmd_fig4(args) -> None:
    from .experiments import fig4_spatial

    data = fig4_spatial.run()
    _write(data.radial_profile(), args,
           "Fig. 4 — spatial damping S(d) radial profile (n=1)")


def cmd_fig5(args) -> None:
    from .experiments import fig5_landscape

    landscapes = fig5_landscape.run(shots=args.shots, **_engine_kwargs(args))
    rows = []
    for ls in landscapes.values():
        rows.extend(ls.to_rows())
        print(ls.ascii_heatmap())
        print()
    _write(fig5_landscape.summarize(landscapes), argparse.Namespace(csv=None),
           "Fig. 5 — landscape summary")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(to_csv(rows))
        print(f"[full surface written to {args.csv}]")


def cmd_fig6(args) -> None:
    from .experiments import fig6_distance

    rows = fig6_distance.run(shots=args.shots, deep=args.deep,
                             deep_p=args.deep_p, **_engine_kwargs(args))
    _write([r.to_row() for r in rows], args,
           "Fig. 6 — logical error criticality by code distance"
           + (" (+ deep intrinsic-noise floor)" if args.deep else ""))
    adv = fig6_distance.bitflip_advantage(rows)
    if adv:
        print()
        print(ascii_table(adv, title="Observation IV — bit-flip advantage"))


def cmd_fig7(args) -> None:
    from .experiments import fig7_spread

    data = fig7_spread.run(shots=args.shots, **_engine_kwargs(args))
    rows = []
    for d in data:
        rows.extend(d.to_rows())
    _write(rows, args, "Fig. 7 — fault spread vs erasure count")
    for d in data:
        eq = fig7_spread.equivalent_erasures(d)
        print(f"{d.code_label}: spreading fault ~ "
              f"{eq if eq is not None else '>max'} simultaneous erasures "
              f"(radiation line {percent(d.radiation_ler)})")


def cmd_fig8(args) -> None:
    from .experiments import fig8_architecture

    data = fig8_architecture.run(shots=args.shots, **_engine_kwargs(args))
    _write([d.to_row() for d in data], args,
           "Fig. 8 — logical error by architecture")
    print()
    per_qubit = []
    for d in data:
        for q in d.per_qubit:
            per_qubit.append({"code": d.code_label, "arch": d.arch_label,
                              "qubit": q.root, "role": q.role,
                              "median_ler": q.median_ler})
    print(ascii_table(per_qubit, title="Per-qubit criticality"))


def cmd_headline(args) -> None:
    from .experiments import (fig5_landscape, fig6_distance, fig7_spread,
                              fig8_architecture, headline)

    shots = args.shots
    kwargs = _engine_kwargs(args)
    print("[1/4] Fig. 5 landscape...", flush=True)
    landscapes = fig5_landscape.run(shots=shots, **kwargs)
    print("[2/4] Fig. 6 distances...", flush=True)
    distance_rows = fig6_distance.run(shots=shots, **kwargs)
    print("[3/4] Fig. 7 spread...", flush=True)
    spread_data = fig7_spread.run(shots=shots, **kwargs)
    print("[4/4] Fig. 8 architectures...", flush=True)
    arch_data = fig8_architecture.run(shots=max(200, shots // 2), **kwargs)
    checks = headline.check_all(landscapes, distance_rows, spread_data,
                                arch_data)
    _write([c.to_row() for c in checks], args,
           "Paper observations I-VIII — paper vs measured")


def cmd_detect(args) -> None:
    from .experiments import fig_detect

    roc, policies = fig_detect.run(
        shots=args.shots, distance=args.distance, rounds=args.rounds,
        strike_round=args.strike_round, intensity=args.intensity,
        decoder=args.decoder, max_workers=args.workers,
        store=getattr(args, "store", None), adaptive=_policy(args),
        chunk_shots=getattr(args, "chunk_shots", None),
        backend=getattr(args, "backend", None),
        workers=getattr(args, "jobs", None))
    _write([p.to_row() for p in roc], args,
           "Detection — ROC / latency / localisation vs strike intensity")
    print()
    policy_args = argparse.Namespace(
        csv=_sibling_csv(args.csv, "policies") if args.csv else None)
    _write(policies, policy_args,
           f"Recovery policies — d={args.distance} rotated code, "
           f"strike at round {args.strike_round} "
           f"(intensity {args.intensity:g}, paired seeds)")


def _decoder_override(args):
    """The ``--decoder`` override spec, or ``None`` (keep each task's
    own decoder)."""
    kind = getattr(args, "decoder", None)
    if kind is None:
        return None
    from .decoders import as_decoder

    try:
        return as_decoder(kind)
    except (KeyError, ValueError) as exc:
        sys.exit(f"error: {exc}")


def _sampler_override(args):
    """The ``--sampler``/``--tilt`` override, or ``None`` (keep each
    task's own sampler)."""
    kind = getattr(args, "sampler", None)
    tilt = getattr(args, "tilt", None)
    if kind is None:
        if tilt is not None:
            sys.exit("error: --tilt only applies with --sampler tilt")
        return None
    from .rare.sampler import SamplerSpec

    if kind != "tilt" and tilt is not None:
        sys.exit("error: --tilt only applies with --sampler tilt")
    try:
        if kind == "tilt":
            return SamplerSpec(kind="tilt",
                               tilt=0.0 if tilt is None else tilt)
        return SamplerSpec(kind=kind)
    except ValueError as exc:
        sys.exit(f"error: {exc}")


def cmd_campaign(args) -> None:
    from .injection.store import CampaignStore
    from .injection.sweep import build_sweep

    with open(args.spec, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    if args.shots is not None:
        spec["shots"] = args.shots
    campaign = build_sweep(spec)
    policy = _policy(args)
    sampler = _sampler_override(args)
    decoder = _decoder_override(args)
    store = CampaignStore(args.store) if args.store else None
    workers = args.workers
    if workers is None:
        workers = campaign.workers or os.cpu_count() or 1
    banked = campaign.banked(store, adaptive=policy, backend=args.backend,
                             recovery=args.recovery, sampler=sampler,
                             decoder=decoder)
    print(f"campaign: {len(campaign)} points, {workers} worker(s)"
          + (f" ({banked} already complete in {args.store})" if store
             else ""))
    try:
        results = campaign.run(workers=workers,
                               chunk_shots=args.chunk_shots,
                               adaptive=policy, resume=store,
                               backend=args.backend,
                               recovery=args.recovery,
                               sampler=sampler,
                               decoder=decoder)
    except ValueError as exc:
        if "frame backend" not in str(exc):
            raise
        # --sampler split on a point that resolved to the tableau
        # backend: a spec error, reported like the other CLI misuses.
        sys.exit(f"error: {exc}")
    _write(results.to_rows(), args, f"Campaign — {args.spec}")
    ceiling = sum(policy.ceiling(t.shots) if policy else t.shots
                  for t in campaign.tasks)
    spent = results.total_shots()
    line = f"{len(results)} points, {spent} shots"
    if policy is not None and 0 < spent <= ceiling:
        line += (f" of {ceiling} ceiling "
                 f"({percent(1 - spent / ceiling)} saved by early stopping)")
    elif policy is not None:
        # banked results from an earlier (bigger-budget) run exceed
        # this policy's ceiling — extra precision, nothing "saved"
        line += f" (exceeds the {ceiling}-shot ceiling via banked results)"
    print(line)


def cmd_rare(args) -> None:
    """Auto-tilt pilot diagnostics + a tilted deep-tail estimate."""
    from .injection.adaptive import AdaptivePolicy
    from .injection.campaign import run_task
    from .injection.spec import CodeSpec, InjectionTask
    from .rare.pilot import pilot_report
    from .rare.sampler import SamplerSpec
    from .rare.stats import mc_required_shots, variance_reduction_factor

    try:
        sampler = SamplerSpec(kind="tilt", tilt=args.tilt or 0.0,
                              target_rel=args.target_rel,
                              pilot_shots=args.pilot_shots)
    except ValueError as exc:
        sys.exit(f"error: {exc}")
    task = InjectionTask(
        code=CodeSpec("xxzz", (args.distance, args.distance)),
        intrinsic_p=args.p, rounds=args.rounds, decoder=args.decoder,
        readout=args.readout, backend=args.backend or "auto",
        sampler=sampler, shots=args.shots, seed=args.seed)
    rows = pilot_report(task)
    _write(rows, args,
           f"Rare-event pilot — d={args.distance} rotated code, "
           f"p={args.p:g}, {args.readout} readout "
           f"(target ±{args.target_rel:.0%} relative CI)")
    if args.pilot_only:
        return
    if sampler.auto_tilt:
        # Pin the rung the pilot just chose: the auto resolver would
        # deterministically re-run the identical ladder otherwise.
        import dataclasses

        chosen = next(float(r["tilt"]) for r in rows if r["chosen"])
        task = dataclasses.replace(
            task, sampler=dataclasses.replace(sampler,
                                              tilt=max(1.0, chosen)))
    policy = AdaptivePolicy(rel_halfwidth=args.target_rel,
                            min_shots=args.min_shots)
    result = run_task(task, adaptive=policy)
    stats = result.weight_stats
    lo, hi = result.confidence_interval
    # Both figures from the same (self-normalized) estimator, so
    # mc_shots / vrf is the tilted estimator's own shot requirement.
    vrf = variance_reduction_factor(stats, args.target_rel, mode="sn")
    mc_shots = mc_required_shots(result.logical_error_rate,
                                 args.target_rel)
    print()
    print(f"tilted estimate: LER = {result.logical_error_rate:.3g} "
          f"[{lo:.3g}, {hi:.3g}]  "
          f"({result.errors} failures / {result.shots} shots, "
          f"ESS {stats.ess:,.0f})")
    if result.logical_error_rate > 0:
        print(f"variance reduction vs plain MC: {vrf:,.1f}x "
              f"(plain MC would need ~{mc_shots:,.0f} shots for the "
              f"same target)")


def cmd_serve(args) -> None:
    if args.runner:
        from .service.runner import run_runner

        try:
            done = run_runner(args.runner, runner_id=args.runner_id,
                              poll_s=args.poll,
                              idle_timeout_s=args.idle_timeout,
                              max_slices=args.max_slices)
        except Exception as exc:  # noqa: BLE001 — CLI boundary
            sys.exit(f"error: {exc}")
        print(f"runner finished: {done} slice(s) completed")
        return
    if not args.store:
        sys.exit("error: repro serve needs --store PATH "
                 "(or --runner URL for worker mode)")
    import asyncio
    import signal

    from .service.server import CampaignService

    svc = CampaignService(args.store, host=args.host, port=args.port,
                          workers=args.serve_workers,
                          slice_shots=args.slice_shots,
                          lease_ttl_s=args.lease_ttl,
                          telemetry=args.service_telemetry)

    async def _serve() -> None:
        await svc.start()
        print(f"serving campaigns at {svc.url} "
              f"(store {svc.store.path}, "
              f"{svc.workers} local worker(s))", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover — non-POSIX
                pass
        await stop.wait()
        print("shutting down (draining local slices)...", flush=True)
        await svc.stop()

    asyncio.run(_serve())


def _service_client(args):
    from .service.client import ServiceClient

    return ServiceClient(args.url, timeout_s=args.timeout)


def _follow_job(client, job: str, timeout_s: float):
    """Stream one job to completion with a live progress line on a
    TTY (plain polling + silent progress otherwise)."""
    from .obs.sinks import ProgressRenderer, job_progress_line

    renderer = ProgressRenderer() if ProgressRenderer.wants_tty() \
        else None

    def on_progress(status):
        if renderer is not None:
            renderer.render(job_progress_line(status))

    try:
        return client.wait(job, timeout_s=timeout_s,
                           on_progress=on_progress)
    finally:
        if renderer is not None:
            renderer.clear()


def cmd_submit(args) -> None:
    from .service.client import ServiceError

    with open(args.spec, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    if args.shots is not None:
        spec["shots"] = args.shots
    client = _service_client(args)
    try:
        receipt = client.submit(spec)
        print(f"{receipt['job']}: {receipt['points']} point(s) — "
              f"{receipt['cache_hits']} cached, "
              f"{receipt['coalesced']} coalesced, "
              f"{receipt['fresh']} fresh [{receipt['state']}]")
        if not args.wait:
            if receipt["state"] != "done":
                print(f"poll with: repro status {receipt['job']} "
                      f"--url {args.url}")
                return
            status = client.status(receipt["job"])
        else:
            # Streaming by default: the server holds the response
            # open and pushes progress; falls back to polling against
            # an old head.
            status = _follow_job(client, receipt["job"],
                                 args.wait_timeout)
    except ServiceError as exc:
        sys.exit(f"error: {exc}")
    rows = status.get("results", [])
    if rows:
        _write(rows, args, f"Service results — {receipt['job']}",)


def _watch_status(args, client) -> None:
    """``repro status --watch``: live-refresh on a TTY via the PR 7
    single-line renderer; one plain line per refresh otherwise."""
    import time as _time

    from .obs.sinks import ProgressRenderer, job_progress_line
    from .service.client import ServiceError

    renderer = ProgressRenderer() if ProgressRenderer.wants_tty() \
        else None

    def show(line: str) -> None:
        if renderer is not None:
            renderer.render(line)
        else:
            print(line, flush=True)

    try:
        if args.job is not None:
            # Jobs finish: follow the streaming endpoint to the final
            # record, then print the result table.
            for status in client.stream(args.job,
                                        interval_s=args.interval):
                if "error" in status:
                    sys.exit(f"error: {status['error']}")
                show(job_progress_line(status))
                if status.get("final") \
                        or status.get("state") == "done":
                    if renderer is not None:
                        renderer.clear()
                    _print_job_status(status)
                    return
            if renderer is not None:
                renderer.clear()
            return
        while True:  # service overview: watch until interrupted
            overview = client.status()
            counters = overview.get("counters", {})
            show(f"jobs {overview.get('jobs_running', 0)} running / "
                 f"{overview.get('jobs', 0)} total, "
                 f"{overview.get('points_inflight', 0)} point(s) in "
                 f"flight, {overview.get('slices_pending', 0)} "
                 f"slice(s) queued, {overview.get('leases_outstanding', 0)} "
                 f"lease(s) out, {counters.get('slices_completed', 0)} "
                 f"slice(s) done")
            _time.sleep(args.interval)
    except ServiceError as exc:
        if renderer is not None:
            renderer.clear()
        sys.exit(f"error: {exc}")
    except KeyboardInterrupt:
        if renderer is not None:
            renderer.clear()


def _print_job_status(status) -> None:
    print(f"{status['job']}: {status['state']} — "
          f"{status['points_done']}/{status['points']} point(s), "
          f"{status['shots_done']}/{status['shots_target']} shots "
          f"({status['cache_hits']} cached, {status['coalesced']} "
          f"coalesced, {status['fresh']} fresh)")
    tasks = status.get("tasks", [])
    if tasks:
        print()
        print(ascii_table(tasks, columns=[
            "label", "status", "shots", "target", "errors", "ler"]))


def cmd_status(args) -> None:
    from .service.client import ServiceError

    client = _service_client(args)
    if args.watch:
        _watch_status(args, client)
        return
    try:
        status = client.status(args.job)
    except ServiceError as exc:
        sys.exit(f"error: {exc}")
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True, default=str))
        return
    if args.job is None:
        counters = status.pop("counters", {})
        for key in ("jobs", "jobs_running", "points_inflight",
                    "slices_pending", "leases_outstanding", "store",
                    "store_done"):
            print(f"{key:>20}: {status.get(key)}")
        print(f"{'jobs seen':>20}: "
              f"{', '.join(status.get('job_ids', [])) or '-'}")
        line = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"{'service counters':>20}: {line}")
        return
    _print_job_status(status)


def cmd_store(args) -> None:
    from .injection.store import CampaignStore

    if args.store_command == "merge":
        stats = CampaignStore.merge(args.out, args.inputs)
        if not args.quiet:
            duplicates = stats["duplicate_done"] + stats["duplicate_chunks"]
            print(f"merged {stats['inputs']} store(s) into {args.out}: "
                  f"{stats['done']} completed points, "
                  f"{stats['chunks']} chunks")
            print(f"  shards read:        "
                  f"{stats['inputs'] - stats['skipped_inputs']} of "
                  f"{stats['inputs']}"
                  + (f" ({stats['skipped_inputs']} unusable, skipped)"
                     if stats["skipped_inputs"] else ""))
            print(f"  records kept:       "
                  f"{stats['done'] + stats['chunks']} "
                  f"({stats['done']} done, {stats['chunks']} chunk)")
            print(f"  duplicates dropped: {duplicates} "
                  f"({stats['duplicate_done']} done, "
                  f"{stats['duplicate_chunks']} chunk)")
            print(f"  malformed skipped:  {stats['malformed_records']}")
        conflicts = stats["conflicting_chunks"] + stats["conflicting_done"]
        if conflicts:
            print(f"warning: {conflicts} duplicate record(s) disagreed "
                  f"on counts — shards may come from different code "
                  f"versions; investigate before trusting the merge")
        return

    if not os.path.exists(args.path):
        sys.exit(f"error: no store at {args.path}")
    store = CampaignStore(args.path)

    if args.store_command == "stats":
        s = store.stats()
        print(f"store {s['path']}:")
        for key in ("keys", "done", "partial", "chunk_records",
                    "done_shots", "done_errors"):
            print(f"  {key:>14}: {s[key]:,}" if isinstance(s[key], int)
                  else f"  {key:>14}: {s[key]}")
        return

    if args.store_command == "lookup":
        if (args.spec is None) == (args.key is None):
            sys.exit("error: lookup needs exactly one of --spec FILE "
                     "or --key PREFIX")
        if args.spec is not None:
            from .injection.sweep import build_sweep

            with open(args.spec, "r", encoding="utf-8") as fh:
                spec = json.load(fh)
            try:
                tasks = build_sweep(spec)._seeded()
            except (KeyError, TypeError, ValueError) as exc:
                sys.exit(f"error: bad sweep spec: {exc}")
            rows = [store.lookup(t) for t in tasks]
            columns = ["label", "key", "status", "shots",
                       "target_shots", "errors", "ler", "ler_lo",
                       "ler_hi"]
        else:
            rows = [store.key_stats(k)
                    for k in store.find_keys(args.key)]
            if not rows:
                print(f"no keys matching {args.key!r} in {args.path}")
                return
            columns = ["key", "status", "label", "shots", "errors",
                       "chunk_records", "ler", "ler_lo", "ler_hi"]
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True,
                             default=str))
            return
        print(ascii_table(rows, columns=columns,
                          title=f"Store lookup — {args.path}"))
        hits = sum(1 for r in rows if r.get("status") == "done")
        print(f"\n{hits}/{len(rows)} point(s) fully cached")


def cmd_fleet(args) -> None:
    from .service.fleet import fleet_overview, render_fleet

    overview = fleet_overview(args.urls, timeout_s=args.timeout)
    if args.json:
        print(json.dumps(overview, indent=2, sort_keys=True,
                         default=str))
    else:
        print(render_fleet(overview, top_spans=args.top_spans))
    if not overview["aggregate"]["heads_up"]:
        sys.exit(1)


def cmd_report(args) -> None:
    from .obs.report import render_report

    files = args.file
    print(render_report(files[0] if len(files) == 1 else files))


def _perf_record(args) -> None:
    from . import obs
    from .obs import prof

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        sys.exit("perf record: missing wrapped command "
                 "(usage: repro perf record [--flame PATH] -- CMD ...)")
    if cmd[0] == "perf":
        sys.exit("perf record: cannot wrap perf itself")
    sub = build_parser().parse_args(cmd)
    telemetry = getattr(sub, "telemetry", None)
    with prof.profile() as profiler:
        with obs.session(telemetry=telemetry,
                         quiet=bool(getattr(sub, "quiet", False))):
            COMMANDS[sub.command](sub)
    snap = profiler.snapshot()
    # Artifacts land before the stdout render: a closed pager must not
    # cost the run its flamegraph.
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
    if args.flame:
        with open(args.flame, "w", encoding="utf-8") as fh:
            fh.write("\n".join(profiler.flame_lines()) + "\n")
    print()
    print(prof.render_profile(snap, top=args.top))
    if args.json:
        print(f"[profile written to {args.json}]")
    if args.flame:
        print(f"[flamegraph stacks written to {args.flame}]")
    if telemetry:
        print(f"[telemetry written to {telemetry}]")


def _perf_ingest(args) -> None:
    from .obs import bench

    with open(args.bench_json, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    history = args.history or bench.DEFAULT_HISTORY
    stats = bench.ingest(payload, history,
                         source=os.path.basename(args.bench_json))
    print(f"{history}: {stats['added']} point(s) added, "
          f"{stats['updated']} updated")


def _perf_trend(args) -> None:
    from .obs import bench

    history_path = args.history or bench.DEFAULT_HISTORY
    rows = bench.trend_rows(bench.load_history(history_path),
                            bench=args.bench)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return
    if not rows:
        print(f"{history_path}: no history points")
        return
    print(f"bench trend — {history_path}")
    print(bench.render_trend(rows))


def _perf_check(args) -> None:
    from .obs import bench

    history_path = args.history or bench.DEFAULT_HISTORY
    history = bench.load_history(history_path)
    current = None
    if args.bench_json:
        with open(args.bench_json, "r", encoding="utf-8") as fh:
            current = bench.payload_records(json.load(fh))
    rel_tol = args.rel_tol
    if rel_tol is None:
        rel_tol = bench.rel_tol_default(lax=True if args.lax else None)
    results = bench.check(history, current, rel_tol=rel_tol,
                          mad_k=args.mad_k,
                          min_history=args.min_history)
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    elif not results:
        print(f"{history_path}: nothing to check")
    else:
        print(f"bench check — {history_path} "
              f"(rel_tol {rel_tol:.0%}, mad_k {args.mad_k:g})")
        print(bench.render_check(results))
    if any(r["status"] == "regression" for r in results) \
            and not args.warn_only:
        sys.exit(1)


def cmd_perf(args) -> None:
    {"record": _perf_record, "ingest": _perf_ingest,
     "trend": _perf_trend, "check": _perf_check}[args.perf_command](args)


#: Figure subcommands that execute injection campaigns (and therefore
#: accept the engine flags); fig3/fig4 are analytic.
CAMPAIGN_FIGURES = ("fig5", "fig6", "fig7", "fig8", "headline")

COMMANDS = {
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "headline": cmd_headline,
    "detect": cmd_detect,
    "campaign": cmd_campaign,
    "rare": cmd_rare,
    "store": cmd_store,
    "report": cmd_report,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "fleet": cmd_fleet,
    "perf": cmd_perf,
}


def _add_engine_options(sub: argparse.ArgumentParser,
                        jobs_flag: bool = True) -> None:
    if jobs_flag:
        sub.add_argument("-j", "--jobs", type=int, default=None,
                         metavar="N",
                         help="work-stealing worker processes "
                              "(block-level parallelism via "
                              "repro.parallel; counts and adaptive "
                              "stop shots stay bit-identical to a "
                              "serial run)")
    sub.add_argument("--store", type=str, default=None,
                     help="JSONL checkpoint file; re-running with the "
                          "same store resumes instead of restarting")
    sub.add_argument("--adaptive", type=float, default=None, metavar="REL",
                     help="adaptive shot allocation: stop each point "
                          "once its Wilson half-width is REL x its rate")
    sub.add_argument("--min-shots", type=int, default=DEFAULT_MIN_SHOTS,
                     help="adaptive floor before a point may stop")
    sub.add_argument("--max-shots", type=int, default=None,
                     help="adaptive ceiling (default: the task's shots)")
    sub.add_argument("--chunk-shots", type=int, default=None,
                     help="streaming chunk size (checkpoint granularity)")
    sub.add_argument("--telemetry", type=str, default=None, metavar="PATH",
                     help="append schema-versioned telemetry snapshots "
                          "(JSONL) here while the run progresses; "
                          "render afterwards with 'repro report PATH'")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress the live progress line (telemetry "
                          "export, if requested, still runs)")
    from .frames.backend import BACKENDS

    sub.add_argument("--backend", type=str, default=None,
                     choices=BACKENDS,
                     help="simulation backend for every point: 'frames' "
                          "= bit-packed Pauli-frame sampler (forced; may "
                          "approximate fault resets as reset-to-mixed), "
                          "'tableau' = batched CHP tableaus, 'auto' "
                          "(default) = frames wherever the lowering is "
                          "exact, tableau elsewhere")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the SC'24 surface-codes-"
                    "under-radiation paper, or run custom sweeps.")
    subs = parser.add_subparsers(dest="command", required=True,
                                 metavar="command")
    for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                 "headline"):
        sub = subs.add_parser(name, help=f"regenerate {name} data")
        sub.add_argument("--shots", type=int, default=800,
                         help="shots per configuration point")
        sub.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: all cores)")
        sub.add_argument("--csv", type=str, default=None,
                         help="also write rows to this CSV file")
        if name == "fig6":
            sub.add_argument("--deep", action="store_true",
                             help="extend the distance curves into the "
                                  "deep low-LER tail: one auto-tilted "
                                  "intrinsic-noise baseline point per "
                                  "code (repro.rare importance "
                                  "sampling)")
            sub.add_argument("--deep-p", type=float, default=2e-4,
                             help="intrinsic noise level of the deep "
                                  "baseline points")
        if name in CAMPAIGN_FIGURES:
            _add_engine_options(sub)
    det = subs.add_parser(
        "detect", help="strike-detection ROC + recovery-policy LER "
                       "(streaming CUSUM over packed syndromes)")
    det.add_argument("--shots", type=int, default=1024,
                     help="shots per batch / campaign point")
    det.add_argument("--distance", type=int, default=5,
                     help="rotated-code distance (d, d)")
    det.add_argument("--rounds", type=int, default=10,
                     help="syndrome rounds of the memory experiment")
    det.add_argument("--strike-round", type=int, default=4,
                     help="round the radiation burst lands on")
    det.add_argument("--intensity", type=float, default=1.0,
                     help="strike energy scale for the policy panel "
                          "(1.0 = the paper's full strike)")
    det.add_argument("--decoder", type=str, default="mwpm",
                     help="base decoder for the policy panel")
    det.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: all cores)")
    det.add_argument("--csv", type=str, default=None,
                     help="write the ROC rows here (policy rows go to "
                          "a .policies sibling)")
    _add_engine_options(det)
    camp = subs.add_parser(
        "campaign", help="run a JSON sweep spec through the engine")
    camp.add_argument("spec", type=str,
                      help="path to the sweep spec (JSON)")
    camp.add_argument("--shots", type=int, default=None,
                      help="override the spec's per-point shot budget")
    camp.add_argument("-j", "--workers", type=int, default=None,
                      metavar="N",
                      help="worker processes for the work-stealing "
                           "scheduler (default: the spec's 'workers' "
                           "key, else all cores; counts are "
                           "bit-identical for any worker count)")
    camp.add_argument("--csv", type=str, default=None,
                      help="also write result rows to this CSV file")
    _add_engine_options(camp, jobs_flag=False)
    from .detect.recovery import RECOVERY_POLICIES

    camp.add_argument("--recovery", type=str, default=None,
                      choices=RECOVERY_POLICIES,
                      help="burst-recovery policy for every point: "
                           "'reweight' = detect strikes per batch and "
                           "decode flagged shots on a model-reweighted "
                           "graph, 'discard_window' = clear flagged "
                           "shots' burst-window detectors, 'static' = "
                           "plain decode (default: the task's own "
                           "setting)")
    from .rare.sampler import SAMPLER_KINDS

    camp.add_argument("--sampler", type=str, default=None,
                      choices=SAMPLER_KINDS,
                      help="rare-event sampling measure for every "
                           "point: 'tilt' = importance-sample boosted "
                           "intrinsic noise with per-shot likelihood "
                           "weights, 'split' = multilevel splitting "
                           "over frame batches, 'mc' = plain Monte "
                           "Carlo (default: the task's own setting)")
    camp.add_argument("--tilt", type=float, default=None,
                      help="tilt factor for --sampler tilt (default: "
                           "auto via a pilot run)")
    camp.add_argument("--decoder", type=str, default=None,
                      metavar="KIND[:MODS]",
                      help="decoder for every point: 'mwpm' or "
                           "'union-find', with optional comma-joined "
                           "mods after a colon — 'hooks' adds "
                           "correlated hook edges to the detector "
                           "graph, 'uniform' ignores edge weights, "
                           "'nocache' disables the syndrome-dedup "
                           "decode cache (e.g. 'union-find:hooks'; "
                           "default: the task's own setting)")
    rare = subs.add_parser(
        "rare", help="rare-event pilot diagnostics + a tilted "
                     "deep-tail LER estimate (repro.rare)")
    rare.add_argument("--distance", type=int, default=5,
                      help="rotated-code distance (d, d)")
    rare.add_argument("--p", type=float, default=2e-4,
                      help="intrinsic depolarizing noise level")
    rare.add_argument("--rounds", type=int, default=2,
                      help="syndrome rounds of the memory experiment")
    rare.add_argument("--decoder", type=str, default="mwpm",
                      help="decoder for the estimate")
    rare.add_argument("--readout", type=str, default="data",
                      choices=("ancilla", "data"),
                      help="readout mode (the deep tail needs 'data': "
                           "the ancilla circuit fails linearly in p)")
    rare.add_argument("--backend", type=str, default=None,
                      help="simulation backend (default auto)")
    rare.add_argument("--shots", type=int, default=16384,
                      help="shot ceiling for the tilted estimate")
    rare.add_argument("--min-shots", type=int, default=DEFAULT_MIN_SHOTS,
                      help="adaptive floor before the estimate may stop")
    rare.add_argument("--seed", type=int, default=2024,
                      help="task seed")
    rare.add_argument("--tilt", type=float, default=None,
                      help="pin the tilt instead of auto-selecting")
    rare.add_argument("--target-rel", type=float, default=0.2,
                      help="target relative CI half-width")
    rare.add_argument("--pilot-shots", type=int, default=1024,
                      help="pilot shots per tilt-ladder rung")
    rare.add_argument("--pilot-only", action="store_true",
                      help="print the pilot table and stop")
    rare.add_argument("--csv", type=str, default=None,
                      help="also write the pilot rows to this CSV file")
    store = subs.add_parser(
        "store", help="manage JSONL campaign stores")
    store_subs = store.add_subparsers(dest="store_command", required=True,
                                      metavar="store-command")
    merge = store_subs.add_parser(
        "merge", help="merge sharded per-host stores into one "
                      "resumable store (deduplicating overlaps)")
    merge.add_argument("out", type=str,
                       help="merged store path (an existing file is "
                            "included in the merge and replaced "
                            "atomically)")
    merge.add_argument("inputs", type=str, nargs="+", metavar="in",
                       help="input store shards")
    merge.add_argument("--quiet", action="store_true",
                       help="suppress the compaction summary (conflict "
                            "warnings still print)")
    lookup = store_subs.add_parser(
        "lookup", help="query cached counts / LER / CI by sweep spec "
                       "or key prefix (the service's cache-hit path, "
                       "as a CLI)")
    lookup.add_argument("path", type=str, help="store JSONL file")
    lookup.add_argument("--spec", type=str, default=None,
                        help="sweep spec (JSON file): resolve every "
                             "point to its task key and report cached "
                             "state")
    lookup.add_argument("--key", type=str, default=None,
                        metavar="PREFIX",
                        help="report every key matching this hex "
                             "prefix ('' lists the whole store)")
    lookup.add_argument("--json", action="store_true",
                        help="emit rows as JSON instead of a table")
    sstats = store_subs.add_parser(
        "stats", help="whole-store summary: keys, completed points, "
                      "resumable chunks, banked shots")
    sstats.add_argument("path", type=str, help="store JSONL file")
    serve = subs.add_parser(
        "serve", help="campaign service: HTTP dispatch head over a "
                      "shared store (or --runner URL to pull slices "
                      "for a remote head)")
    serve.add_argument("--store", type=str, default=None,
                       help="shared content-addressed store (system of "
                            "record; created if missing)")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 = ephemeral; default 8765)")
    serve.add_argument("-j", "--workers", dest="serve_workers",
                       type=int, default=1, metavar="N",
                       help="local slice workers: 1 (default) runs "
                            "in-process, N>1 forks a pool, 0 serves "
                            "dispatch only (remote runners do the "
                            "work)")
    serve.add_argument("--slice-shots", type=int, default=None,
                       help="shots per dispatched slice (block-"
                            "aligned; default: the engine's chunk "
                            "size)")
    serve.add_argument("--lease-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="slice lease expiry — a runner silent this "
                            "long is presumed crashed and its slice "
                            "requeued")
    serve.add_argument("--telemetry", dest="service_telemetry",
                       type=str, default=None, metavar="PATH",
                       help="append service telemetry snapshots "
                            "(JSONL) here; render with 'repro report'")
    serve.add_argument("--runner", type=str, default=None,
                       metavar="URL",
                       help="runner mode: pull slice leases from the "
                            "dispatch head at URL instead of serving")
    serve.add_argument("--runner-id", type=str, default=None,
                       help="runner name reported to the head "
                            "(default host-pid)")
    serve.add_argument("--poll", type=float, default=0.5,
                       help="runner idle poll interval, seconds")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="runner exits after this long with no "
                            "work (default: poll forever)")
    serve.add_argument("--max-slices", type=int, default=None,
                       help="runner exits after completing this many "
                            "slices")
    submit = subs.add_parser(
        "submit", help="submit a sweep spec (JSON) to a campaign "
                       "service")
    submit.add_argument("spec", type=str,
                        help="path to the sweep spec (JSON)")
    submit.add_argument("--url", type=str,
                        default="http://127.0.0.1:8765",
                        help="service base URL")
    submit.add_argument("--shots", type=int, default=None,
                        help="override the spec's per-point shot "
                             "budget")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job completes and print "
                             "the result table")
    submit.add_argument("--wait-timeout", type=float, default=3600.0,
                        help="give up waiting after this many seconds")
    submit.add_argument("--timeout", type=float, default=60.0,
                        help="per-request HTTP timeout, seconds")
    submit.add_argument("--csv", type=str, default=None,
                        help="with --wait: also write result rows to "
                             "this CSV file")
    status = subs.add_parser(
        "status", help="query a campaign service (overview, or one "
                       "job's progress and results)")
    status.add_argument("job", type=str, nargs="?", default=None,
                        help="job id (omit for the service overview)")
    status.add_argument("--url", type=str,
                        default="http://127.0.0.1:8765",
                        help="service base URL")
    status.add_argument("--timeout", type=float, default=60.0,
                        help="per-request HTTP timeout, seconds")
    status.add_argument("--json", action="store_true",
                        help="emit the raw JSON response")
    status.add_argument("--watch", action="store_true",
                        help="live-refresh: stream a job's progress "
                             "(or poll the overview) until done / "
                             "interrupted")
    status.add_argument("--interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="--watch refresh interval (default 0.5)")
    fleet = subs.add_parser(
        "fleet", help="poll several dispatch heads' /status and "
                      "/metrics and render one merged fleet report")
    fleet.add_argument("urls", type=str, nargs="+", metavar="URL",
                       help="dispatch head base URLs")
    fleet.add_argument("--timeout", type=float, default=10.0,
                       help="per-head HTTP timeout, seconds")
    fleet.add_argument("--top-spans", type=int, default=8,
                       help="rows in the slowest-span breakdown")
    fleet.add_argument("--json", action="store_true",
                       help="emit the merged overview as JSON")
    report = subs.add_parser(
        "report", help="render a run summary from telemetry JSONL "
                       "files written via --telemetry (several files "
                       "merge into one offline-fleet summary)")
    report.add_argument("file", type=str, nargs="+",
                        help="telemetry JSONL file(s) to summarise")
    perf = subs.add_parser(
        "perf", help="performance observatory: profile any command, "
                     "keep a bench history, gate perf regressions")
    perf_subs = perf.add_subparsers(dest="perf_command", required=True,
                                    metavar="perf_command")
    record = perf_subs.add_parser(
        "record", help="run a repro command under the deterministic "
                       "profiler (kernel buckets, decode stages, span "
                       "self-times; counts stay bit-identical)")
    record.add_argument("--flame", type=str, default=None, metavar="PATH",
                        help="write collapsed flamegraph stacks (one "
                             "'a;b;c <self-µs>' line per span path, "
                             "flamegraph.pl / speedscope input)")
    record.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="write the raw profile snapshot as JSON")
    record.add_argument("--top", type=int, default=20,
                        help="rows in the span-path self-time table")
    record.add_argument("cmd", nargs=argparse.REMAINDER, metavar="CMD",
                        help="the repro command to profile, e.g. "
                             "'-- campaign spec.json --shots 4096'")
    ingest = perf_subs.add_parser(
        "ingest", help="append a --bench-json payload to the bench "
                       "history, keyed by (git sha, machine "
                       "fingerprint, benchmark)")
    ingest.add_argument("bench_json", type=str,
                        help="payload written by pytest --bench-json")
    ingest.add_argument("--history", type=str, default=None,
                        metavar="PATH",
                        help="history JSONL (default: "
                             "results/bench/history.jsonl)")
    trend = perf_subs.add_parser(
        "trend", help="per-benchmark shots/s series across commits")
    trend.add_argument("--history", type=str, default=None, metavar="PATH",
                       help="history JSONL (default: "
                            "results/bench/history.jsonl)")
    trend.add_argument("--bench", type=str, default=None,
                       help="restrict to one benchmark name")
    trend.add_argument("--json", action="store_true",
                       help="emit the series as JSON")
    check = perf_subs.add_parser(
        "check", help="noise-aware perf-regression gate: current rate "
                      "vs median of same-fingerprint history, MAD-"
                      "scaled band; exits 1 on a confirmed regression")
    check.add_argument("bench_json", type=str, nargs="?", default=None,
                       help="payload to judge (default: the latest "
                            "history point per benchmark)")
    check.add_argument("--history", type=str, default=None, metavar="PATH",
                       help="history JSONL (default: "
                            "results/bench/history.jsonl)")
    check.add_argument("--rel-tol", type=float, default=None,
                       help="relative regression floor (default 0.10, "
                            "0.30 lax)")
    check.add_argument("--mad-k", type=float, default=4.0,
                       help="MAD multiplier for the noise band")
    check.add_argument("--min-history", type=int, default=3,
                       help="baseline points needed before the gate "
                            "arms")
    check.add_argument("--lax", action="store_true",
                       help="force the lax relative floor (otherwise "
                            "REPRO_BENCH_LAX decides)")
    check.add_argument("--warn-only", action="store_true",
                       help="report regressions but always exit 0 "
                            "(CI warm-up mode while history accrues)")
    check.add_argument("--json", action="store_true",
                       help="emit the verdicts as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from . import obs

    telemetry = getattr(args, "telemetry", None)
    with obs.session(telemetry=telemetry,
                     quiet=bool(getattr(args, "quiet", False))):
        COMMANDS[args.command](args)
    if telemetry:
        print(f"[telemetry written to {telemetry}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
