"""Command-line entry point: regenerate any paper figure's data.

Usage::

    python -m repro fig3            # temporal decay series
    python -m repro fig5 --shots 500
    python -m repro headline        # all observation checks (long)
    repro fig6 --workers 8 --csv out.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import ascii_table, percent, to_csv


def _write(rows, args, title: str) -> None:
    print(ascii_table(rows, title=title))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(to_csv(rows))
        print(f"\n[csv written to {args.csv}]")


def cmd_fig3(args) -> None:
    from .experiments import fig3_temporal

    data = fig3_temporal.run()
    _write(fig3_temporal.sample_table(), args,
           "Fig. 3 — sampled injection probabilities (gamma=10, ns=10)")
    print()
    _write(fig3_temporal.sampling_ablation(), args and argparse.Namespace(csv=None),
           "n_s ablation — step-function approximation error")


def cmd_fig4(args) -> None:
    from .experiments import fig4_spatial

    data = fig4_spatial.run()
    _write(data.radial_profile(), args,
           "Fig. 4 — spatial damping S(d) radial profile (n=1)")


def cmd_fig5(args) -> None:
    from .experiments import fig5_landscape

    landscapes = fig5_landscape.run(shots=args.shots,
                                    max_workers=args.workers)
    rows = []
    for ls in landscapes.values():
        rows.extend(ls.to_rows())
        print(ls.ascii_heatmap())
        print()
    _write(fig5_landscape.summarize(landscapes), argparse.Namespace(csv=None),
           "Fig. 5 — landscape summary")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(to_csv(rows))
        print(f"[full surface written to {args.csv}]")


def cmd_fig6(args) -> None:
    from .experiments import fig6_distance

    rows = fig6_distance.run(shots=args.shots, max_workers=args.workers)
    _write([r.to_row() for r in rows], args,
           "Fig. 6 — logical error criticality by code distance")
    adv = fig6_distance.bitflip_advantage(rows)
    if adv:
        print()
        print(ascii_table(adv, title="Observation IV — bit-flip advantage"))


def cmd_fig7(args) -> None:
    from .experiments import fig7_spread

    data = fig7_spread.run(shots=args.shots, max_workers=args.workers)
    rows = []
    for d in data:
        rows.extend(d.to_rows())
    _write(rows, args, "Fig. 7 — fault spread vs erasure count")
    for d in data:
        eq = fig7_spread.equivalent_erasures(d)
        print(f"{d.code_label}: spreading fault ~ "
              f"{eq if eq is not None else '>max'} simultaneous erasures "
              f"(radiation line {percent(d.radiation_ler)})")


def cmd_fig8(args) -> None:
    from .experiments import fig8_architecture

    data = fig8_architecture.run(shots=args.shots, max_workers=args.workers)
    _write([d.to_row() for d in data], args,
           "Fig. 8 — logical error by architecture")
    print()
    per_qubit = []
    for d in data:
        for q in d.per_qubit:
            per_qubit.append({"code": d.code_label, "arch": d.arch_label,
                              "qubit": q.root, "role": q.role,
                              "median_ler": q.median_ler})
    print(ascii_table(per_qubit, title="Per-qubit criticality"))


def cmd_headline(args) -> None:
    from .experiments import (fig5_landscape, fig6_distance, fig7_spread,
                              fig8_architecture, headline)

    shots = args.shots
    print("[1/4] Fig. 5 landscape...", flush=True)
    landscapes = fig5_landscape.run(shots=shots, max_workers=args.workers)
    print("[2/4] Fig. 6 distances...", flush=True)
    distance_rows = fig6_distance.run(shots=shots, max_workers=args.workers)
    print("[3/4] Fig. 7 spread...", flush=True)
    spread_data = fig7_spread.run(shots=shots, max_workers=args.workers)
    print("[4/4] Fig. 8 architectures...", flush=True)
    arch_data = fig8_architecture.run(shots=max(200, shots // 2),
                                      max_workers=args.workers)
    checks = headline.check_all(landscapes, distance_rows, spread_data,
                                arch_data)
    _write([c.to_row() for c in checks], args,
           "Paper observations I-VIII — paper vs measured")


COMMANDS = {
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "headline": cmd_headline,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the SC'24 surface-codes-"
                    "under-radiation paper.")
    parser.add_argument("figure", choices=sorted(COMMANDS),
                        help="which figure/table to regenerate")
    parser.add_argument("--shots", type=int, default=800,
                        help="shots per configuration point")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: all cores)")
    parser.add_argument("--csv", type=str, default=None,
                        help="also write rows to this CSV file")
    args = parser.parse_args(argv)
    COMMANDS[args.figure](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
