"""Noise-channel abstractions.

A :class:`NoiseChannel` injects stochastic error operations *after*
ideal circuit gates.  Channels are stateless w.r.t. the quantum state:
they observe the gate being executed and act on the simulator through
its public gate API (masked operations for the batch simulator), so one
channel implementation serves both execution backends.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..circuits import Gate, GateType
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator


class NoiseChannel(abc.ABC):
    """Base class for stochastic error channels."""

    @abc.abstractmethod
    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        """Inject errors after ``gate`` across the whole batch."""

    @abc.abstractmethod
    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        """Inject errors after ``gate`` on a single-shot simulator."""

    def triggers_on(self, gate: Gate) -> bool:
        """Whether this channel fires after the given gate (default: all
        non-barrier operations)."""
        return gate.gate_type is not GateType.BARRIER

    def begin_run(self) -> None:
        """Reset per-run channel state.

        Called once before each walk over the circuit (batched or
        single-shot execution, frame-program lowering).  Channels whose
        behaviour depends on circuit *position* — e.g. the
        round-resolved :class:`~repro.noise.radiation.RadiationBurst` —
        rewind their position tracking here; stateless channels ignore
        it.
        """

    def observe(self, gate: Gate) -> None:
        """Advance position tracking past ``gate``.

        Called exactly once per (non-barrier) gate per run, before
        :meth:`triggers_on`, by every executor walk.  Default: no-op.
        """


class NoiseModel:
    """An ordered collection of channels applied after every gate."""

    def __init__(self, channels: Optional[Iterable[NoiseChannel]] = None) -> None:
        self.channels: List[NoiseChannel] = list(channels or [])

    def add(self, channel: NoiseChannel) -> "NoiseModel":
        self.channels.append(channel)
        return self

    def __iter__(self):
        return iter(self.channels)

    def __len__(self) -> int:
        return len(self.channels)

    def begin_run(self) -> None:
        """Rewind every channel's per-run state (see
        :meth:`NoiseChannel.begin_run`)."""
        for ch in self.channels:
            ch.begin_run()

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        for ch in self.channels:
            ch.observe(gate)
            if ch.triggers_on(gate):
                ch.apply_batch(gate, sim, rng)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        for ch in self.channels:
            ch.observe(gate)
            if ch.triggers_on(gate):
                ch.apply_single(gate, sim, rng)

    @classmethod
    def compose(cls, *models: "NoiseModel") -> "NoiseModel":
        out = cls()
        for m in models:
            out.channels.extend(m.channels)
        return out
