"""Radiation-induced transient-fault model (paper §III-B, Eqs. 5-7).

A particle strike at a *root* physical qubit deposits energy that

* decays in time as ``T(t) = exp(-gamma t)`` with ``gamma = 10`` over a
  normalised window ``t in [0, 1]`` (Eq. 5), approximated by a step
  function sampled at ``n_s`` equidistant instants (Fig. 3), and
* spreads in space as ``S(d) = n^2 / (d + n)^2`` with ``n = 1`` (Eq. 6),
  where ``d`` is the graph distance from the root qubit on the device's
  architecture graph (Fig. 4).

The product ``F(t, d) = T(t) S(d)`` (Eq. 7) gives, per qubit, the
probability that each gate acting on it is followed by a non-unitary
reset.  :class:`RadiationEvent` turns a root qubit plus an architecture
graph into per-time-sample probability vectors;
:class:`RadiationChannel` injects the corresponding resets.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits import Gate, GateType
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator
from .base import NoiseChannel

#: Paper defaults.
DEFAULT_GAMMA = 10.0
DEFAULT_SPATIAL_N = 1.0
DEFAULT_NUM_SAMPLES = 10


def temporal_decay(t, gamma: float = DEFAULT_GAMMA):
    """``T(t) = exp(-gamma t)`` (Eq. 5); accepts scalars or arrays."""
    return np.exp(-gamma * np.asarray(t, dtype=float))


def sample_times(num_samples: int = DEFAULT_NUM_SAMPLES) -> np.ndarray:
    """The ``n_s`` equidistant sample instants of the step function T̂.

    Samples span the full window including the strike instant ``t = 0``
    (root injection probability 100%, Fig. 5's time axis) and the end of
    the normalised window ``t = 1``.
    """
    if num_samples < 1:
        raise ValueError("need at least one sample")
    if num_samples == 1:
        return np.zeros(1)
    return np.linspace(0.0, 1.0, num_samples)


def stepped_temporal_decay(t, gamma: float = DEFAULT_GAMMA,
                           num_samples: int = DEFAULT_NUM_SAMPLES):
    """The step approximation T̂(t): piecewise-constant between samples."""
    ts = sample_times(num_samples)
    t = np.asarray(t, dtype=float)
    idx = np.clip(np.searchsorted(ts, t, side="right") - 1, 0, num_samples - 1)
    return temporal_decay(ts[idx], gamma)


def spatial_damping(d, n: float = DEFAULT_SPATIAL_N):
    """``S(d) = n^2 / (d + n)^2`` (Eq. 6); ``d`` scalar or array."""
    d = np.asarray(d, dtype=float)
    return (n ** 2) / ((d + n) ** 2)


def transient_decay(t, d, gamma: float = DEFAULT_GAMMA,
                    n: float = DEFAULT_SPATIAL_N):
    """``F(t, d) = T(t) S(d)`` (Eq. 7)."""
    return temporal_decay(t, gamma) * spatial_damping(d, n)


class RadiationEvent:
    """A single particle strike bound to an architecture graph.

    Parameters
    ----------
    root_qubit:
        Physical qubit at the impact point.
    distances:
        Mapping (or vector) of graph distances from the root to every
        physical qubit.  Build it from an
        :class:`~repro.arch.graph.ArchitectureGraph` via
        :meth:`distances_from`; qubits missing from the mapping are
        treated as unreachable (probability 0).
    num_qubits:
        Width of the physical register.
    gamma, n, num_samples:
        Model parameters (paper defaults).
    spread:
        When False the fault stays confined to the root qubit — the
        "erasure, no spatial expansion" configuration of Figs. 6-7.
    """

    def __init__(self, root_qubit: int, distances, num_qubits: int,
                 gamma: float = DEFAULT_GAMMA,
                 n: float = DEFAULT_SPATIAL_N,
                 num_samples: int = DEFAULT_NUM_SAMPLES,
                 spread: bool = True) -> None:
        self.root_qubit = int(root_qubit)
        self.num_qubits = int(num_qubits)
        self.gamma = float(gamma)
        self.n = float(n)
        self.num_samples = int(num_samples)
        self.spread = bool(spread)
        dist = np.full(self.num_qubits, np.inf)
        if isinstance(distances, dict):
            for q, d in distances.items():
                if not 0 <= int(q) < self.num_qubits:
                    raise ValueError(
                        f"distance entry for qubit {q} outside the "
                        f"{self.num_qubits}-qubit register; pass the "
                        f"architecture's qubit count (transpile first)")
                dist[int(q)] = float(d)
        else:
            arr = np.asarray(distances, dtype=float)
            if arr.size > self.num_qubits:
                raise ValueError(
                    f"{arr.size} distances for a {self.num_qubits}-qubit "
                    f"register; pass the architecture's qubit count")
            dist[: arr.size] = arr
        if not np.isfinite(dist[self.root_qubit]) or dist[self.root_qubit] != 0.0:
            dist[self.root_qubit] = 0.0
        self.distances = dist

    @classmethod
    def from_positions(cls, root_qubit: int,
                       positions: Dict[int, tuple],
                       **kwargs) -> "RadiationEvent":
        """Build an event over a planar half-step embedding (see
        :meth:`repro.codes.base.StabilizerCode.qubit_positions`):
        device distance is Manhattan distance over two half-steps."""
        root = positions[root_qubit]
        distances = {q: (abs(p[0] - root[0]) + abs(p[1] - root[1])) / 2.0
                     for q, p in positions.items()}
        return cls(root_qubit, distances,
                   num_qubits=max(positions) + 1, **kwargs)

    @property
    def times(self) -> np.ndarray:
        return sample_times(self.num_samples)

    def root_probability(self, sample_index: int) -> float:
        """T(t_k): injection probability at the root for sample ``k``."""
        return float(temporal_decay(self.times[sample_index], self.gamma))

    def qubit_probabilities(self, sample_index: int) -> np.ndarray:
        """Per-qubit reset probability vector at time sample ``k`` (Eq. 7)."""
        t_prob = self.root_probability(sample_index)
        if not self.spread:
            probs = np.zeros(self.num_qubits)
            probs[self.root_qubit] = t_prob
            return probs
        with np.errstate(divide="ignore"):
            s = spatial_damping(self.distances, self.n)
        s[~np.isfinite(self.distances)] = 0.0
        return t_prob * s

    def channel(self, sample_index: int) -> "RadiationChannel":
        return RadiationChannel(self.qubit_probabilities(sample_index))

    def burst(self, strike_round: int, measures_per_round: int,
              scale: float = 1.0) -> "RadiationBurst":
        """A round-resolved channel: the strike lands at syndrome round
        ``strike_round`` and decays one temporal sample per round."""
        return RadiationBurst(self, strike_round, measures_per_round,
                              scale=scale)

    def __repr__(self) -> str:
        return (f"RadiationEvent(root={self.root_qubit}, gamma={self.gamma}, "
                f"n={self.n}, ns={self.num_samples}, spread={self.spread})")


class RadiationChannel(NoiseChannel):
    """Reset-after-gate channel with a per-qubit probability vector.

    Models the decoherence forced by quasiparticle poisoning: each gate
    acting on qubit ``q`` is followed by a non-unitary reset of ``q``
    with probability ``probs[q]`` (paper §III-B).  Fires after *every*
    operation type, since the underlying physical process is always
    active while the circuit runs.
    """

    def __init__(self, probs: Sequence[float]) -> None:
        self.probs = np.asarray(probs, dtype=float)
        if self.probs.ndim != 1:
            raise ValueError("probs must be a 1-D vector")
        if ((self.probs < 0) | (self.probs > 1)).any():
            raise ValueError("probabilities must lie in [0, 1]")

    def triggers_on(self, gate: Gate) -> bool:
        if gate.gate_type is GateType.BARRIER:
            return False
        return any(q < self.probs.size and self.probs[q] > 0.0
                   for q in gate.qubits)

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        B = sim.batch_size
        for q in gate.qubits:
            p = self.probs[q] if q < self.probs.size else 0.0
            if p <= 0.0:
                continue
            mask = rng.random(B) < p
            if mask.any():
                sim.reset(q, mask)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        for q in gate.qubits:
            p = self.probs[q] if q < self.probs.size else 0.0
            if p > 0.0 and rng.random() < p:
                sim.tableau.reset(q, rng)

    def __repr__(self) -> str:
        hot = np.nonzero(self.probs > 0)[0]
        return f"RadiationChannel({hot.size} affected qubits)"


class RadiationBurst(NoiseChannel):
    """A strike that *begins* mid-run and decays round by round.

    :class:`RadiationChannel` freezes the transient at one temporal
    sample for the whole circuit — the paper's per-sample sweep.  The
    burst instead models the streaming-detection scenario: the circuit
    runs clean until syndrome round ``strike_round``, then each later
    round ``r`` applies the per-qubit reset probabilities of temporal
    sample ``r - strike_round`` (Eq. 7), clamped to the last sample once
    the window is exhausted (``T(1) = e^-gamma``, negligible at the
    paper's ``gamma = 10``).

    The channel tracks its position in the circuit by counting
    measurement gates through the :meth:`observe` hook — a syndrome
    round ends with its block of ``measures_per_round`` ancilla
    measurements, so the count is robust to transpilation (routing
    preserves measurements) and needs no circuit annotations.
    :meth:`begin_run` rewinds the count, and every executor walk calls
    it, so one channel instance serves any number of runs.
    """

    def __init__(self, event: RadiationEvent, strike_round: int,
                 measures_per_round: int, scale: float = 1.0) -> None:
        if strike_round < 0:
            raise ValueError("strike_round must be non-negative")
        if measures_per_round < 1:
            raise ValueError("need at least one measurement per round")
        if not 0.0 <= scale <= 1.0:
            raise ValueError("scale must lie in [0, 1]")
        self.event = event
        self.strike_round = int(strike_round)
        self.measures_per_round = int(measures_per_round)
        #: Deposited-energy scale: multiplies every reset probability.
        #: 1.0 is the paper's full-intensity strike; smaller values
        #: model weaker impacts (the detection-ROC intensity axis).
        self.scale = float(scale)
        #: Row ``k``: per-qubit reset probabilities of temporal sample k.
        self.probs = self.scale * np.stack(
            [event.qubit_probabilities(k)
             for k in range(event.num_samples)])
        self._measures_seen = 0

    # -- position tracking ---------------------------------------------
    def begin_run(self) -> None:
        self._measures_seen = 0

    def observe(self, gate: Gate) -> None:
        if gate.gate_type is GateType.MEASURE:
            self._measures_seen += 1

    @property
    def current_round(self) -> int:
        """Syndrome rounds completed at the current circuit position."""
        return self._measures_seen // self.measures_per_round

    def current_probs(self) -> Optional[np.ndarray]:
        """Per-qubit reset probabilities now, or ``None`` pre-strike."""
        k = self.current_round - self.strike_round
        if k < 0:
            return None
        return self.probs[min(k, self.probs.shape[0] - 1)]

    # -- channel interface ---------------------------------------------
    def triggers_on(self, gate: Gate) -> bool:
        if gate.gate_type is GateType.BARRIER:
            return False
        probs = self.current_probs()
        if probs is None:
            return False
        return any(q < probs.size and probs[q] > 0.0 for q in gate.qubits)

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        probs = self.current_probs()
        if probs is None:
            return
        B = sim.batch_size
        for q in gate.qubits:
            p = probs[q] if q < probs.size else 0.0
            if p <= 0.0:
                continue
            mask = rng.random(B) < p
            if mask.any():
                sim.reset(q, mask)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        probs = self.current_probs()
        if probs is None:
            return
        for q in gate.qubits:
            p = probs[q] if q < probs.size else 0.0
            if p > 0.0 and rng.random() < p:
                sim.tableau.reset(q, rng)

    def __repr__(self) -> str:
        return (f"RadiationBurst(root={self.event.root_qubit}, "
                f"strike_round={self.strike_round}, "
                f"mpr={self.measures_per_round})")
