"""Noisy circuit execution.

Two batched backends share one entry point:

* ``"tableau"`` — walk the circuit gate by gate on the batched CHP
  tableau simulator, letting the noise model inject errors through the
  masked gate API.  Exact for anything a channel can express.
* ``"frames"`` — compile the circuit + noise into a bit-packed
  Pauli-frame program (:mod:`repro.frames`) and propagate 64 shots per
  word.  Orders of magnitude faster; requires every channel to have a
  frame lowering.
* ``"auto"`` (default) — frames when the lowering is *exact* (every
  channel lowers, and every fault-reset site hits a reference-Z-
  determinate qubit), tableau otherwise.  ``"frames"`` additionally
  accepts programs with twirled reset sites — the documented
  reset-to-mixed approximation — trading a small bias at high fault
  intensity for the full speedup.

The single-shot path exists for tests and debugging.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..circuits import Circuit, GateType
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator
from .base import NoiseModel


def run_batch_noisy(circuit: Circuit, noise: Optional[NoiseModel],
                    batch_size: int,
                    rng: Union[np.random.Generator, int, None] = None,
                    backend: str = "auto") -> np.ndarray:
    """Run ``batch_size`` noisy shots; returns records ``(B, cbits)``.

    Noise channels fire after each gate in model order.  A single RNG
    drives measurement randomness and noise sampling so a seed fully
    determines the run — *per backend*: the two backends draw different
    streams, so switching backends changes individual samples while
    preserving every distribution.  ``backend="frames"`` raises
    :class:`~repro.frames.FrameLoweringError` when a channel has no
    frame lowering; ``"auto"`` falls back to the tableau path instead.
    """
    # Imported lazily: repro.frames consumes this package's channel
    # types, so a module-level import would be circular.
    from ..frames import (
        FrameLoweringError,
        FrameSimulator,
        compile_frame_program,
        supports_noise,
        validate_backend,
    )

    validate_backend(backend)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if backend != "tableau" and supports_noise(noise):
        # Compile against a clone of the caller's stream: if "auto"
        # discards the program (twirled lowering), the tableau path
        # below still sees the untouched rng and reproduces a pinned
        # backend="tableau" run bit-for-bit.  When the frame path *is*
        # taken, the consumed state is copied back so repeated calls on
        # one Generator draw fresh samples, as the contract above says.
        frame_rng = np.random.Generator(type(rng.bit_generator)())
        frame_rng.bit_generator.state = rng.bit_generator.state
        try:
            program = compile_frame_program(circuit, noise, rng=frame_rng)
        except FrameLoweringError:
            if backend == "frames":
                raise
            program = None  # auto: anything uncompilable takes tableau
        if program is not None and (backend == "frames"
                                    or program.exact_noise):
            records = FrameSimulator(circuit.num_qubits, batch_size,
                                     rng=frame_rng).run(program)
            rng.bit_generator.state = frame_rng.bit_generator.state
            return records
    elif backend == "frames":
        raise FrameLoweringError(
            "noise model has channels without a frame lowering")
    sim = BatchTableauSimulator(circuit.num_qubits, batch_size, rng=rng)
    record = np.zeros((batch_size, max(circuit.num_cbits, 1)), dtype=np.uint8)
    if noise is not None:
        noise.begin_run()
    for gate in circuit:
        sim.apply(gate, record=record)
        if noise is not None and gate.gate_type is not GateType.BARRIER:
            noise.apply_batch(gate, sim, rng)
    return record


def run_single_noisy(circuit: Circuit, noise: Optional[NoiseModel],
                     rng: Union[np.random.Generator, int, None] = None
                     ) -> Dict[int, int]:
    """Run one noisy shot; returns {cbit: outcome}."""
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    sim = TableauSimulator(circuit.num_qubits, rng=rng)
    if noise is not None:
        noise.begin_run()
    for gate in circuit:
        sim.apply(gate)
        if noise is not None and gate.gate_type is not GateType.BARRIER:
            noise.apply_single(gate, sim, rng)
    return dict(sim.record)
