"""Noisy circuit execution.

Walks a circuit gate by gate, applying each ideal operation and then
letting the noise model inject errors.  The batch path is the campaign
workhorse; the single-shot path exists for tests and debugging.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..circuits import Circuit, GateType
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator
from .base import NoiseModel


def run_batch_noisy(circuit: Circuit, noise: Optional[NoiseModel],
                    batch_size: int,
                    rng: Union[np.random.Generator, int, None] = None
                    ) -> np.ndarray:
    """Run ``batch_size`` noisy shots; returns records ``(B, cbits)``.

    Noise channels fire after each gate in model order.  A single RNG
    drives both measurement randomness and noise sampling so a seed
    fully determines the run.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    sim = BatchTableauSimulator(circuit.num_qubits, batch_size, rng=rng)
    record = np.zeros((batch_size, max(circuit.num_cbits, 1)), dtype=np.uint8)
    for gate in circuit:
        sim.apply(gate, record=record)
        if noise is not None and gate.gate_type is not GateType.BARRIER:
            noise.apply_batch(gate, sim, rng)
    return record


def run_single_noisy(circuit: Circuit, noise: Optional[NoiseModel],
                     rng: Union[np.random.Generator, int, None] = None
                     ) -> Dict[int, int]:
    """Run one noisy shot; returns {cbit: outcome}."""
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    sim = TableauSimulator(circuit.num_qubits, rng=rng)
    for gate in circuit:
        sim.apply(gate)
        if noise is not None and gate.gate_type is not GateType.BARRIER:
            noise.apply_single(gate, sim, rng)
    return dict(sim.record)
