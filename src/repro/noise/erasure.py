"""Deterministic / uncorrelated erasure (reset) faults.

Figures 6 and 7 of the paper study "erasure" faults: one or more qubits
suffer the reset error at full intensity (the t=0 moment of a strike)
*without* spatial spreading.  :class:`ErasureChannel` expresses exactly
that: each listed qubit is reset after every gate acting on it with a
fixed probability (1.0 by default).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits import Gate, GateType
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator
from .base import NoiseChannel


class ErasureChannel(NoiseChannel):
    """Reset the given qubits after each gate with fixed probability.

    Parameters
    ----------
    qubits:
        Physical qubits hit by the erasure.
    probability:
        Reset probability per gate site (paper's Fig. 6/7 use 1.0, the
        fault magnitude at the moment of impact).
    """

    def __init__(self, qubits: Sequence[int], probability: float = 1.0) -> None:
        self.qubits = frozenset(int(q) for q in qubits)
        if not self.qubits:
            raise ValueError("erasure needs at least one qubit")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.probability = float(probability)

    def triggers_on(self, gate: Gate) -> bool:
        if gate.gate_type is GateType.BARRIER or self.probability <= 0.0:
            return False
        return any(q in self.qubits for q in gate.qubits)

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        for q in gate.qubits:
            if q not in self.qubits:
                continue
            if self.probability >= 1.0:
                sim.reset(q)
            else:
                mask = rng.random(sim.batch_size) < self.probability
                if mask.any():
                    sim.reset(q, mask)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        for q in gate.qubits:
            if q in self.qubits and rng.random() < self.probability:
                sim.tableau.reset(q, rng)

    def __repr__(self) -> str:
        return (f"ErasureChannel(qubits={sorted(self.qubits)}, "
                f"p={self.probability})")
