"""Depolarizing intrinsic-noise model (paper Eq. 4).

After every gate operation ``O`` each participating qubit independently
suffers an X, Y or Z error, each with probability ``p/3``:

    O|psi>  ->  E O|psi>,   E = sqrt(1-p) I + sqrt(p/3) (X + Y + Z)

Two-qubit gates receive the tensor product ``E (x) E`` of two
independent single-qubit channels, as in the paper.  This uncorrelated
Pauli model is the baseline surface codes are designed against.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import Gate, GateType, UNITARY_GATES
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator
from .base import NoiseChannel


class DepolarizingNoise(NoiseChannel):
    """Uniform depolarizing channel with physical error rate ``p``.

    Parameters
    ----------
    p:
        Total error probability per qubit per gate (split p/3 per Pauli).
    include_measurements, include_resets:
        Whether the channel also fires after measure / reset operations.
        The paper's model attaches errors to gate operations only, so
        both default to False.
    qubits:
        Optional restriction to a subset of qubits (e.g. to emulate a
        device with one noisy region); ``None`` means all.
    """

    def __init__(self, p: float, include_measurements: bool = False,
                 include_resets: bool = False,
                 qubits: Optional[Sequence[int]] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be a probability, got {p}")
        self.p = float(p)
        self.include_measurements = include_measurements
        self.include_resets = include_resets
        self.qubits = None if qubits is None else frozenset(qubits)

    def triggers_on(self, gate: Gate) -> bool:
        gt = gate.gate_type
        if gt in UNITARY_GATES and gt is not GateType.I:
            pass
        elif gt is GateType.MEASURE and self.include_measurements:
            pass
        elif gt is GateType.RESET and self.include_resets:
            pass
        else:
            return False
        if self.qubits is not None and not any(q in self.qubits
                                               for q in gate.qubits):
            return False
        return self.p > 0.0

    # ------------------------------------------------------------------
    def _active_qubits(self, gate: Gate):
        if self.qubits is None:
            return gate.qubits
        return tuple(q for q in gate.qubits if q in self.qubits)

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        B = sim.batch_size
        third = self.p / 3.0
        for q in self._active_qubits(gate):
            u = rng.random(B)
            mx = u < third
            my = (u >= third) & (u < 2 * third)
            mz = (u >= 2 * third) & (u < self.p)
            if mx.any():
                sim.x_gate(q, mx)
            if my.any():
                sim.y_gate(q, my)
            if mz.any():
                sim.z_gate(q, mz)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        third = self.p / 3.0
        for q in self._active_qubits(gate):
            u = rng.random()
            if u < third:
                sim.tableau.x_gate(q)
            elif u < 2 * third:
                sim.tableau.y_gate(q)
            elif u < self.p:
                sim.tableau.z_gate(q)

    def __repr__(self) -> str:
        return f"DepolarizingNoise(p={self.p!r})"
