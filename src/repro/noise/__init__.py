"""Noise and fault models (paper §III).

* :class:`DepolarizingNoise` — intrinsic Pauli noise, Eq. 4.
* :func:`temporal_decay` / :func:`spatial_damping` / :func:`transient_decay`
  — Eqs. 5-7.
* :class:`RadiationEvent` / :class:`RadiationChannel` — a particle
  strike on an architecture graph.
* :class:`RadiationBurst` — the same strike landing mid-run at a
  syndrome round and decaying round by round (detection scenarios).
* :class:`ErasureChannel` — non-spreading reset faults (Figs. 6-7).
* :func:`run_batch_noisy` / :func:`run_single_noisy` — noisy execution.
"""

from .base import NoiseChannel, NoiseModel
from .depolarizing import DepolarizingNoise
from .erasure import ErasureChannel
from .executor import run_batch_noisy, run_single_noisy
from .radiation import (
    DEFAULT_GAMMA,
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SPATIAL_N,
    RadiationBurst,
    RadiationChannel,
    RadiationEvent,
    sample_times,
    spatial_damping,
    stepped_temporal_decay,
    temporal_decay,
    transient_decay,
)

__all__ = [
    "NoiseChannel",
    "NoiseModel",
    "DepolarizingNoise",
    "ErasureChannel",
    "run_batch_noisy",
    "run_single_noisy",
    "RadiationBurst",
    "RadiationChannel",
    "RadiationEvent",
    "temporal_decay",
    "stepped_temporal_decay",
    "spatial_damping",
    "transient_decay",
    "sample_times",
    "DEFAULT_GAMMA",
    "DEFAULT_SPATIAL_N",
    "DEFAULT_NUM_SAMPLES",
]
