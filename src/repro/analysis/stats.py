"""Statistical helpers for campaign analysis."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..injection.results import wilson_interval

__all__ = ["wilson_interval", "wilson_halfwidth", "median_with_iqr",
           "bootstrap_median_ci", "binomial_stderr",
           "shots_for_rel_halfwidth"]


def wilson_halfwidth(errors: int, shots: int, z: float = 1.96) -> float:
    """Half-width of the Wilson interval — the campaign precision metric."""
    lo, hi = wilson_interval(errors, shots, z)
    return (hi - lo) / 2.0


def shots_for_rel_halfwidth(p: float, rel: float, z: float = 1.96) -> int:
    """Shots needed so a point at rate ``p`` reaches relative half-width
    ``rel`` (normal approximation) — for sizing campaign budgets and
    adaptive ceilings by hand; the stopping rule itself measures the
    real Wilson interval as data arrives.
    """
    if not 0.0 < p < 1.0 or rel <= 0.0:
        return 0
    return int(np.ceil(z * z * (1.0 - p) / (p * rel * rel)))


def median_with_iqr(values: Sequence[float]
                    ) -> Tuple[float, float, float]:
    """``(median, q25, q75)`` of a sample (paper reports medians)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (float("nan"),) * 3
    return (float(np.median(arr)),
            float(np.percentile(arr, 25)),
            float(np.percentile(arr, 75)))


def bootstrap_median_ci(values: Sequence[float], num_resamples: int = 2000,
                        alpha: float = 0.05,
                        rng: Optional[np.random.Generator] = None
                        ) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the median of a small sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    if rng is None:
        rng = np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(num_resamples, arr.size))
    meds = np.median(arr[idx], axis=1)
    return (float(np.percentile(meds, 100 * alpha / 2)),
            float(np.percentile(meds, 100 * (1 - alpha / 2))))


def binomial_stderr(errors: int, shots: int) -> float:
    """Standard error of a binomial proportion."""
    if shots <= 0:
        return float("nan")
    p = errors / shots
    return float(np.sqrt(p * (1 - p) / shots))
