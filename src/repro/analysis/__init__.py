"""Statistics, landscape assembly and report rendering."""

from .landscape import Landscape
from .report import ascii_table, percent, to_csv
from .stats import (
    binomial_stderr,
    bootstrap_median_ci,
    median_with_iqr,
    wilson_interval,
)

__all__ = [
    "Landscape",
    "ascii_table",
    "to_csv",
    "percent",
    "wilson_interval",
    "median_with_iqr",
    "bootstrap_median_ci",
    "binomial_stderr",
]
