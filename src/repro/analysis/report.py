"""Plain-text report rendering (ASCII tables, CSV) for experiment output.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence


def ascii_table(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: str = "") -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4f}"
        return str(v)

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(columns)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(" | ".join(row[i].ljust(widths[i])
                                for i in range(len(columns)))
                     for row in cells)
    out = [header, sep, body]
    if title:
        out.insert(0, title)
    return "\n".join(out)


def to_csv(rows: Sequence[Dict[str, object]],
           columns: Optional[Sequence[str]] = None) -> str:
    """Serialize dict rows to CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(columns),
                            extrasaction="ignore")
    writer.writeheader()
    for r in rows:
        writer.writerow(r)
    return buf.getvalue()


def percent(x: float) -> str:
    """Format a rate the way the paper quotes it (e.g. ``21.3%``)."""
    return f"{100.0 * x:.1f}%"
