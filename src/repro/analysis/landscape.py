"""Assembly of 2-D logical-error landscapes (Fig. 5 style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class Landscape:
    """A logical-error surface over (intrinsic p, fault time sample).

    ``rates[i, j]`` is the logical error rate at ``p_values[i]`` and
    temporal sample ``time_indices[j]`` (``root_probs[j]`` gives the
    matching root injection probability, the paper's second axis).
    """

    code_label: str
    p_values: np.ndarray
    time_indices: np.ndarray
    root_probs: np.ndarray
    rates: np.ndarray

    @property
    def peak(self) -> float:
        return float(np.nanmax(self.rates))

    @property
    def peak_coords(self) -> Tuple[float, float]:
        i, j = np.unravel_index(int(np.nanargmax(self.rates)),
                                self.rates.shape)
        return (float(self.p_values[i]), float(self.root_probs[j]))

    def at_strike(self) -> np.ndarray:
        """LER column at the moment of impact (t = 0, 100% root prob)."""
        return self.rates[:, 0]

    def noise_floor_row(self) -> np.ndarray:
        """LER row at the lowest intrinsic noise (radiation-only)."""
        return self.rates[int(np.argmin(self.p_values)), :]

    def monotone_violations(self, axis: int, tol: float = 0.0) -> int:
        """Count strict monotonicity violations along an axis.

        Used to check the paper's Observation II (no destructive
        interference: the surface should not dip as either noise source
        intensifies) up to statistical tolerance ``tol``.
        """
        diffs = np.diff(self.rates, axis=axis)
        if axis == 1:
            # Time axis: root probability *decreases* with sample index,
            # so rates should decrease too; violations are increases.
            return int(np.sum(diffs > tol))
        return int(np.sum(diffs < -tol))

    def to_rows(self) -> List[Dict[str, object]]:
        rows = []
        for i, p in enumerate(self.p_values):
            for j, t in enumerate(self.time_indices):
                rows.append({
                    "code": self.code_label,
                    "p": float(p),
                    "time_index": int(t),
                    "root_prob": float(self.root_probs[j]),
                    "ler": float(self.rates[i, j]),
                })
        return rows

    def ascii_heatmap(self, width: int = 5) -> str:
        """Text rendering of the surface (Fig. 5 in a terminal).

        Rows are intrinsic-noise levels (low at the top), columns the
        fault's temporal samples (strike on the left); cells show LER in
        percent with a shade character for quick scanning.
        """
        shades = " .:-=+*#%@"
        lines = [f"{self.code_label}: logical error (%) — rows p, "
                 f"cols fault time"]
        header = "p \\ t    " + "".join(f"{int(t):>{width + 3}d}"
                                        for t in self.time_indices)
        lines.append(header)
        for i, p in enumerate(self.p_values):
            cells = []
            for j in range(len(self.time_indices)):
                r = self.rates[i, j]
                if np.isnan(r):
                    cells.append(" " * (width + 3))
                    continue
                shade = shades[min(int(r * len(shades)), len(shades) - 1)]
                cells.append(f" {shade}{100 * r:{width}.1f}" + " ")
            lines.append(f"{p:8.0e}" + "".join(cells))
        return "\n".join(lines)
