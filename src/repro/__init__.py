"""repro — reproduction of "On the Efficacy of Surface Codes in
Compensating for Radiation Events in Superconducting Devices" (SC 2024).

The package implements, from scratch, the full stack the paper's study
rests on:

* a Clifford circuit IR and stabilizer/statevector simulators
  (:mod:`repro.circuits`, :mod:`repro.stabilizer`, :mod:`repro.statevector`);
* the intrinsic depolarizing noise model and the radiation-induced
  transient fault model, Eqs. 4-7 (:mod:`repro.noise`);
* architecture graphs and a transpiler (:mod:`repro.arch`,
  :mod:`repro.transpile`);
* the repetition and XXZZ surface codes with the paper's
  memory-experiment circuits (:mod:`repro.codes`);
* MWPM and union-find decoders (:mod:`repro.decoders`);
* the fault-injection campaign toolkit (:mod:`repro.injection`);
* per-figure experiment generators (:mod:`repro.experiments`).

Quickstart::

    from repro import (RepetitionCode, build_memory_experiment,
                       decoder_for, DepolarizingNoise, NoiseModel,
                       run_batch_noisy)

    exp = build_memory_experiment(RepetitionCode(5))
    records = run_batch_noisy(exp.circuit,
                              NoiseModel([DepolarizingNoise(0.01)]),
                              batch_size=2000, rng=7)
    result = decoder_for(exp).decode_batch(exp, records)
    print(result.logical_error_rate)
"""

from .arch import ArchitectureGraph, by_name as architecture_by_name
from .circuits import Circuit, Gate, GateType
from .codes import (
    MemoryExperiment,
    QubitRole,
    RepetitionCode,
    StabilizerCode,
    XXZZCode,
    build_memory_experiment,
)
from .decoders import (
    DecodeResult,
    Decoder,
    DetectorGraph,
    MWPMDecoder,
    UnionFindDecoder,
    decoder_for,
)
from .injection import (
    ArchSpec,
    Campaign,
    CodeSpec,
    FaultSpec,
    InjectionResult,
    InjectionTask,
    ResultSet,
)
from .noise import (
    DepolarizingNoise,
    ErasureChannel,
    NoiseChannel,
    NoiseModel,
    RadiationChannel,
    RadiationEvent,
    run_batch_noisy,
    run_single_noisy,
    spatial_damping,
    temporal_decay,
    transient_decay,
)
from .stabilizer import (
    BatchTableauSimulator,
    PauliString,
    Tableau,
    TableauSimulator,
)
from .statevector import StatevectorSimulator
from .transpile import RoutedCircuit, transpile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # circuits
    "Circuit", "Gate", "GateType",
    # simulators
    "PauliString", "Tableau", "TableauSimulator", "BatchTableauSimulator",
    "StatevectorSimulator",
    # noise
    "NoiseChannel", "NoiseModel", "DepolarizingNoise", "ErasureChannel",
    "RadiationChannel", "RadiationEvent", "temporal_decay",
    "spatial_damping", "transient_decay", "run_batch_noisy",
    "run_single_noisy",
    # arch / transpile
    "ArchitectureGraph", "architecture_by_name", "transpile",
    "RoutedCircuit",
    # codes
    "StabilizerCode", "RepetitionCode", "XXZZCode", "QubitRole",
    "MemoryExperiment", "build_memory_experiment",
    # decoders
    "Decoder", "DecodeResult", "DetectorGraph", "MWPMDecoder",
    "UnionFindDecoder", "decoder_for",
    # injection
    "Campaign", "CodeSpec", "ArchSpec", "FaultSpec", "InjectionTask",
    "InjectionResult", "ResultSet",
]
