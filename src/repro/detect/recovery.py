"""Burst-adaptive decoding: act on a detection before decoding.

Three :class:`RecoveryPolicy` settings, threaded through
``InjectionTask.recovery``, sweep specs and the CLI:

* ``static`` — decode every shot with the unit-weight graph (the
  pre-detection pipeline; the control arm of every comparison);
* ``reweight`` — model-inverted recovery: from the detection stream,
  estimate the strike's epicenter position (excess-weighted ancilla
  centroid), onset round and amplitude (total-excess matching), then
  assign every space/time edge its log-likelihood weight under the
  paper's transient model ``F(t, d) = T(t) S(d)`` (Eqs. 5-7).  Edges in
  the blast core saturate to near-free, erasure-style weights, the
  skirt is graded, and everything outside keeps weight 1.  MWPM
  consumes the weights through its shortest-path tables; union-find
  reacts only to fully erased (near-certain) edges, which it pre-grows
  as an erasure.
* ``discard_window`` — distrust the burst window entirely: flagged
  shots' detectors inside the window are cleared and the remaining
  rounds decode statically (the damage then surfaces as defects at the
  window boundary).

A batch-level binary erasure of the whole estimated blast region was
tried first and *lost* to static decoding — only a fraction of the
region's qubits actually reset in any one shot, so discarding all of
its syndrome information throws away more than the strike does.  The
graded model inversion keeps that information and recovers most of the
oracle (true-probability) reweighting gain.

Only flagged shots ever see a modified decode, so a false-negative
detection degrades gracefully to ``static`` behaviour, and clean shots
are bit-identical across policies.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..codes.base import MemoryExperiment
from ..decoders.base import Decoder, DecodeResult, prepare_decode_inputs
from ..decoders.batch import SyndromeBatch
from ..decoders.detector_graph import BOUNDARY, ERASED_WEIGHT, DetectorGraph
from ..noise.radiation import (
    DEFAULT_GAMMA,
    sample_times,
    spatial_damping,
    temporal_decay,
)
from .cluster import StrikeCluster, _combined_supports, estimate_cluster
from .detector import DetectionReport, DetectorConfig, StreamingDetector
from .stream import PackedSyndromes, pack_shot_mask


class RecoveryPolicy(enum.Enum):
    """What a flagged burst window does to decoding."""

    STATIC = "static"
    REWEIGHT = "reweight"
    DISCARD_WINDOW = "discard_window"

    @classmethod
    def coerce(cls, value: Union["RecoveryPolicy", str]) -> "RecoveryPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise ValueError(
                f"unknown recovery policy {value!r}; expected one of "
                f"{RECOVERY_POLICIES}") from None


#: Recognised policy names (spec/CLI validation).
RECOVERY_POLICIES = tuple(p.value for p in RecoveryPolicy)

#: Per-edge flip probability above which an edge counts as *erased*
#: (near-certain reset): it drops to ERASED_WEIGHT, which union-find
#: pre-grows and MWPM treats as free.
SATURATED_EDGE_PROB = 0.49

#: Weight floor for graded (non-saturated) blast edges.
GRADED_WEIGHT_FLOOR = 0.02


@dataclass(frozen=True)
class BurstEstimate:
    """Strike parameters inferred from the detection stream alone."""

    position: Tuple[float, float]   # half-step coords (qubit_positions)
    onset_round: int
    amplitude: float                # peak reset probability at d = 0
    window: Tuple[int, int]


def reweight_graph(graph: DetectorGraph, cluster: StrikeCluster
                   ) -> DetectorGraph:
    """Binary erasure of a blast cluster (geometry-free fallback).

    Space edges of blast-cluster data qubits and time edges of blast
    plaquettes are erased for every round intersecting the burst
    window.  Used when a code has no planar embedding for the model
    inversion; on embedded codes the graded weights decode strictly
    better (module docstring).
    """
    start, end = cluster.window
    qubits = frozenset(cluster.qubits)
    plaqs = frozenset(cluster.primary_plaquettes)
    P = graph.num_plaquettes

    def weight(e) -> float:
        u = e.u if e.u != BOUNDARY else e.v
        r, p = divmod(u, P)
        if e.qubit is not None:          # space edge
            if e.qubit in qubits and start <= r < end:
                return ERASED_WEIGHT
        else:                            # time edge (r -> r+1, same p)
            if p in plaqs and r + 1 > start and r < end:
                return ERASED_WEIGHT
        return e.weight

    return graph.reweighted(weight)


class _ExperimentGeometry:
    """Per-experiment tables the model inversion needs, built once.

    * qubit positions (half-step embedding) — ``None`` disables the
      model path;
    * combined (primary + dual) plaquette supports and ancilla ids,
      aligned with the packed stream's plaquette ordering;
    * per-round gate multiplicities, derived from the *code structure*
      (plaquette memberships), so they live in code space and stay
      valid when the campaign transpiles the circuit onto an
      architecture (detection and decoding only ever see cbits; this
      table must not depend on physical qubit numbering either).
    """

    def __init__(self, experiment: MemoryExperiment, basis: str) -> None:
        code = experiment.code
        self.positions = code.qubit_positions()
        primary_anc = (code.z_ancillas if basis == "Z" else code.x_ancillas)
        dual_anc = (code.x_ancillas if basis == "Z" else code.z_ancillas)
        self.ancillas: List[int] = list(primary_anc) + list(dual_anc)
        self.supports = _combined_supports(
            code, basis, len(primary_anc), len(self.ancillas))
        # Gates touching each qubit in one syndrome round: a data qubit
        # sees one CX per plaquette membership; an ancilla its support's
        # CX legs plus H/measure/reset bookkeeping.
        gates: Dict[int, int] = {}
        for support in list(code.z_plaquettes) + list(code.x_plaquettes):
            for q in support:
                gates[q] = gates.get(q, 0) + 1
        for anc, support in zip(code.z_ancillas, code.z_plaquettes):
            gates[anc] = len(support) + 2
        for anc, support in zip(code.x_ancillas, code.x_plaquettes):
            gates[anc] = len(support) + 4
        self.gates = gates
        #: Paper-default temporal step profile, one sample per round.
        self.t_profile = temporal_decay(sample_times(), DEFAULT_GAMMA)

    def distance_from(self, pos: Tuple[float, float], qubit: int) -> float:
        x, y = self.positions[qubit]
        return (abs(x - pos[0]) + abs(y - pos[1])) / 2.0

    def flip_prob(self, est: BurstEstimate, qubit: int, r: int) -> float:
        """Bit-flip probability of ``qubit`` during round ``r`` under
        the estimated strike: per-gate reset chance ``A S(d) T(k)``,
        each reset a half flip, compounded over the round's gates."""
        k = r - est.onset_round
        if k < 0 or qubit not in self.positions:
            return 0.0
        t = self.t_profile[min(k, len(self.t_profile) - 1)]
        s = float(spatial_damping(self.distance_from(est.position, qubit)))
        p_reset = min(1.0, est.amplitude * s) * t
        return 1.0 - (1.0 - p_reset / 2.0) ** max(self.gates.get(qubit, 4), 1)


def estimate_burst(packed: PackedSyndromes, report: DetectionReport,
                   geometry: _ExperimentGeometry,
                   cluster: StrikeCluster) -> Optional[BurstEstimate]:
    """Invert the detection stream into strike-model parameters.

    Epicenter: excess-weighted centroid of the ancilla positions over
    the burst window.  Onset: window start.  Amplitude: bisected so the
    model's predicted total excess event count over the window matches
    the measured one.
    """
    if geometry.positions is None:
        return None
    flagged = report.flagged
    n_flagged = int(np.count_nonzero(flagged))
    if n_flagged == 0:
        return None
    window = cluster.window
    mask = pack_shot_mask(flagged)
    counts = packed.plaquette_event_counts(
        shot_mask=mask, rounds=slice(*window))       # (win, P)
    rates = counts / n_flagged
    base = report.baseline / max(1, packed.num_plaquettes)
    excess = np.maximum(rates - base, 0.0)
    per_plaq = excess.sum(axis=0)
    total = float(per_plaq.sum())
    if total <= 0.0:
        return None
    anc_pos = np.array([geometry.positions[a] for a in geometry.ancillas],
                       dtype=float)
    centroid = tuple((per_plaq[:, None] * anc_pos).sum(axis=0) / total)

    probe = BurstEstimate(position=centroid, onset_round=window[0],
                          amplitude=1.0, window=window)

    # Amplitude by matching total excess on the *skirt* only: detection
    # event rates saturate near 0.5 at the blast core (a plaquette
    # cannot flag more than once per round), so the unsaturated outer
    # plaquettes carry the usable amplitude information.
    skirt = np.nonzero(rates.max(axis=0) < 0.35)[0]
    if skirt.size == 0 or excess[:, skirt].sum() <= 0.0:
        skirt = np.arange(packed.num_plaquettes)
    skirt_total = float(excess[:, skirt].sum())

    def predicted_total(amplitude: float) -> float:
        est = dataclasses.replace(probe, amplitude=amplitude)
        out = 0.0
        for r in range(*window):
            for p in skirt:
                rate = sum(geometry.flip_prob(est, q, r)
                           for q in geometry.supports[p])
                anc = geometry.ancillas[p]
                rate += geometry.flip_prob(est, anc, r)
                if r > 0:
                    rate += geometry.flip_prob(est, anc, r - 1)
                out += min(0.6, rate)
        return out

    lo, hi = 0.0, 1.0
    if predicted_total(1.0) <= skirt_total:
        lo = 1.0
    else:
        for _ in range(20):
            mid = 0.5 * (lo + hi)
            if predicted_total(mid) < skirt_total:
                lo = mid
            else:
                hi = mid
    amplitude = 0.5 * (lo + hi)
    if amplitude <= 0.0:
        return None
    return dataclasses.replace(probe, amplitude=amplitude)


def model_reweighted_graph(graph: DetectorGraph, est: BurstEstimate,
                           geometry: _ExperimentGeometry,
                           intrinsic_edge_prob: float = 0.01
                           ) -> DetectorGraph:
    """Log-likelihood edge weights under an estimated strike.

    ``w(e) = ln((1-p_e)/p_e) / ln((1-p0)/p0)`` with ``p0`` the
    intrinsic edge probability, clamped to ``[GRADED_WEIGHT_FLOOR, 1]``
    — so an edge at the intrinsic rate keeps the static unit weight and
    a near-certain (saturated) edge becomes an erasure.
    """
    P = graph.num_plaquettes
    p0 = intrinsic_edge_prob
    norm = math.log((1.0 - p0) / p0)
    primary_anc = geometry.ancillas

    def weight(e) -> float:
        u = e.u if e.u != BOUNDARY else e.v
        r, p = divmod(u, P)
        if e.qubit is not None:
            pe = geometry.flip_prob(est, e.qubit, r)
        else:
            pe = geometry.flip_prob(est, primary_anc[p], r)
        if pe >= SATURATED_EDGE_PROB:
            return ERASED_WEIGHT
        if pe <= p0:
            return e.weight
        return max(GRADED_WEIGHT_FLOOR,
                   math.log((1.0 - pe) / pe) / norm)

    return graph.reweighted(weight)


@dataclass
class BurstAdaptiveDecoder:
    """Detection-aware wrapper around a base syndrome decoder.

    Satisfies the :class:`~repro.decoders.base.Decoder` batch protocol,
    so the campaign engine swaps it in transparently.  Per batch it

    1. builds the packed detection stream — straight from the frame
       backend's record words when offered, else by packing the uint8
       records once,
    2. runs the streaming CUSUM detector,
    3. applies the recovery policy to the flagged shots,

    caching reweighted graphs by quantised estimate signature, since a
    deterministic strike reproduces the same estimate block after
    block.
    """

    base: Decoder
    policy: RecoveryPolicy = RecoveryPolicy.REWEIGHT
    config: DetectorConfig = field(default_factory=DetectorConfig)
    cluster_threshold: float = 0.25
    intrinsic_edge_prob: float = 0.01
    #: Diagnostics from the most recent batch.
    last_report: Optional[DetectionReport] = field(default=None, repr=False)
    last_cluster: Optional[StrikeCluster] = field(default=None, repr=False)
    last_estimate: Optional[BurstEstimate] = field(default=None, repr=False)

    #: The wrapper forwards packed batches to the base decoder on the
    #: (common) strike-free path, so it is packed-native whenever the
    #: base is; the campaign engine reads this to skip the unpack.
    packed_native = True

    def __post_init__(self) -> None:
        self.policy = RecoveryPolicy.coerce(self.policy)
        self._graph_cache: Dict[Tuple, DetectorGraph] = {}
        self._estimate_cache: Dict[Tuple, Optional[BurstEstimate]] = {}
        self._adapted_cache: Dict[int, Decoder] = {}
        self._geometry: Optional[_ExperimentGeometry] = None

    @property
    def name(self) -> str:
        return f"{self.base.name}+{self.policy.value}"

    @property
    def graph(self) -> DetectorGraph:
        return self.base.graph

    # ------------------------------------------------------------------
    def decode_batch(self, experiment: MemoryExperiment, batch,
                     record_words: Optional[np.ndarray] = None
                     ) -> DecodeResult:
        batch = SyndromeBatch.coerce(batch, record_words)
        graph = self.base.graph
        if batch.packed:
            packed = PackedSyndromes.from_record_words(
                batch.record_words, experiment, batch.batch_size,
                basis=graph.basis)
        else:
            packed = PackedSyndromes.from_records(batch.records, experiment,
                                                  basis=graph.basis)
        with obs.span("detect"):
            report = StreamingDetector(self.config).detect(packed)
        self.last_report = report
        self.last_cluster = None
        self.last_estimate = None
        flagged = report.flagged
        if self.policy is RecoveryPolicy.STATIC or not flagged.any():
            # Strike-free (or policy-off) batches take the base
            # decoder's own pipeline — packed-native when the batch is.
            return self.base.decode_batch(experiment, batch)

        det, raw = prepare_decode_inputs(experiment, batch.records, graph,
                                         self.base.use_final_data)
        if self.policy is RecoveryPolicy.DISCARD_WINDOW:
            window = report.active_rounds
            if window is None:
                window = (int(report.flag_round[flagged].min()),
                          packed.rounds)
            det = det.copy()
            det[flagged, window[0]:window[1], :] = 0
            return self.base._decode_prepared(experiment, det, raw)

        # REWEIGHT
        cluster = estimate_cluster(packed, report, experiment.code,
                                   rel_threshold=self.cluster_threshold)
        if cluster is None:
            return self.base._decode_prepared(experiment, det, raw)
        self.last_cluster = cluster
        reweighted = self._reweighted(packed, report, cluster, experiment)
        adapted = self._adapted(reweighted)

        corrections = np.zeros(det.shape[0], dtype=np.uint8)
        clean = ~flagged
        if clean.any():
            res = self.base._decode_prepared(experiment, det[clean],
                                             raw[clean])
            corrections[clean] = res.corrections
        res = adapted._decode_prepared(experiment, det[flagged],
                                       raw[flagged])
        corrections[flagged] = res.corrections
        return DecodeResult(decoded=raw ^ corrections,
                            expected=experiment.expected_logical,
                            corrections=corrections)

    def _adapted(self, reweighted: DetectorGraph) -> Decoder:
        """The base decoder rebound to a reweighted graph, cached per
        graph object so its syndrome-dedup cache (valid only against
        that graph) persists across the blocks of a deterministic
        strike."""
        adapted = self._adapted_cache.get(id(reweighted))
        if adapted is None:
            adapted = dataclasses.replace(self.base, graph=reweighted)
            self._adapted_cache[id(reweighted)] = adapted
        return adapted

    # ------------------------------------------------------------------
    def _reweighted(self, packed: PackedSyndromes, report: DetectionReport,
                    cluster: StrikeCluster, experiment: MemoryExperiment
                    ) -> DetectorGraph:
        """Model-inverted graded graph, or the binary-erasure fallback
        for codes without a planar embedding; cached on the quantised
        estimate so repeat blocks of one task reuse the path tables."""
        if self._geometry is None:
            self._geometry = _ExperimentGeometry(experiment,
                                                 self.base.graph.basis)
        # A deterministic strike reproduces the same cluster block after
        # block; key the (bisection-heavy) model inversion on it so only
        # the first block of a campaign task pays for the estimation.
        cluster_key = (cluster.window, cluster.plaquettes,
                       cluster.epicenter)
        if cluster_key in self._estimate_cache:
            est = self._estimate_cache[cluster_key]
        else:
            est = estimate_burst(packed, report, self._geometry, cluster)
            self._estimate_cache[cluster_key] = est
        self.last_estimate = est
        if est is None:
            key = ("erase", cluster.window, cluster.plaquettes,
                   cluster.qubits)
            graph = self._graph_cache.get(key)
            if graph is None:
                graph = reweight_graph(self.base.graph, cluster)
                self._graph_cache[key] = graph
            return graph
        key = ("model", round(est.position[0] * 2) / 2,
               round(est.position[1] * 2) / 2, est.onset_round,
               round(est.amplitude, 2))
        graph = self._graph_cache.get(key)
        if graph is None:
            graph = model_reweighted_graph(
                self.base.graph, est, self._geometry,
                intrinsic_edge_prob=self.intrinsic_edge_prob)
            self._graph_cache[key] = graph
        return graph
