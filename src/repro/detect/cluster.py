"""Spatial localisation of a detected strike.

Given a flagged batch window, the per-plaquette event totals (a packed
popcount) form an excess-rate map over the code's plaquette graph.  The
strike epicenter is the hottest plaquette; the blast cluster is the
connected region (plaquettes sharing a data qubit) whose excess stays
above a fraction of the peak; its radius is the plaquette-graph
eccentricity from the epicenter.  The cluster's data-qubit support is
what the recovery policies feed back into the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codes.base import StabilizerCode
from .detector import DetectionReport
from .stream import PackedSyndromes, pack_shot_mask


@dataclass(frozen=True)
class StrikeCluster:
    """Estimated extent of one radiation strike.

    ``window`` is the burst's round span ``[start, end)``;
    ``plaquettes`` the in-cluster plaquette indices in the *stream's*
    combined ordering (primary basis first, then dual);
    ``primary_plaquettes`` the subset living in the decode basis (what
    time-edge reweighting consumes); ``qubits`` the union of all
    in-cluster plaquette supports; ``radius`` the maximal
    plaquette-graph distance from the epicenter inside the cluster.
    """

    epicenter: int
    plaquettes: Tuple[int, ...]
    primary_plaquettes: Tuple[int, ...]
    qubits: Tuple[int, ...]
    radius: int
    window: Tuple[int, int]


def _combined_supports(code: StabilizerCode, basis: str,
                       num_primary: int, total: int) -> List[Tuple[int, ...]]:
    """Plaquette data supports in the stream's combined ordering."""
    primary = (code.z_plaquettes if basis == "Z" else code.x_plaquettes)
    supports = list(primary[:num_primary])
    if total > num_primary:
        dual = (code.x_plaquettes if basis == "Z" else code.z_plaquettes)
        supports.extend(dual)
    return supports


def plaquette_adjacency(supports: Sequence[Tuple[int, ...]]
                        ) -> List[List[int]]:
    """Plaquette graph: edges join plaquettes sharing a data qubit.

    Works on any support list — one basis or the combined Z+X ordering
    (where Z and X plaquettes overlapping on data connect the two
    families, keeping a blast region one component).
    """
    membership: Dict[int, List[int]] = {}
    for pi, support in enumerate(supports):
        for q in support:
            membership.setdefault(q, []).append(pi)
    adj: List[set] = [set() for _ in supports]
    for plist in membership.values():
        for a in plist:
            for b in plist:
                if a != b:
                    adj[a].add(b)
    return [sorted(s) for s in adj]


def estimate_cluster(packed: PackedSyndromes, report: DetectionReport,
                     code: StabilizerCode,
                     rel_threshold: float = 0.25) -> Optional[StrikeCluster]:
    """Localise the strike behind a detection report, or ``None``.

    ``rel_threshold`` — a plaquette joins the cluster while its excess
    event count stays above this fraction of the peak excess.
    """
    if not report.flagged.any() or packed.num_plaquettes == 0:
        return None
    window = report.active_rounds
    if window is None:
        start = int(report.flag_round[report.flagged].min())
        window = (start, packed.rounds)
    mask = pack_shot_mask(report.flagged)
    counts = packed.plaquette_event_counts(
        shot_mask=mask, rounds=slice(*window)).sum(axis=0)  # (P,)
    background = float(np.median(counts))
    excess = counts - background
    peak = float(excess.max())
    if peak <= 0:
        return None
    epicenter = int(np.argmax(excess))
    thr = rel_threshold * peak
    hot = excess >= thr
    # Connected component of hot plaquettes containing the epicenter.
    supports = _combined_supports(code, packed.basis, packed.num_primary,
                                  packed.num_plaquettes)
    adj = plaquette_adjacency(supports)
    depth = {epicenter: 0}
    queue = [epicenter]
    head = 0
    while head < len(queue):
        p = queue[head]
        head += 1
        for nb in adj[p]:
            if nb not in depth and hot[nb]:
                depth[nb] = depth[p] + 1
                queue.append(nb)
    plaquettes = tuple(sorted(depth))
    qubits = sorted({q for p in plaquettes for q in supports[p]})
    return StrikeCluster(
        epicenter=epicenter, plaquettes=plaquettes,
        primary_plaquettes=tuple(p for p in plaquettes
                                 if p < packed.num_primary),
        qubits=tuple(qubits), radius=max(depth.values()), window=window)
