"""Streaming radiation-event detection and burst-adaptive decoding.

The detect → adapt → recover axis on top of the injection engine:

* :class:`PackedSyndromes` — frame-native (bit-packed) detection-event
  streams; popcount/bit-sliced reductions, no unpack to uint8.
* :class:`StreamingDetector` / :class:`DetectorConfig` /
  :class:`DetectionReport` — per-shot CUSUM change-point detection of
  strike bursts, plus :func:`roc_curve` / :func:`roc_auc`.
* :func:`estimate_cluster` / :class:`StrikeCluster` — strike epicenter
  and blast-radius localisation on the plaquette graph.
* :class:`RecoveryPolicy` / :class:`BurstAdaptiveDecoder` /
  :func:`reweight_graph` — act on detections before decoding
  (erasure-style reweighting or window discard), threaded through
  ``InjectionTask.recovery``, sweep specs, the campaign engine and the
  ``repro detect`` / ``repro campaign --recovery`` CLI.
"""

from .cluster import StrikeCluster, estimate_cluster, plaquette_adjacency
from .detector import (
    DetectionReport,
    DetectorConfig,
    StreamingDetector,
    roc_auc,
    roc_curve,
)
from .recovery import (
    RECOVERY_POLICIES,
    BurstAdaptiveDecoder,
    BurstEstimate,
    RecoveryPolicy,
    estimate_burst,
    model_reweighted_graph,
    reweight_graph,
)
from .stream import PackedSyndromes, pack_shot_mask

__all__ = [
    "BurstAdaptiveDecoder",
    "BurstEstimate",
    "DetectionReport",
    "DetectorConfig",
    "PackedSyndromes",
    "RECOVERY_POLICIES",
    "RecoveryPolicy",
    "StreamingDetector",
    "StrikeCluster",
    "estimate_burst",
    "estimate_cluster",
    "model_reweighted_graph",
    "pack_shot_mask",
    "plaquette_adjacency",
    "reweight_graph",
    "roc_auc",
    "roc_curve",
]
