"""Packed syndrome streams: frame-native detector input.

The frame backend's natural output is bit-packed record words — 64
shots per ``uint64`` (:meth:`repro.frames.simulator.FrameSimulator.
run_packed`).  Historically every consumer forced an unpack to per-shot
uint8 records; this module keeps the stream packed end to end for the
detection path:

* syndrome extraction is word *indexing* (one row per round/plaquette
  cbit),
* detector differencing is whole-word XOR of consecutive rounds,
* per-plaquette event totals are word popcounts,
* per-shot event counts are bit-sliced vertical-counter adds
  (:func:`repro.frames.packing.column_counts`).

A :class:`PackedSyndromes` built from the tableau backend's uint8
records packs once at construction and shares the same downstream
kernels, so the streaming detector is backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..codes.base import MemoryExperiment
from ..frames.packing import (
    column_counts,
    pack_bool,
    pack_bool_rows,
    popcount_words,
    words_for,
)


@dataclass
class PackedSyndromes:
    """Detection-event words for one batch of a memory experiment.

    Attributes
    ----------
    basis:
        *Primary* plaquette basis (the decode basis): its plaquettes
        occupy ``det[:, :num_primary]``.  When built with
        ``include_dual`` (the default) the dual basis's plaquettes
        follow — a strike's resets scatter both X and Z errors, so
        watching both syndrome families roughly doubles the detection
        signal even though only the primary family feeds the decoder.
    batch_size:
        Shots ``B`` (bit index within the word rows).
    det:
        ``(rounds, P, words_for(B))`` uint64 — detector values
        (consecutive-round syndrome XOR; round 0 against the prepared
        eigenstate for the memory basis, suppressed for its dual)
        bit-packed across shots.
    num_primary:
        Plaquette count of the primary basis (prefix of axis 1).
    """

    basis: str
    batch_size: int
    det: np.ndarray
    num_primary: int

    @property
    def rounds(self) -> int:
        return int(self.det.shape[0])

    @property
    def num_plaquettes(self) -> int:
        return int(self.det.shape[1])

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _cbit_table(experiment: MemoryExperiment, basis: str) -> np.ndarray:
        table = (experiment.z_syndrome_cbits if basis == "Z"
                 else experiment.x_syndrome_cbits)
        if not table or not table[0]:
            return np.zeros((experiment.rounds, 0), dtype=np.intp)
        return np.asarray(table, dtype=np.intp)

    @classmethod
    def _assemble(cls, syn_of, experiment: MemoryExperiment, batch_size: int,
                  basis: str, include_dual: bool) -> "PackedSyndromes":
        """Shared constructor body: ``syn_of(idx_table) -> (R, P, W)``."""
        basis = basis or experiment.basis
        bases = [basis] + ([{"Z": "X", "X": "Z"}[basis]]
                           if include_dual else [])
        parts = []
        num_primary = 0
        for i, b in enumerate(bases):
            syn = syn_of(cls._cbit_table(experiment, b))
            det = syn.copy()
            det[1:] ^= syn[:-1]
            if b != experiment.basis:
                det[0] = 0
            if i == 0:
                num_primary = det.shape[1]
            parts.append(det)
        det = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
        return cls(basis=basis, batch_size=int(batch_size), det=det,
                   num_primary=num_primary)

    @classmethod
    def from_record_words(cls, record_words: np.ndarray,
                          experiment: MemoryExperiment, batch_size: int,
                          basis: Optional[str] = None,
                          include_dual: bool = True) -> "PackedSyndromes":
        """Frame-native path: consume ``(num_cbits, W)`` record words
        straight from :meth:`FrameSimulator.run_packed` — no unpack."""
        return cls._assemble(lambda idx: record_words[idx], experiment,
                             batch_size, basis or experiment.basis,
                             include_dual)

    @classmethod
    def from_records(cls, records: np.ndarray, experiment: MemoryExperiment,
                     basis: Optional[str] = None,
                     include_dual: bool = True) -> "PackedSyndromes":
        """Adapter for uint8 ``(B, num_cbits)`` records (tableau path):
        packs the syndrome columns once, then shares the packed kernels."""
        B = int(records.shape[0])

        def syn_of(idx: np.ndarray) -> np.ndarray:
            rounds, P = idx.shape
            if P == 0:
                return np.zeros((rounds, 0, words_for(B)), dtype=np.uint64)
            syn_bits = records[:, idx]       # (B, rounds, P)
            flat = np.ascontiguousarray(
                syn_bits.transpose(1, 2, 0).reshape(rounds * P, B))
            return pack_bool_rows(flat).reshape(rounds, P, -1)

        return cls._assemble(syn_of, experiment, B,
                             basis or experiment.basis, include_dual)

    # ------------------------------------------------------------------
    # Packed reductions
    # ------------------------------------------------------------------
    def round_event_counts(self) -> np.ndarray:
        """Per-shot detection events per round, shape ``(B, rounds)``.

        Bit-sliced vertical counters over the plaquette planes of each
        round — the packed equivalent of ``det.sum(axis=plaquette)``.
        """
        counts = np.empty((self.batch_size, self.rounds), dtype=np.int64)
        for r in range(self.rounds):
            counts[:, r] = column_counts(self.det[r], self.batch_size)
        return counts

    def plaquette_event_counts(self, shot_mask: Optional[np.ndarray] = None,
                               rounds: Optional[slice] = None) -> np.ndarray:
        """Across-shot event totals per (round, plaquette).

        ``shot_mask`` — optional packed ``(W,)`` shot-selection mask
        (see :func:`pack_shot_mask`); ``rounds`` restricts the round
        axis.  Returns ``(rounds, P)`` int64.
        """
        det = self.det if rounds is None else self.det[rounds]
        if shot_mask is not None:
            det = det & shot_mask
        return popcount_words(det).sum(axis=-1)


def pack_shot_mask(flags: np.ndarray) -> np.ndarray:
    """Pack a per-shot boolean selection into a ``(W,)`` word mask."""
    return pack_bool(np.asarray(flags, dtype=bool))
