"""Streaming radiation-strike detection over packed syndromes.

A radiation event announces itself as a burst of spatio-temporally
correlated detection events (Harrington et al. 2024; Vallero et al.
2025): the per-round detection-event count jumps from the intrinsic
baseline to a large fraction of the plaquettes and decays with the
transient.  The detector therefore watches the per-shot, per-round
event counts — computed entirely in the packed word domain — with a
one-sided CUSUM:

    ``S_0 = 0;  S_r = max(0, S_{r-1} + (c_r - mu - k))``

where ``c_r`` is the round-``r`` event count, ``mu`` the baseline rate
and ``k`` a drift allowance.  A shot is *flagged* at the first round
where ``S_r`` crosses the threshold ``h``; ``max_r S_r`` doubles as a
continuous anomaly score for ROC analysis.  CUSUM is the classical
minimal-delay change-point statistic for a persistent shift, which is
exactly what the step-approximated transient (paper Eq. 5) produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .stream import PackedSyndromes


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs for :class:`StreamingDetector`.

    threshold:
        CUSUM flag level ``h``, in detection events.  ``None`` (default)
        scales with the watched stream: ``max(2, P / 4)`` over ``P``
        plaquettes — a quarter of the code lighting up is anomalous at
        any size, while a fixed count tuned on d=5 (24 plaquettes)
        would be unreachable on d=3 (8).
    slack:
        Per-round drift allowance ``k`` added on top of the baseline —
        absorbs Poisson fluctuation of the intrinsic rate so the score
        stays near zero on clean rounds.
    baseline:
        Expected intrinsic events per round (``mu``).  ``None``
        estimates it per batch as the median of the per-round mean
        counts — robust while the burst occupies under half the rounds.
    """

    threshold: Optional[float] = None
    slack: float = 1.0
    baseline: Optional[float] = None

    def resolve_threshold(self, num_plaquettes: int) -> float:
        if self.threshold is not None:
            return float(self.threshold)
        return max(2.0, num_plaquettes / 4.0)


@dataclass
class DetectionReport:
    """Outcome of one detection pass over a batch.

    ``scores`` is the CUSUM trajectory ``(B, rounds)``; ``flag_round``
    holds the first crossing round per shot (-1: never flagged);
    ``active_rounds`` is the batch-level burst window ``[start, end)``
    estimated from the flagged shots' mean counts, or ``None``.
    """

    scores: np.ndarray
    flag_round: np.ndarray
    baseline: float
    threshold: float
    active_rounds: Optional[Tuple[int, int]] = None

    @property
    def flagged(self) -> np.ndarray:
        return self.flag_round >= 0

    @property
    def num_flagged(self) -> int:
        return int(np.count_nonzero(self.flagged))

    @property
    def flag_rate(self) -> float:
        B = self.scores.shape[0]
        return self.num_flagged / B if B else 0.0

    @property
    def max_scores(self) -> np.ndarray:
        """Per-shot continuous anomaly score (ROC statistic)."""
        if self.scores.shape[1] == 0:
            return np.zeros(self.scores.shape[0])
        return self.scores.max(axis=1)

    def latencies(self, strike_round: int) -> np.ndarray:
        """Detection delays (rounds) of flagged shots w.r.t. a known
        strike round — negative entries are pre-strike false alarms."""
        return self.flag_round[self.flagged] - int(strike_round)


class StreamingDetector:
    """CUSUM change-point detector over packed syndrome streams."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    def detect(self, packed: PackedSyndromes) -> DetectionReport:
        counts = packed.round_event_counts()          # (B, R)
        B, R = counts.shape
        cfg = self.config
        if cfg.baseline is not None:
            mu = float(cfg.baseline)
        elif R:
            mu = float(np.median(counts.mean(axis=0)))
        else:
            mu = 0.0
        drift = mu + cfg.slack
        threshold = cfg.resolve_threshold(packed.num_plaquettes)
        scores = np.empty((B, R), dtype=float)
        s = np.zeros(B, dtype=float)
        for r in range(R):
            s = np.maximum(0.0, s + counts[:, r] - drift)
            scores[:, r] = s
        crossed = scores > threshold
        flag_round = np.where(crossed.any(axis=1),
                              crossed.argmax(axis=1), -1)
        active = self._active_window(counts, flag_round >= 0, drift)
        return DetectionReport(scores=scores, flag_round=flag_round,
                               baseline=mu, threshold=threshold,
                               active_rounds=active)

    @staticmethod
    def _active_window(counts: np.ndarray, flagged: np.ndarray,
                       drift: float) -> Optional[Tuple[int, int]]:
        """Batch-level burst window: the round span where the flagged
        shots' mean count exceeds the drift line."""
        if not flagged.any():
            return None
        means = counts[flagged].mean(axis=0)
        hot = np.nonzero(means > drift)[0]
        if hot.size == 0:
            return None
        return int(hot[0]), int(hot[-1]) + 1


# ----------------------------------------------------------------------
# ROC analysis
# ----------------------------------------------------------------------
def roc_curve(pos_scores: np.ndarray, neg_scores: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
    """``(fpr, tpr)`` points sweeping the threshold over all scores."""
    pos = np.asarray(pos_scores, dtype=float)
    neg = np.asarray(neg_scores, dtype=float)
    thresholds = np.unique(np.concatenate([pos, neg]))[::-1]
    tpr = [0.0]
    fpr = [0.0]
    for t in thresholds:
        tpr.append(float(np.mean(pos >= t)) if pos.size else 0.0)
        fpr.append(float(np.mean(neg >= t)) if neg.size else 0.0)
    tpr.append(1.0)
    fpr.append(1.0)
    return np.asarray(fpr), np.asarray(tpr)


def roc_auc(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Area under the ROC curve: ``P(pos > neg) + 0.5 P(pos == neg)``
    (Mann–Whitney), exact under ties."""
    pos = np.asarray(pos_scores, dtype=float)
    neg = np.asarray(neg_scores, dtype=float)
    if pos.size == 0 or neg.size == 0:
        return float("nan")
    both = np.concatenate([pos, neg])
    order = np.argsort(both, kind="mergesort")
    ranks = np.empty_like(both)
    # Midranks for ties.
    sorted_vals = both[order]
    i = 0
    n = both.size
    while i < n:
        j = i
        while j + 1 < n and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    r_pos = ranks[:pos.size].sum()
    u = r_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))
