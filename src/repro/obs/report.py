"""Render a run summary from telemetry JSONL files (``repro report``).

Works entirely from the exported records: the last ``snapshot`` record
is cumulative, so the report never needs the full stream — but it reads
all records anyway to report the snapshot cadence and tolerate torn
final lines (the exporter may have died mid-write).

Several files render as one merged offline-fleet summary: counters,
spans, events and histograms sum via :func:`~repro.obs.metrics.
merge_snapshots` (each file's last snapshot is cumulative for its
process, exactly like a worker snapshot), progress and service
counters add, and elapsed time takes the longest file — concurrent
heads overlap in wall-clock.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from .metrics import SCHEMA_VERSION, merge_snapshots


def load_telemetry(path: str) -> List[Dict[str, object]]:
    """All parseable records of one telemetry file, in order."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line
            if isinstance(rec, dict):
                records.append(rec)
    return records


def last_snapshot(records: List[Dict[str, object]]
                  ) -> Optional[Dict[str, object]]:
    for rec in reversed(records):
        if rec.get("kind") == "snapshot":
            return rec
    return None


def _fmt_rate(n: float, d: float) -> str:
    return f"{n / d:.1%}" if d else "-"


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def _sum_dicts(base: Dict[str, object],
               other: Dict[str, object]) -> Dict[str, object]:
    out = dict(base)
    for k, v in other.items():
        if isinstance(v, (int, float)) \
                and isinstance(out.get(k, 0), (int, float)):
            out[k] = out.get(k, 0) + v
        else:
            out.setdefault(k, v)
    return out


def _merge_file_snapshots(snaps: List[Dict[str, object]]
                          ) -> Dict[str, object]:
    """Fold several files' last snapshots into one fleet view."""
    merged = merge_snapshots(snaps[0], snaps[1:])
    progress: Dict[str, object] = {}
    service: Dict[str, object] = {}
    workers: Dict[str, object] = {}
    runners: Dict[str, object] = {}
    for snap in snaps:
        progress = _sum_dicts(progress, snap.get("progress", {}))
        service = _sum_dicts(service, snap.get("service", {}))
        # Worker / runner ids collide across files; prefix by index.
        idx = snaps.index(snap)
        for wid, w in snap.get("workers", {}).items():
            workers[f"{idx}:{wid}"] = w
        for rid, r in snap.get("runners", {}).items():
            runners[f"{idx}:{rid}"] = r
    merged["elapsed_s"] = max(
        float(s.get("elapsed_s") or s.get("uptime_s") or 0.0)
        for s in snaps)
    if progress:
        merged["progress"] = progress
    if service:
        merged["service"] = service
    if workers:
        merged["workers"] = workers
    if runners:
        merged["runners"] = runners
    merged["final"] = all(s.get("final") for s in snaps)
    return merged


def render_report(path: Union[str, Sequence[str]]) -> str:
    """The human-readable run summary for one telemetry file, or the
    merged offline-fleet summary for several."""
    paths = [path] if isinstance(path, str) else list(path)
    loaded = []
    for p in paths:
        records = load_telemetry(p)
        loaded.append((p, records, last_snapshot(records)))
    if len(paths) == 1:
        p, records, snap = loaded[0]
        if not records:
            return f"{p}: no telemetry records"
        if snap is None:
            return f"{p}: no snapshot records (run died before the " \
                   f"first export interval?)"
        schema = snap.get("schema")
        lines = [f"telemetry report — {p}",
                 f"schema {schema}"
                 + ("" if schema == SCHEMA_VERSION
                    else f" (reader expects {SCHEMA_VERSION})")
                 + f", {len(records)} records"
                 + (", final snapshot" if snap.get("final") else
                    " — PARTIAL: run still in flight (no final "
                    "snapshot; latest snapshot shown)")]
    else:
        usable = [(p, records, snap) for p, records, snap in loaded
                  if snap is not None]
        if not usable:
            return "no snapshot records in any of: " + ", ".join(paths)
        snap = _merge_file_snapshots([s for _, _, s in usable])
        lines = [f"telemetry report — fleet of {len(usable)} file(s)"]
        for p, records, s in usable:
            lines.append(f"  {p}: {len(records)} records"
                         + ("" if s.get("final") else " (PARTIAL)"))
        skipped = [p for p, _, s in loaded if s is None]
        for p in skipped:
            lines.append(f"  {p}: skipped (no snapshot records)")
        if not snap.get("final"):
            lines.append("PARTIAL: at least one run still in flight")
    progress = snap.get("progress", {})
    counters = snap.get("counters", {})
    spans = snap.get("spans", {})
    events = snap.get("events", {})
    elapsed = float(snap.get("elapsed_s") or snap.get("uptime_s") or 0.0)

    lines += _section("campaign")
    shots = counters.get("engine.shots", 0)
    lines.append(f"points   {progress.get('points_done', 0)}/"
                 f"{progress.get('points_total', 0)} done")
    lines.append(f"shots    {progress.get('shots_done', 0):,} aggregated"
                 f" ({shots:,} sampled)")
    if elapsed > 0:
        lines.append(f"elapsed  {elapsed:,.1f}s"
                     f" ({progress.get('shots_done', 0) / elapsed:,.0f}"
                     f" sh/s overall)")
    decisions = counters.get("engine.decisions", 0)
    if decisions:
        lines.append(f"adaptive {decisions} watermark decision(s), "
                     f"{counters.get('engine.early_stops', 0)} early "
                     f"stop(s)")

    if spans:
        lines += _section("phase breakdown")
        total = sum(v["total_s"] for v in spans.values())
        width = max(len(k) for k in spans)
        for name, st in sorted(spans.items(),
                               key=lambda kv: -kv[1]["total_s"]):
            share = _fmt_rate(st["total_s"], total)
            # Self time = cumulative minus nested children, so parent
            # phases stop double-counting their children (schema-1
            # files lack child_s and show self == total).
            self_s = max(st["total_s"] - st.get("child_s", 0.0), 0.0)
            lines.append(f"{name:<{width}}  {st['total_s']:9.3f}s "
                         f"{self_s:9.3f}s self x{st['count']:<7d} "
                         f"{share:>6}")

    profile = snap.get("profile")
    if profile:
        from .prof import render_profile

        lines += _section("profile")
        lines.append(render_profile(profile))

    hits = counters.get("decode.cache_hits", 0)
    misses = counters.get("decode.cache_misses", 0)
    patterns = counters.get("decode.patterns", 0)
    if hits or misses or patterns:
        lines += _section("decode cache")
        lines.append(f"keyed patterns   {patterns:,} "
                     f"({counters.get('decode.distinct_patterns', 0):,} "
                     f"distinct in-batch, "
                     f"{_fmt_rate(counters.get('decode.distinct_patterns', 0), patterns)})")
        lines.append(f"cache hit rate   {_fmt_rate(hits, hits + misses)} "
                     f"({hits:,} hits / {misses:,} misses)")

    service = snap.get("service", {})
    if service:
        lines += _section("service")
        lines.append(f"jobs        {service.get('jobs', 0)} submitted, "
                     f"{service.get('jobs_done', 0)} complete")
        lines.append(f"points      {service.get('points', 0)} queued "
                     f"fresh, {service.get('points_done', 0)} finished")
        lines.append(f"cache       {service.get('cache_hits', 0)} "
                     f"hit(s), {service.get('coalesced', 0)} coalesced "
                     f"submission(s)")
        lines.append(f"dispatch    {service.get('leases', 0)} lease(s) "
                     f"issued, {service.get('slices_completed', 0)} "
                     f"slice(s) absorbed")
        crashes = service.get("runner_crashes", 0)
        failed = service.get("failed_leases", 0)
        if crashes or failed:
            lines.append(f"failures    {crashes} runner crash(es), "
                         f"{failed} failed lease(s) — slices requeued")

    runners = snap.get("runners", {})
    if runners:
        lines += _section("runners")
        width = max(len(str(r)) for r in runners)
        for rid, h in sorted(runners.items()):
            note = "  ** LOST **" if h.get("lost") else ""
            lines.append(f"{rid:<{width}}  {h.get('leases', 0)} leased, "
                         f"{h.get('completed', 0)} done, "
                         f"{h.get('failed', 0)} failed, "
                         f"{h.get('expired', 0)} expired{note}")

    leases = counters.get("scheduler.leases", 0)
    if leases or snap.get("workers"):
        lines += _section("scheduler")
        lines.append(f"leases dispatched  {leases:,} "
                     f"({counters.get('scheduler.steals', 0)} steal "
                     f"refill(s))")
        crashes = counters.get("scheduler.worker_crashes", 0)
        if crashes:
            lines.append(f"worker crashes     {crashes} "
                         f"({counters.get('scheduler.requeued_leases', 0)}"
                         f" lease(s) requeued)")
        for wid, w in sorted(snap.get("workers", {}).items()):
            lines.append(f"worker {wid}: {w.get('shots', 0):,} shots, "
                         f"{w.get('shots_per_s', 0):,.0f} sh/s")

    gauges = snap.get("gauges", {})
    if any(k.startswith("rare.") for k in list(gauges) + list(counters)):
        lines += _section("rare-event sampling")
        if "rare.pilot_tilt" in gauges:
            lines.append(f"pilot rung chosen  "
                         f"tilt={gauges['rare.pilot_tilt']:g} "
                         f"({counters.get('rare.pilot_shots', 0):,} pilot "
                         f"shots)")
        if "rare.ess" in gauges:
            lines.append(f"last task ESS      {gauges['rare.ess']:,.1f}")

    if events:
        lines += _section("events")
        width = max(len(k) for k in events)
        for kind, count in sorted(events.items()):
            lines.append(f"{kind:<{width}}  x{count}")

    return "\n".join(lines)
