"""Render a run summary from a telemetry JSONL file (``repro report``).

Works entirely from the exported records: the last ``snapshot`` record
is cumulative, so the report never needs the full stream — but it reads
all records anyway to report the snapshot cadence and tolerate torn
final lines (the exporter may have died mid-write).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import SCHEMA_VERSION


def load_telemetry(path: str) -> List[Dict[str, object]]:
    """All parseable records of one telemetry file, in order."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line
            if isinstance(rec, dict):
                records.append(rec)
    return records


def last_snapshot(records: List[Dict[str, object]]
                  ) -> Optional[Dict[str, object]]:
    for rec in reversed(records):
        if rec.get("kind") == "snapshot":
            return rec
    return None


def _fmt_rate(n: float, d: float) -> str:
    return f"{n / d:.1%}" if d else "-"


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def render_report(path: str) -> str:
    """The human-readable run summary for one telemetry file."""
    records = load_telemetry(path)
    if not records:
        return f"{path}: no telemetry records"
    snap = last_snapshot(records)
    if snap is None:
        return f"{path}: no snapshot records (run died before the first " \
               f"export interval?)"
    schema = snap.get("schema")
    lines = [f"telemetry report — {path}",
             f"schema {schema}"
             + ("" if schema == SCHEMA_VERSION
                else f" (reader expects {SCHEMA_VERSION})")
             + f", {len(records)} records"
             + (", final snapshot" if snap.get("final") else
                " — PARTIAL: run still in flight (no final snapshot; "
                "latest snapshot shown)")]
    progress = snap.get("progress", {})
    counters = snap.get("counters", {})
    spans = snap.get("spans", {})
    events = snap.get("events", {})
    elapsed = float(snap.get("elapsed_s") or snap.get("uptime_s") or 0.0)

    lines += _section("campaign")
    shots = counters.get("engine.shots", 0)
    lines.append(f"points   {progress.get('points_done', 0)}/"
                 f"{progress.get('points_total', 0)} done")
    lines.append(f"shots    {progress.get('shots_done', 0):,} aggregated"
                 f" ({shots:,} sampled)")
    if elapsed > 0:
        lines.append(f"elapsed  {elapsed:,.1f}s"
                     f" ({progress.get('shots_done', 0) / elapsed:,.0f}"
                     f" sh/s overall)")
    decisions = counters.get("engine.decisions", 0)
    if decisions:
        lines.append(f"adaptive {decisions} watermark decision(s), "
                     f"{counters.get('engine.early_stops', 0)} early "
                     f"stop(s)")

    if spans:
        lines += _section("phase breakdown")
        total = sum(v["total_s"] for v in spans.values())
        width = max(len(k) for k in spans)
        for name, st in sorted(spans.items(),
                               key=lambda kv: -kv[1]["total_s"]):
            share = _fmt_rate(st["total_s"], total)
            lines.append(f"{name:<{width}}  {st['total_s']:9.3f}s "
                         f"x{st['count']:<7d} {share:>6}")

    hits = counters.get("decode.cache_hits", 0)
    misses = counters.get("decode.cache_misses", 0)
    patterns = counters.get("decode.patterns", 0)
    if hits or misses or patterns:
        lines += _section("decode cache")
        lines.append(f"keyed patterns   {patterns:,} "
                     f"({counters.get('decode.distinct_patterns', 0):,} "
                     f"distinct in-batch, "
                     f"{_fmt_rate(counters.get('decode.distinct_patterns', 0), patterns)})")
        lines.append(f"cache hit rate   {_fmt_rate(hits, hits + misses)} "
                     f"({hits:,} hits / {misses:,} misses)")

    service = snap.get("service", {})
    if service:
        lines += _section("service")
        lines.append(f"jobs        {service.get('jobs', 0)} submitted, "
                     f"{service.get('jobs_done', 0)} complete")
        lines.append(f"points      {service.get('points', 0)} queued "
                     f"fresh, {service.get('points_done', 0)} finished")
        lines.append(f"cache       {service.get('cache_hits', 0)} "
                     f"hit(s), {service.get('coalesced', 0)} coalesced "
                     f"submission(s)")
        lines.append(f"dispatch    {service.get('leases', 0)} lease(s) "
                     f"issued, {service.get('slices_completed', 0)} "
                     f"slice(s) absorbed")
        crashes = service.get("runner_crashes", 0)
        failed = service.get("failed_leases", 0)
        if crashes or failed:
            lines.append(f"failures    {crashes} runner crash(es), "
                         f"{failed} failed lease(s) — slices requeued")

    leases = counters.get("scheduler.leases", 0)
    if leases or snap.get("workers"):
        lines += _section("scheduler")
        lines.append(f"leases dispatched  {leases:,} "
                     f"({counters.get('scheduler.steals', 0)} steal "
                     f"refill(s))")
        crashes = counters.get("scheduler.worker_crashes", 0)
        if crashes:
            lines.append(f"worker crashes     {crashes} "
                         f"({counters.get('scheduler.requeued_leases', 0)}"
                         f" lease(s) requeued)")
        for wid, w in sorted(snap.get("workers", {}).items()):
            lines.append(f"worker {wid}: {w.get('shots', 0):,} shots, "
                         f"{w.get('shots_per_s', 0):,.0f} sh/s")

    gauges = snap.get("gauges", {})
    if any(k.startswith("rare.") for k in list(gauges) + list(counters)):
        lines += _section("rare-event sampling")
        if "rare.pilot_tilt" in gauges:
            lines.append(f"pilot rung chosen  "
                         f"tilt={gauges['rare.pilot_tilt']:g} "
                         f"({counters.get('rare.pilot_shots', 0):,} pilot "
                         f"shots)")
        if "rare.ess" in gauges:
            lines.append(f"last task ESS      {gauges['rare.ess']:,.1f}")

    if events:
        lines += _section("events")
        width = max(len(k) for k in events)
        for kind, count in sorted(events.items()):
            lines.append(f"{kind:<{width}}  x{count}")

    return "\n".join(lines)
