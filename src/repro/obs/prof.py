"""Opt-in deterministic profiler: wall-time below the phase spans.

The PR 7 registry answers "how long did ``sample`` take"; this module
answers "on which op kind / decode stage did it go".  Three taps, all
RNG-neutral (the profiler reads clocks only — counts and adaptive stop
shots are bit-identical with profiling on or off, property-tested):

* **Kernel buckets** — the frames executor times ops against
  per-op-kind buckets (``cx``, ``h``, ``measure``, ``depolarize``, the
  ``.fused`` layer twins, ...).  Per-op clocking is *sampled*: one
  block in :data:`SAMPLE_EVERY` runs the timed twin (blocks are
  homogeneous repeats of one compiled program, so sampled shares are
  exact shares), every block contributes its wall time, and
  :meth:`Profiler.snapshot` scales the sampled buckets up to
  whole-run wall time — scalar frame ops are a few µs each, and
  clocking every one of them would alone blow the overhead budget.
* **Stages** — coarse sub-phase attribution recorded by name
  (:meth:`Profiler.stage`): the batched decoder splits its time into
  pattern dedup / cache probe / matcher.
* **Span paths** — a hook on the registry's span stack accumulates
  wall time per full span *path*, from which per-path self-time
  (cumulative minus nested children, kernels and stages included)
  falls out — the collapsed-stack flamegraph export.

Cost contract, like the registry's: **zero when off** — hot call sites
do one ``None`` check against :data:`_ACTIVE` — and < 2% on the d=5
frames hot path when on (gated in ``benchmarks/bench_prof.py``).  The
profiler is process-local and parent-side: :func:`repro.obs.reset`
(the worker-process entry) disables it, so ``repro perf record`` on a
``-j N`` campaign attributes the dispatching process only.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import registry

#: Opcode-indexed kernel tables are sized for every current opcode
#: plus headroom.
_TABLE_SIZE = 32

#: Per-op kernel timing samples one block in this many (the first
#: block is always sampled, so short runs still fill their buckets);
#: the remaining blocks run the plain dispatch chain and contribute
#: wall time only.
SAMPLE_EVERY = 4


class KernelStats:
    """One kernel bucket: wall-clock, invocations, scalar-equivalent
    ops (a fused layer op of width *w* counts *w* ops)."""

    __slots__ = ("total_s", "count", "ops")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0
        self.ops = 0


class Profiler:
    """Accumulates kernel / stage / span-path attribution.

    Buckets are keyed under the registry span stack at record time, so
    the flamegraph shows ``sample;frames.cx.fused`` rather than a flat
    kernel namespace.  The stack lookup happens once per block (not
    per op): the executor fetches an opcode-indexed table up front and
    indexes it in its inner loop.
    """

    def __init__(self) -> None:
        # prefix (span-path tuple) -> opcode-indexed List[KernelStats]
        self._op_tables: Dict[Tuple[str, ...], List[KernelStats]] = {}
        # prefix -> [total_s, blocks, sampled_s, sampled_blocks]
        self._blocks: Dict[Tuple[str, ...], List] = {}
        # (prefix, stage name) -> [total_s, calls]
        self._stages: Dict[Tuple[Tuple[str, ...], str], List] = {}
        # span path tuple -> [total_s, count]
        self._paths: Dict[Tuple[str, ...], List] = {}
        self._block_ctr = 0
        self._cur_blk: Optional[List] = None
        self._cur_sampled = False
        self._start = perf_counter()

    # -- recording -----------------------------------------------------
    def begin_block(self) -> Tuple[List[KernelStats], bool]:
        """Open a block under the current span path: returns the
        opcode-indexed kernel table and whether this block is a
        per-op-timed sample (1 in :data:`SAMPLE_EVERY`; the first
        block always).  The executor indexes the table in its inner
        loop (no dict hashing per op) and must close the block with
        :meth:`end_block`.  Not re-entrant — the frames executor runs
        one block at a time."""
        prefix = tuple(registry()._stack)
        tab = self._op_tables.get(prefix)
        if tab is None:
            tab = self._op_tables[prefix] = [
                KernelStats() for _ in range(_TABLE_SIZE)]
            self._blocks[prefix] = [0.0, 0, 0.0, 0]
        self._cur_blk = self._blocks[prefix]
        n = self._block_ctr
        self._block_ctr = n + 1
        self._cur_sampled = n % SAMPLE_EVERY == 0
        return tab, self._cur_sampled

    def end_block(self, dt: float) -> None:
        """Close the block opened by :meth:`begin_block` with its wall
        time — every block contributes here; sampled ones additionally
        filled their kernel buckets."""
        blk = self._cur_blk
        if blk is None:  # pragma: no cover - executor always pairs
            return
        blk[0] += dt
        blk[1] += 1
        if self._cur_sampled:
            blk[2] += dt
            blk[3] += 1
        self._cur_blk = None

    def stage(self, name: str, dt: float, calls: int = 1) -> None:
        """Attribute ``dt`` seconds to sub-phase ``name`` under the
        current span path (per batch, not per op — cheap)."""
        key = (tuple(registry()._stack), name)
        row = self._stages.get(key)
        if row is None:
            row = self._stages[key] = [0.0, 0]
        row[0] += dt
        row[1] += calls

    def _on_span(self, path: Tuple[str, ...], dt: float) -> None:
        row = self._paths.get(path)
        if row is None:
            row = self._paths[path] = [0.0, 0]
        row[0] += dt
        row[1] += 1

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable profile: aggregated ``kernels`` and
        ``stages`` plus the ``paths`` tree with per-path self-time.

        Kernel buckets hold per-op times from the sampled blocks; here
        they are scaled to *all* blocks' wall time (per span-path
        prefix, so a fully-sampled short run stays exact) — the
        ``sampling`` section records the coverage the estimate rests
        on."""
        from ..frames.program import OP_KIND  # local: frames imports prof

        kernels: Dict[str, Dict[str, object]] = {}
        stages: Dict[str, Dict[str, object]] = {}
        # Combined tree: span paths plus kernel/stage leaves beneath
        # the span path they were recorded under.
        entries: Dict[Tuple[str, ...], List] = {}

        def entry(path: Tuple[str, ...]) -> List:
            row = entries.get(path)
            if row is None:
                row = entries[path] = [0.0, 0]
            return row

        for path, (total, count) in self._paths.items():
            row = entry(path)
            row[0] += total
            row[1] += count
        blocks_total = blocks_sampled = 0
        for prefix, tab in self._op_tables.items():
            blk = self._blocks.get(prefix) or [0.0, 0, 0.0, 0]
            blocks_total += blk[1]
            blocks_sampled += blk[3]
            f_time = blk[0] / blk[2] if blk[2] > 0.0 else 1.0
            f_count = blk[1] / blk[3] if blk[3] else 1.0
            for code, st in enumerate(tab):
                if not st.count:
                    continue
                kind = OP_KIND.get(code, f"op{code}")
                agg = kernels.setdefault(
                    kind, {"total_s": 0.0, "calls": 0, "ops": 0})
                agg["total_s"] += st.total_s * f_time
                agg["calls"] += int(round(st.count * f_count))
                agg["ops"] += int(round(st.ops * f_count))
                row = entry(prefix + (f"frames.{kind}",))
                row[0] += st.total_s * f_time
                row[1] += int(round(st.count * f_count))
        for (prefix, name), (total, calls) in self._stages.items():
            agg = stages.setdefault(name, {"total_s": 0.0, "calls": 0})
            agg["total_s"] += total
            agg["calls"] += calls
            row = entry(prefix + (name,))
            row[0] += total
            row[1] += calls

        child_sum: Dict[Tuple[str, ...], float] = {}
        for path, (total, _count) in entries.items():
            if len(path) > 1:
                parent = path[:-1]
                child_sum[parent] = child_sum.get(parent, 0.0) + total
        paths = {
            "/".join(path): {
                "total_s": round(total, 6),
                "count": count,
                "self_s": round(max(total - child_sum.get(path, 0.0), 0.0),
                                6),
            }
            for path, (total, count) in sorted(entries.items())}
        for k in kernels.values():
            k["total_s"] = round(k["total_s"], 6)
        for s in stages.values():
            s["total_s"] = round(s["total_s"], 6)
        return {"enabled_s": round(perf_counter() - self._start, 6),
                "sampling": {"every": SAMPLE_EVERY,
                             "blocks": blocks_total,
                             "sampled": blocks_sampled},
                "kernels": kernels, "stages": stages, "paths": paths}

    def flame_lines(self) -> List[str]:
        """Collapsed-stack flamegraph lines: one per span path,
        ``a;b;c <self-time in µs>`` — feed straight into
        ``flamegraph.pl`` / speedscope."""
        snap = self.snapshot()
        return [f"{path.replace('/', ';')} "
                f"{round(row['self_s'] * 1e6)}"
                for path, row in snap["paths"].items()]


#: The active profiler, or ``None``.  Hot call sites read this module
#: global directly — one global load + ``None`` check when profiling
#: is off.
_ACTIVE: Optional[Profiler] = None


def active() -> Optional[Profiler]:
    return _ACTIVE


def enable() -> Profiler:
    """Install (or return) the process profiler and tap the registry's
    span exits."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Profiler()
        registry().set_span_hook(_ACTIVE._on_span)
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None
    registry().set_span_hook(None)


@contextmanager
def profile() -> Iterator[Profiler]:
    """``with prof.profile() as p: ...`` — enable for the duration."""
    p = enable()
    try:
        yield p
    finally:
        disable()


def snapshot_active() -> Optional[Dict[str, object]]:
    """The active profiler's snapshot, or ``None`` when off — the
    one-liner sinks and the service use to attach a ``profile``
    section."""
    return _ACTIVE.snapshot() if _ACTIVE is not None else None


def render_profile(profile_snap: Dict[str, object],
                   top: int = 20) -> str:
    """ASCII profile report: kernel buckets, decode stages, hottest
    span paths by self-time."""
    lines: List[str] = []
    kernels = profile_snap.get("kernels", {})
    if kernels:
        total = sum(v["total_s"] for v in kernels.values()) or 1.0
        samp = profile_snap.get("sampling") or {}
        if samp.get("sampled", 0) < samp.get("blocks", 0):
            lines.append(
                f"kernel buckets (frames executor; "
                f"{samp['sampled']}/{samp['blocks']} blocks op-sampled, "
                f"scaled to wall time)")
        else:
            lines.append("kernel buckets (frames executor)")
        lines.append(f"  {'kind':<20} {'calls':>9} {'ops':>11} "
                     f"{'total':>10}  share")
        for kind, v in sorted(kernels.items(),
                              key=lambda kv: -kv[1]["total_s"]):
            lines.append(
                f"  {kind:<20} {v['calls']:>9d} {v['ops']:>11d} "
                f"{v['total_s']:>9.3f}s {100 * v['total_s'] / total:>5.1f}%")
    stages = profile_snap.get("stages", {})
    if stages:
        if lines:
            lines.append("")
        lines.append("attributed stages")
        lines.append(f"  {'stage':<28} {'calls':>9} {'total':>10}")
        for name, v in sorted(stages.items(),
                              key=lambda kv: -kv[1]["total_s"]):
            lines.append(f"  {name:<28} {v['calls']:>9d} "
                         f"{v['total_s']:>9.3f}s")
    paths = profile_snap.get("paths", {})
    if paths:
        if lines:
            lines.append("")
        lines.append(f"span paths by self-time (top {top})")
        lines.append(f"  {'path':<44} {'count':>8} {'total':>10} "
                     f"{'self':>10}")
        ranked = sorted(paths.items(), key=lambda kv: -kv[1]["self_s"])
        for path, v in ranked[:top]:
            lines.append(f"  {path:<44} {v['count']:>8d} "
                         f"{v['total_s']:>9.3f}s {v['self_s']:>9.3f}s")
    if not lines:
        lines.append("profile: no samples recorded")
    return "\n".join(lines)
