"""Process-local metrics registry: counters, gauges, spans, events.

The registry is the engine's always-on instrumentation substrate.  Two
properties make it safe to leave enabled in the hot path:

* **Never touches randomness** — metrics read counts and clocks only;
  no RNG stream is ever consumed or reseeded, so counts and adaptive
  stop shots are bit-identical with instrumentation on or off (the
  bit-identity property tests run with a monitor installed).
* **Near-zero overhead** — incrementing a counter is one attribute add
  on a cached object; a span is two ``perf_counter`` calls.  Hot-path
  call sites cache their :class:`Counter` objects at module scope,
  which works because :meth:`MetricsRegistry.reset` zeroes the
  existing objects *in place* instead of replacing them — cached
  references stay live across resets and across ``fork``.

Values are process-local.  Parallel workers carry their own registry
(zeroed at worker start) and ship cumulative snapshots back to the
scheduler on the existing results queue; :func:`merge_snapshots` sums
them into the campaign-wide view.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

#: Telemetry snapshot schema version (the ``"schema"`` field of every
#: exported JSONL record).  Bump when the snapshot shape changes.
#: v2: span rows gained ``child_s`` (time spent inside nested spans,
#: the input to the self-time column) and snapshots may carry an
#: optional ``profile`` section from :mod:`repro.obs.prof`.
SCHEMA_VERSION = 2

#: Recent events kept verbatim (per kind, total) for the snapshot's
#: ``recent_events`` field; per-kind totals are unbounded counters.
EVENT_BUFFER = 64


class Counter:
    """A monotonically increasing integer (per process)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins sampled value (``None`` until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class SpanStats:
    """Accumulated wall-clock for one named phase.

    ``total_s`` is inclusive of nested spans; ``child_s`` is the part
    of ``total_s`` spent inside directly nested spans, so
    ``total_s - child_s`` is the phase's *self* time.
    """

    __slots__ = ("total_s", "count", "child_s")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0
        self.child_s = 0.0


class Histogram:
    """Fixed-bucket histogram (cumulative counts are derivable).

    Kept deliberately simple: ``bounds`` are the inclusive upper edges
    of all but the last bucket, which is open-ended.  The engine uses
    histograms sparingly (they cost a bisection per observation);
    counters and spans carry the hot-path load.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        i = 0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            i = len(self.bounds)
        self.counts[i] += 1
        self.total += 1
        self.sum += value

    def to_row(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "sum": self.sum}


class MetricsRegistry:
    """One process's metric namespace.

    Not thread-safe by design — the engine is single-threaded per
    process, and a lock per counter increment would dominate the cost
    of the increment itself.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._stack: List[str] = []
        self._event_counts: Dict[str, int] = {}
        self._events: Deque[Dict[str, object]] = deque(maxlen=EVENT_BUFFER)
        self._span_hook = None
        self._start = perf_counter()

    # -- metric handles ------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str, bounds: Tuple[float, ...]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        return h

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named phase; spans nest (each level accumulates its
        own wall-clock, inclusive of children) and unwind correctly on
        exceptions."""
        self._stack.append(name)
        t0 = perf_counter()
        try:
            yield
        finally:
            dt = perf_counter() - t0
            self._stack.pop()
            st = self._spans.get(name)
            if st is None:
                st = self._spans[name] = SpanStats()
            st.total_s += dt
            st.count += 1
            if self._stack:
                parent = self._spans.get(self._stack[-1])
                if parent is None:
                    parent = self._spans[self._stack[-1]] = SpanStats()
                parent.child_s += dt
            if self._span_hook is not None:
                self._span_hook(tuple(self._stack) + (name,), dt)

    def set_span_hook(self, hook) -> None:
        """Install ``hook(path, dt)``, called at every span exit with
        the full span path (outermost first) and the span's duration —
        the profiler's tap.  ``None`` removes it.  Span timings are
        unaffected either way (the hook runs outside the timed
        window)."""
        self._span_hook = hook

    def span_stack(self) -> Tuple[str, ...]:
        """The currently open spans, outermost first."""
        return tuple(self._stack)

    def span_stats(self, name: str) -> Optional[SpanStats]:
        return self._spans.get(name)

    def span_totals(self) -> Dict[str, Tuple[float, int]]:
        """``{name: (total_s, count)}`` for every phase span — the
        cheap before/after delta hook the tracer uses to attribute
        engine phase time to a lease without touching the hot path."""
        return {k: (s.total_s, s.count) for k, s in self._spans.items()}

    # -- events --------------------------------------------------------
    def event(self, kind: str, message: str = "", **fields: object) -> None:
        """Record one structured event (warn+skip paths, crashes, ...).

        Per-kind totals always accumulate; the most recent
        :data:`EVENT_BUFFER` events are kept verbatim for the snapshot.
        """
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        ev: Dict[str, object] = {
            "kind": kind,
            "uptime_s": round(perf_counter() - self._start, 3)}
        if message:
            ev["message"] = message
        if fields:
            ev.update(fields)
        self._events.append(ev)

    @property
    def event_counts(self) -> Dict[str, int]:
        return dict(self._event_counts)

    @property
    def recent_events(self) -> List[Dict[str, object]]:
        return list(self._events)

    # -- lifecycle -----------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return perf_counter() - self._start

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable cumulative view of every metric."""
        snap: Dict[str, object] = {
            "uptime_s": round(self.uptime_s, 6),
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()
                       if g.value is not None},
            "spans": {k: {"total_s": round(s.total_s, 6), "count": s.count,
                          "child_s": round(s.child_s, 6)}
                      for k, s in self._spans.items()},
            "events": dict(self._event_counts),
        }
        if self._histograms:
            snap["histograms"] = {k: h.to_row()
                                  for k, h in self._histograms.items()}
        return snap

    def reset(self) -> None:
        """Zero every metric **in place** — existing Counter/Gauge/
        SpanStats objects keep their identity, so module-level cached
        handles (and handles inherited across ``fork``) remain valid."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = None
        for s in self._spans.values():
            s.total_s = 0.0
            s.count = 0
            s.child_s = 0.0
        for h in self._histograms.values():
            h.counts = [0] * (len(h.bounds) + 1)
            h.total = 0
            h.sum = 0.0
        self._stack.clear()
        self._event_counts.clear()
        self._events.clear()
        self._start = perf_counter()


def merge_snapshots(base: Dict[str, object],
                    others: Iterable[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Sum worker snapshots into a campaign-wide view.

    Counters, span totals/counts/child times, event totals, histogram
    buckets and profile sections add (histograms with mismatched
    bounds keep the base's buckets and fold the other's total/sum only
    — bounds are fixed per metric name in practice; span rows from
    schema-1 snapshots may lack ``child_s`` and merge as zero); gauges
    are last-write-wins with ``base`` taking precedence (worker gauges
    fill gaps only — per-worker gauge detail belongs in the per-worker
    section of the telemetry record, not the merged namespace).
    """
    counters = dict(base.get("counters", {}))
    gauges = dict(base.get("gauges", {}))
    spans: Dict[str, Dict[str, float]] = {
        k: dict(v) for k, v in base.get("spans", {}).items()}
    events = dict(base.get("events", {}))
    histograms: Dict[str, Dict[str, object]] = {
        k: {"bounds": list(v["bounds"]), "counts": list(v["counts"]),
            "total": v["total"], "sum": v["sum"]}
        for k, v in base.get("histograms", {}).items()}
    for snap in others:
        if not snap:
            continue
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            gauges.setdefault(k, v)
        for k, v in snap.get("spans", {}).items():
            st = spans.setdefault(k, {"total_s": 0.0, "count": 0})
            st["total_s"] = round(st["total_s"] + v["total_s"], 6)
            st["count"] += v["count"]
            if "child_s" in st or "child_s" in v:
                st["child_s"] = round(st.get("child_s", 0.0)
                                      + v.get("child_s", 0.0), 6)
        for k, v in snap.get("events", {}).items():
            events[k] = events.get(k, 0) + v
        for k, v in snap.get("histograms", {}).items():
            h = histograms.get(k)
            if h is None:
                histograms[k] = {"bounds": list(v["bounds"]),
                                 "counts": list(v["counts"]),
                                 "total": v["total"], "sum": v["sum"]}
                continue
            if list(h["bounds"]) == list(v["bounds"]):
                h["counts"] = [a + b for a, b in zip(h["counts"],
                                                     v["counts"])]
            h["total"] += v["total"]
            h["sum"] = round(h["sum"] + v["sum"], 9)
    profiles = [p for p in
                [base.get("profile")] + [s.get("profile") for s in others
                                         if s]
                if p]
    merged = dict(base)
    merged["counters"] = counters
    merged["gauges"] = gauges
    merged["spans"] = spans
    merged["events"] = events
    if histograms:
        merged["histograms"] = histograms
    if profiles:
        merged["profile"] = merge_profiles(profiles)
    return merged


def merge_profiles(profiles: List[Dict[str, object]]) -> Dict[str, object]:
    """Sum :mod:`repro.obs.prof` snapshot sections (kernel buckets,
    decode stages, span paths) across processes.  Self-times add, like
    every other duration here."""
    kernels: Dict[str, Dict[str, object]] = {}
    stages: Dict[str, Dict[str, object]] = {}
    paths: Dict[str, Dict[str, object]] = {}
    sampling: Dict[str, int] = {}
    for prof in profiles:
        samp = prof.get("sampling")
        if isinstance(samp, dict):
            sampling.setdefault("every", samp.get("every", 0))
            sampling["blocks"] = sampling.get("blocks", 0) \
                + samp.get("blocks", 0)
            sampling["sampled"] = sampling.get("sampled", 0) \
                + samp.get("sampled", 0)
        for k, v in prof.get("kernels", {}).items():
            row = kernels.setdefault(
                k, {"total_s": 0.0, "calls": 0, "ops": 0})
            row["total_s"] = round(row["total_s"] + v["total_s"], 6)
            row["calls"] += v["calls"]
            row["ops"] += v["ops"]
        for k, v in prof.get("stages", {}).items():
            row = stages.setdefault(k, {"total_s": 0.0, "calls": 0})
            row["total_s"] = round(row["total_s"] + v["total_s"], 6)
            row["calls"] += v["calls"]
        for k, v in prof.get("paths", {}).items():
            row = paths.setdefault(
                k, {"total_s": 0.0, "count": 0, "self_s": 0.0})
            row["total_s"] = round(row["total_s"] + v["total_s"], 6)
            row["count"] += v["count"]
            row["self_s"] = round(row["self_s"] + v.get("self_s", 0.0), 6)
    merged: Dict[str, object] = {"kernels": kernels, "stages": stages,
                                 "paths": paths}
    if sampling:
        merged["sampling"] = sampling
    return merged


def _prom_name(name: str) -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    base = "".join(out)
    if not base.startswith("repro_"):
        base = "repro_" + base
    return base


def _prom_labels(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"") \
                .replace("\n", r"\n")


def _split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split the ``base/k=v/k2=v2`` label-encoding convention used by
    per-runner metrics (the registry itself is label-free; labels are
    folded into the name so plain dict merging keeps working)."""
    parts = name.split("/")
    labels: Dict[str, str] = {}
    base = [parts[0]]
    for part in parts[1:]:
        if "=" in part:
            k, v = part.split("=", 1)
            labels[k] = v
        else:
            base.append(part)
    return "/".join(base), labels


def _prom_sample(base: str, labels: Dict[str, str], value: object) -> str:
    if labels:
        inner = ",".join(f'{_prom_name(k)[len("repro_"):]}='
                         f'"{_prom_labels(str(v))}"'
                         for k, v in sorted(labels.items()))
        return f"{base}{{{inner}}} {value}"
    return f"{base} {value}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a (possibly merged) snapshot in the Prometheus text
    exposition format (version 0.0.4).

    Dotted names become underscored with a ``repro_`` prefix; counters
    gain ``_total``; the ``base/k=v`` label convention becomes real
    labels; phase spans render as paired ``_seconds_total`` /
    ``_runs_total`` counters; histograms render cumulative ``_bucket``
    series with ``le`` labels plus ``_sum``/``_count``.
    """
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str,
               samples: List[str]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    family("repro_uptime_seconds", "gauge",
           "Seconds since the registry started.",
           [f"repro_uptime_seconds {snapshot.get('uptime_s', 0.0)}"])

    groups: Dict[str, List[str]] = {}
    for name, value in sorted(snapshot.get("counters", {}).items()):
        base, labels = _split_labels(name)
        prom = _prom_name(base) + "_total"
        groups.setdefault(prom, []).append(_prom_sample(prom, labels, value))
    for prom, samples in groups.items():
        family(prom, "counter", f"Registry counter {prom}.", samples)

    groups = {}
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        base, labels = _split_labels(name)
        prom = _prom_name(base)
        groups.setdefault(prom, []).append(_prom_sample(prom, labels, value))
    for prom, samples in groups.items():
        family(prom, "gauge", f"Registry gauge {prom}.", samples)

    span_seconds: List[str] = []
    span_runs: List[str] = []
    for name, st in sorted(snapshot.get("spans", {}).items()):
        labels = {"phase": name}
        span_seconds.append(_prom_sample("repro_phase_seconds_total",
                                         labels, st["total_s"]))
        span_runs.append(_prom_sample("repro_phase_runs_total",
                                      labels, st["count"]))
    family("repro_phase_seconds_total", "counter",
           "Cumulative wall-clock per instrumented phase.", span_seconds)
    family("repro_phase_runs_total", "counter",
           "Completions per instrumented phase.", span_runs)

    event_samples = [
        _prom_sample("repro_events_total", {"kind": kind}, count)
        for kind, count in sorted(snapshot.get("events", {}).items())]
    family("repro_events_total", "counter",
           "Structured obs events by kind.", event_samples)

    hist_groups: Dict[str, List[str]] = {}
    for name, row in sorted(snapshot.get("histograms", {}).items()):
        base, labels = _split_labels(name)
        prom = _prom_name(base)
        samples = hist_groups.setdefault(prom, [])
        cum = 0
        for bound, count in zip(row["bounds"], row["counts"]):
            cum += count
            samples.append(_prom_sample(
                prom + "_bucket", {**labels, "le": repr(float(bound))}, cum))
        samples.append(_prom_sample(
            prom + "_bucket", {**labels, "le": "+Inf"}, row["total"]))
        samples.append(_prom_sample(prom + "_sum", labels, row["sum"]))
        samples.append(_prom_sample(prom + "_count", labels, row["total"]))
    for prom, samples in hist_groups.items():
        family(prom, "histogram", f"Registry histogram {prom}.", samples)

    profile = snapshot.get("profile") or {}
    family("repro_kernel_seconds_total", "counter",
           "Profiler wall-clock per frames-executor op kind.",
           [_prom_sample("repro_kernel_seconds_total", {"kind": k},
                         v["total_s"])
            for k, v in sorted(profile.get("kernels", {}).items())])
    family("repro_kernel_ops_total", "counter",
           "Profiler scalar-equivalent ops per frames-executor op kind.",
           [_prom_sample("repro_kernel_ops_total", {"kind": k}, v["ops"])
            for k, v in sorted(profile.get("kernels", {}).items())])
    family("repro_profile_stage_seconds_total", "counter",
           "Profiler wall-clock per attributed sub-phase stage.",
           [_prom_sample("repro_profile_stage_seconds_total",
                         {"stage": k}, v["total_s"])
            for k, v in sorted(profile.get("stages", {}).items())])

    return "\n".join(lines) + "\n"


class Stopwatch:
    """Accumulates named wall-clock segments (a private registry).

    The historical ``repro.util.timing.Stopwatch`` API, now backed by
    :class:`MetricsRegistry` spans; ``repro.util`` re-exports it for
    compatibility.
    """

    def __init__(self) -> None:
        self._reg = MetricsRegistry()

    @property
    def totals(self) -> Dict[str, float]:
        return {k: s.total_s for k, s in self._reg._spans.items()}

    @property
    def counts(self) -> Dict[str, int]:
        return {k: s.count for k, s in self._reg._spans.items()}

    def section(self, name: str):
        return self._reg.span(name)

    def report(self) -> str:
        totals = self.totals
        counts = self.counts
        lines = []
        for name in sorted(totals, key=totals.get, reverse=True):
            lines.append(f"{name:30s} {totals[name]:9.3f}s "
                         f"x{counts[name]}")
        return "\n".join(lines)


#: The process-global registry every engine call site instruments.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def span(name: str):
    return _REGISTRY.span(name)


def event(kind: str, message: str = "", **fields: object) -> None:
    _REGISTRY.event(kind, message, **fields)
