"""Telemetry sinks: JSONL snapshot export and live TTY progress.

A :class:`CampaignMonitor` is the *ambient* observability session: the
CLI (or any caller) installs one for the duration of a run, and the
engine's chunk-boundary hooks feed it through :func:`active` — a single
``None`` check when no monitor is installed, so the hot path pays
nothing by default.

Both sinks work from the same source of truth: the process-global
:class:`~repro.obs.metrics.MetricsRegistry` plus per-worker registry
snapshots that ride the parallel scheduler's existing results queue
(cumulative per worker, merged by replacement, so crashes and requeues
can never double-count).  Monitor state is guarded by the owning PID:
forked pool children inherit the object but every method no-ops there,
keeping the ambient session strictly parent-side.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, IO, Iterator, List, Optional

from . import prof
from .metrics import SCHEMA_VERSION, merge_snapshots, registry

#: Seconds between periodic JSONL snapshot records.
EXPORT_INTERVAL_S = 2.0
#: Seconds between live progress-line redraws.
RENDER_INTERVAL_S = 0.25
#: Per-task rows embedded in one snapshot record (most recently
#: updated first); campaigns wider than this truncate with a flag
#: rather than ballooning every record.
MAX_TASK_ROWS = 64


class TelemetryWriter:
    """Append-only JSONL sink for schema-versioned telemetry records."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[IO[str]] = None
        self.seq = 0

    def write(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        record = {"schema": SCHEMA_VERSION, "seq": self.seq,
                  "time": round(time.time(), 3), **record}
        self._fh.write(json.dumps(record, sort_keys=True, default=str)
                       + "\n")
        self._fh.flush()
        self.seq += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressRenderer:
    """Single-line ``\\r`` progress display on a TTY stream."""

    def __init__(self, stream=None) -> None:
        self.stream = sys.stderr if stream is None else stream
        self._dirty = False

    @staticmethod
    def wants_tty(stream=None) -> bool:
        stream = sys.stderr if stream is None else stream
        try:
            return bool(stream.isatty())
        except Exception:
            return False

    def _width(self) -> int:
        try:
            return os.get_terminal_size(self.stream.fileno()).columns
        except (OSError, ValueError, AttributeError):
            return 100

    def render(self, line: str) -> None:
        width = max(20, self._width() - 1)
        if len(line) > width:
            line = line[:width - 1] + "…"
        self.stream.write("\r\x1b[2K" + line)
        self.stream.flush()
        self._dirty = True

    def clear(self) -> None:
        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()
            self._dirty = False


class _TaskState:
    """Progress of one campaign point, as last reported."""

    __slots__ = ("label", "shots", "target", "errors", "ci_rel", "ess",
                 "done", "updated")

    def __init__(self, label: str, target: int) -> None:
        self.label = label
        self.shots = 0
        self.target = target
        self.errors = 0
        self.ci_rel: Optional[float] = None
        self.ess: Optional[float] = None
        self.done = False
        self.updated = 0

    def to_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "label": self.label, "shots": self.shots,
            "target": self.target, "errors": self.errors,
            "done": self.done}
        if self.shots:
            row["ler"] = self.errors / self.shots
        if self.ci_rel is not None:
            row["ci_rel"] = round(self.ci_rel, 6)
        if self.ess is not None:
            row["ess"] = round(self.ess, 1)
        return row


def _ci_rel(errors: int, shots: int, weight_stats=None) -> Optional[float]:
    """Relative Wilson half-width (the adaptive policy's own measure),
    or ``None`` when no failure has been observed yet."""
    if shots <= 0:
        return None
    if weight_stats is not None:
        rate = weight_stats.estimate("sn")
        lo, hi = weight_stats.wilson_interval()
    else:
        from ..injection.results import wilson_interval

        rate = errors / shots
        lo, hi = wilson_interval(errors, shots)
    if rate <= 0.0:
        return None
    return (hi - lo) / 2.0 / rate


class CampaignMonitor:
    """The ambient observability session: progress + telemetry export.

    All methods are cheap and PID-guarded; the engine calls them only
    at chunk boundaries (hundreds of shots apart), never per shot or
    per block.
    """

    def __init__(self, telemetry: Optional[str] = None,
                 progress: bool = False, stream=None,
                 export_interval_s: float = EXPORT_INTERVAL_S,
                 render_interval_s: float = RENDER_INTERVAL_S) -> None:
        self._pid = os.getpid()
        self.writer = TelemetryWriter(telemetry) if telemetry else None
        self.renderer = ProgressRenderer(stream) if progress else None
        self.export_interval_s = export_interval_s
        self.render_interval_s = render_interval_s
        self._tasks: Dict[object, _TaskState] = {}
        self._points_done = 0
        self._shots_done = 0
        self._shots_target = 0
        self._update_seq = 0
        self._worker_snaps: Dict[int, Dict[str, object]] = {}
        self._started = perf_counter()
        self._last_export = -float("inf")
        self._last_render = -float("inf")
        if self.writer is not None:
            self.writer.write({"kind": "start", "pid": self._pid})

    def _mine(self) -> bool:
        return os.getpid() == self._pid

    # -- engine-facing hooks -------------------------------------------
    def begin_campaign(self, tasks, targets) -> None:
        """Register a campaign's points (callable more than once: the
        headline command runs several campaigns in one session)."""
        if not self._mine():
            return
        for task, target in zip(tasks, targets):
            if task not in self._tasks:
                self._tasks[task] = _TaskState(task.label, int(target))
                self._shots_target += int(target)
        self.tick()

    def task_progress(self, task, shots: int, errors: int, target: int,
                      weight_stats=None) -> None:
        if not self._mine():
            return
        st = self._tasks.get(task)
        if st is None:
            st = self._tasks[task] = _TaskState(task.label, int(target))
            self._shots_target += int(target)
        if int(target) != st.target:
            # Adaptive stop moved the goalposts (target shrank to the
            # stop shot); keep the overall ETA honest.
            self._shots_target += int(target) - st.target
            st.target = int(target)
        self._shots_done += int(shots) - st.shots
        st.shots = int(shots)
        st.errors = int(errors)
        st.ci_rel = _ci_rel(st.errors, st.shots, weight_stats)
        if weight_stats is not None:
            st.ess = weight_stats.ess
        self._update_seq += 1
        st.updated = self._update_seq

    def task_done(self, task, shots: int, errors: int = 0,
                  target: Optional[int] = None) -> None:
        if not self._mine():
            return
        st = self._tasks.get(task)
        if st is None:
            st = self._tasks[task] = _TaskState(
                task.label, int(target if target is not None else shots))
            self._shots_target += st.target
            st.errors = int(errors)
        self._shots_done += int(shots) - st.shots
        st.shots = int(shots)
        if not st.done:
            st.done = True
            self._points_done += 1

    def worker_snapshot(self, wid: int, snap: Dict[str, object]) -> None:
        """Bank one worker's cumulative registry snapshot (replacement
        merge: the latest snapshot subsumes all earlier ones)."""
        if not self._mine() or not snap:
            return
        self._worker_snaps[wid] = snap

    def campaign_end(self) -> None:
        """Campaign boundary: force a snapshot export and clear the
        progress line so the campaign's own output starts on a clean
        line (the session stays open — ``headline`` runs several
        campaigns through one monitor)."""
        if not self._mine():
            return
        if self.writer is not None:
            self._last_export = perf_counter()
            self.writer.write(self._snapshot_record())
        if self.renderer is not None:
            self.renderer.clear()

    # -- sinks ---------------------------------------------------------
    def tick(self, force: bool = False) -> None:
        if not self._mine():
            return
        now = perf_counter()
        if self.renderer is not None and (
                force or now - self._last_render >= self.render_interval_s):
            self._last_render = now
            self.renderer.render(self._progress_line())
        if self.writer is not None and (
                force or now - self._last_export >= self.export_interval_s):
            self._last_export = now
            self.writer.write(self._snapshot_record())

    def _merged_snapshot(self) -> Dict[str, object]:
        snap = merge_snapshots(registry().snapshot(),
                               self._worker_snaps.values())
        profile = prof.snapshot_active()
        if profile is not None:
            snap["profile"] = profile
        return snap

    def _snapshot_record(self, final: bool = False) -> Dict[str, object]:
        rec = dict(self._merged_snapshot())
        rec["kind"] = "snapshot"
        rec["elapsed_s"] = round(perf_counter() - self._started, 3)
        rec["progress"] = {
            "points_done": self._points_done,
            "points_total": len(self._tasks),
            "shots_done": self._shots_done,
            "shots_target": self._shots_target,
        }
        workers: Dict[str, Dict[str, object]] = {}
        for wid, snap in sorted(self._worker_snaps.items()):
            shots = snap.get("counters", {}).get("engine.shots", 0)
            uptime = snap.get("uptime_s", 0.0) or 0.0
            workers[str(wid)] = {
                "shots": shots,
                "uptime_s": round(uptime, 3),
                "shots_per_s": round(shots / uptime, 1) if uptime else 0.0,
            }
        if workers:
            rec["workers"] = workers
        states = sorted(self._tasks.values(), key=lambda s: -s.updated)
        rec["tasks"] = [st.to_row() for st in states[:MAX_TASK_ROWS]]
        if len(states) > MAX_TASK_ROWS:
            rec["tasks_truncated"] = len(states) - MAX_TASK_ROWS
        if final:
            rec["final"] = True
        return rec

    def _progress_line(self) -> str:
        elapsed = perf_counter() - self._started
        rate = self._shots_done / elapsed if elapsed > 0 else 0.0
        parts = [f"pts {self._points_done}/{len(self._tasks)}",
                 f"shots {self._shots_done:,}/{self._shots_target:,}"]
        if rate > 0:
            parts.append(f"{rate:,.0f} sh/s")
            left = max(0, self._shots_target - self._shots_done)
            eta = left / rate
            parts.append(f"eta {int(eta) // 60}:{int(eta) % 60:02d}")
        current = None
        for st in sorted(self._tasks.values(), key=lambda s: -s.updated):
            if not st.done and st.updated:
                current = st
                break
        if current is not None:
            cur = f"{current.label} {current.shots:,}/{current.target:,}"
            if current.ci_rel is not None:
                cur += f" ±{current.ci_rel:.0%}"
            parts.append(cur)
        return " · ".join(parts)

    def close(self) -> None:
        if not self._mine():
            return
        if self.renderer is not None:
            self.renderer.render(self._progress_line())
            self.renderer.stream.write("\n")
            self.renderer.stream.flush()
            self.renderer._dirty = False
        if self.writer is not None:
            self.writer.write(self._snapshot_record(final=True))
            self.writer.close()


#: The installed ambient monitor (parent process), or ``None``.
_ACTIVE: Optional[CampaignMonitor] = None


def job_progress_line(status: Dict[str, object]) -> str:
    """One-line summary of a service job-status snapshot — shared by
    ``repro submit --wait`` and ``repro status --watch`` (rendered via
    :class:`ProgressRenderer` on a TTY, printed plainly otherwise)."""
    shots = int(status.get("shots_done") or 0)
    target = int(status.get("shots_target") or 0)
    pct = f"{shots / target:.0%}" if target else "-"
    counters = (status.get("telemetry") or {}).get("counters", {})
    sampled = counters.get("engine.shots")
    tail = f" [{sampled:,} sampled]" if sampled else ""
    return (f"{status.get('job', '?')} {status.get('state', '?')}: "
            f"{status.get('points_done', 0)}/{status.get('points', 0)} "
            f"point(s), {shots:,}/{target:,} shots ({pct}){tail}")


def active() -> Optional[CampaignMonitor]:
    """The ambient monitor — the engine's single cheap lookup."""
    return _ACTIVE


def install(monitor: Optional[CampaignMonitor]) -> None:
    global _ACTIVE
    _ACTIVE = monitor


@contextmanager
def session(telemetry: Optional[str] = None, quiet: bool = False,
            progress: Optional[bool] = None, stream=None
            ) -> Iterator[Optional[CampaignMonitor]]:
    """Install an ambient monitor for the duration of a ``with`` block.

    ``progress`` defaults to "stderr is a TTY and not ``quiet``"; when
    neither a telemetry path nor progress is wanted the block runs with
    no monitor at all (the engine's hooks reduce to one ``None`` check).
    """
    if progress is None:
        progress = (not quiet) and ProgressRenderer.wants_tty(stream)
    if telemetry is None and not progress:
        yield None
        return
    monitor = CampaignMonitor(telemetry=telemetry, progress=progress,
                              stream=stream)
    install(monitor)
    try:
        yield monitor
    finally:
        install(None)
        monitor.close()
