"""Campaign observability: metrics, phase spans, progress, telemetry.

The layer has three pieces, all near-zero-overhead and RNG-neutral
(instrumentation never draws from or reorders any random stream — the
engine's bit-identity contract is property-tested with telemetry on):

* :mod:`repro.obs.metrics` — the process-local
  :class:`MetricsRegistry` of counters / gauges / histograms plus
  nestable phase spans (``compile``, ``sample``, ``detect``,
  ``decode``, ``merge``, ``aggregate``) and a structured event log.
  Hot paths use the module-level conveniences (:func:`counter`,
  :func:`span`, ...) against the global registry; :func:`reset` zeroes
  it in place (worker processes call this at start).
* :mod:`repro.obs.sinks` — the ambient :class:`CampaignMonitor`
  session combining a live TTY progress line and a periodic
  schema-versioned JSONL telemetry exporter (``--telemetry PATH``).
  The engine reaches it through :func:`active` (one ``None`` check
  when no session is installed).
* :mod:`repro.obs.report` — ``repro report FILE...``: render a phase /
  cache / scheduler / sampler summary from one or several exported
  telemetry files (several → a merged offline-fleet view).
* :mod:`repro.obs.trace` — distributed trace contexts for the campaign
  service: deterministic span ids propagated over the lease wire so
  remote phase spans land in one causally-linked trace per job.
* :mod:`repro.obs.prof` — the opt-in deterministic profiler
  (``repro perf record``): per-op-kind kernel buckets, decode-stage
  attribution, span-path self-times and flamegraph export.
* :mod:`repro.obs.bench` — the bench history store behind
  ``repro perf ingest/trend/check``: per-(sha, machine, benchmark)
  shots/s series with noise-aware regression detection.
"""

from . import bench, prof, trace
from .metrics import (
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    counter,
    event,
    gauge,
    merge_snapshots,
    registry,
    render_prometheus,
    span,
)
from .sinks import (
    CampaignMonitor,
    ProgressRenderer,
    TelemetryWriter,
    active,
    install,
    job_progress_line,
    session,
)
from .report import last_snapshot, load_telemetry, render_report


def reset() -> None:
    """Zero the global registry in place, drop any buffered trace
    spans, disable any profiler, and drop any ambient monitor
    (worker-process entry: metrics become worker-local, a profiler
    inherited across ``fork`` must not double-attribute in children,
    and a forked monitor must never export)."""
    registry().reset()
    trace.reset()
    prof.disable()
    install(None)


__all__ = [
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "counter",
    "gauge",
    "span",
    "event",
    "registry",
    "reset",
    "merge_snapshots",
    "render_prometheus",
    "bench",
    "prof",
    "trace",
    "CampaignMonitor",
    "ProgressRenderer",
    "TelemetryWriter",
    "active",
    "install",
    "job_progress_line",
    "session",
    "load_telemetry",
    "last_snapshot",
    "render_report",
]
