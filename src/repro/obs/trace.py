"""Distributed trace-context propagation for the campaign service.

A *trace* is the causal story of one submitted job: ``job → point →
lease → chunk``, with the engine's phase spans (``compile`` / ``sample``
/ ``decode`` / ``merge`` / ...) attached under the lease that ran them —
even when that lease executed in a forked pool child or on a remote
pull runner three HTTP hops away.

Two properties make the layer safe to leave on:

* **Deterministic ids.**  Span ids are SHA-1 digests of the causal
  path (``trace_id / name / coordinates``), never random draws — the
  tracer is RNG-neutral by construction, a requeued lease re-run on a
  different runner produces the *same* span id (so merging span
  summaries is idempotent, exactly like the engine's chunk dedup), and
  a job dispatched through the local pool yields the same span tree as
  the same job dispatched through remote runners.
* **Boundary-only cost.**  Nothing is recorded per shot or per block:
  a lease execution snapshots the registry's phase-span totals before
  and after (two small dict copies) and emits the deltas as child
  spans.  The <2% hot-path overhead bar is enforced by
  ``benchmarks/bench_service.py``.

Wire format: a lease carries ``{"id", "span", "parent"}`` (the trace
id, the lease's own pre-derived span id, and the parent point span);
completed spans ride the ``/complete`` payload as flat dicts and merge
into the dispatch head's per-trace table keyed by span id.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import sha1
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional

from .metrics import registry

#: Spans kept per process buffer / per trace on the dispatch head.  A
#: campaign point is a handful of spans; a whole sweep stays far below
#: this — the cap only guards against unbounded service uptime.
MAX_SPANS = 4096

#: Process-global tracing switch (``set_enabled``); the dispatcher
#: consults it at submit time, so a disabled head hands out traceless
#: leases and runners pay nothing at all.
_ENABLED = True


def set_enabled(on: bool) -> bool:
    """Flip tracing on/off process-wide; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def is_enabled() -> bool:
    return _ENABLED


def derive_id(*parts: object) -> str:
    """A 16-hex deterministic span/trace id from the causal path."""
    return sha1("/".join(str(p) for p in parts).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated context: which trace, and which span is parent."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self, name: str, *coords: object) -> "TraceContext":
        """Derive the deterministic child context for ``name`` at
        ``coords`` (e.g. ``("lease", start)``)."""
        return TraceContext(self.trace_id,
                            derive_id(self.span_id, name, *coords),
                            parent_id=self.span_id)

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"id": self.trace_id,
                                   "span": self.span_id}
        if self.parent_id is not None:
            wire["parent"] = self.parent_id
        return wire


def from_wire(wire: Optional[Mapping[str, object]]
              ) -> Optional[TraceContext]:
    """Rehydrate a wire trace field; ``None``/malformed → no tracing."""
    if not isinstance(wire, Mapping):
        return None
    trace_id = wire.get("id")
    span_id = wire.get("span")
    if not trace_id or not span_id:
        return None
    parent = wire.get("parent")
    return TraceContext(str(trace_id), str(span_id),
                        None if parent is None else str(parent))


def make_span(ctx: TraceContext, name: str, dur_s: float,
              parent_id: Optional[str] = None,
              t0: Optional[float] = None,
              **meta: object) -> Dict[str, object]:
    """One completed-span record (the JSONL/wire form)."""
    span: Dict[str, object] = {
        "trace": ctx.trace_id,
        "span": ctx.span_id,
        "parent": ctx.parent_id if parent_id is None else parent_id,
        "name": name,
        "dur_s": round(float(dur_s), 6),
        "t0": round(_time.time() if t0 is None else t0, 3),
    }
    if meta:
        span["meta"] = meta
    return span


class TraceBuffer:
    """Process-local holding pen for completed spans.

    Spans recorded during a lease execution are drained into the
    completion payload — in the service process, a forked pool child,
    or a remote runner alike — and travel to the dispatch head over
    the existing ``/complete`` wire.
    """

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._spans: List[Dict[str, object]] = []
        self.dropped = 0

    def record(self, span: Dict[str, object]) -> None:
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return
        self._spans.append(span)

    def drain(self) -> List[Dict[str, object]]:
        spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        return len(self._spans)


#: The process-global buffer lease executions record into.
_BUFFER = TraceBuffer()


def buffer() -> TraceBuffer:
    return _BUFFER


def record(span: Dict[str, object]) -> None:
    _BUFFER.record(span)


def drain() -> List[Dict[str, object]]:
    """Drain the process buffer (the completion-payload hook)."""
    return _BUFFER.drain()


def reset() -> None:
    """Drop any buffered spans (worker-process entry, tests)."""
    _BUFFER.drain()
    _BUFFER.dropped = 0


@contextmanager
def span(ctx: Optional[TraceContext], name: str, *coords: object,
         here: bool = False, phases: bool = False, **meta: object
         ) -> Iterator[Optional[TraceContext]]:
    """Record one span into the process buffer.

    By default the span is a fresh child of ``ctx`` derived from
    ``(name, *coords)``; with ``here=True`` it is recorded *at* ``ctx``
    itself — the dispatch head pre-derives lease span ids and ships
    them on the wire, so the executing side must not re-derive.

    With ``phases=True`` the registry's phase-span totals are
    snapshotted around the body and every phase that advanced
    (``compile``/``sample``/``decode``/...) is recorded as a child of
    the new span — that is how engine phases from a remote process
    land in the head's causally-linked trace without the hot path ever
    knowing about tracing.

    Yields the span's context (``None`` when tracing is off or there
    is no incoming context — callers chain without checking).
    """
    if ctx is None or not _ENABLED:
        yield None
        return
    child = ctx if here else ctx.child(name, *coords)
    before = registry().span_totals() if phases else {}
    t0 = _time.time()
    p0 = perf_counter()
    try:
        yield child
    finally:
        dur = perf_counter() - p0
        if phases:
            after = registry().span_totals()
            for phase, (total_s, count) in sorted(after.items()):
                prev_s, prev_n = before.get(phase, (0.0, 0))
                if count > prev_n or total_s > prev_s:
                    record(make_span(
                        child.child(phase), phase, total_s - prev_s,
                        count=count - prev_n))
        record(make_span(child, name, dur, t0=t0, **meta))


class TraceStore:
    """The dispatch head's span table: ``trace_id → span_id → span``.

    Absorption is idempotent by span id — a requeued lease re-run on
    another runner derives the same ids, so late or duplicate
    completions collapse exactly like duplicate chunks do.
    """

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._traces: Dict[str, Dict[str, Dict[str, object]]] = {}

    def absorb(self, spans) -> int:
        """Bank wire-form spans; returns how many were new."""
        fresh = 0
        for wire in spans or ():
            if not isinstance(wire, Mapping):
                continue
            trace_id = wire.get("trace")
            span_id = wire.get("span")
            if not trace_id or not span_id:
                continue
            table = self._traces.setdefault(str(trace_id), {})
            if str(span_id) in table or len(table) >= self.max_spans:
                continue
            table[str(span_id)] = dict(wire)
            fresh += 1
        return fresh

    def spans(self, trace_id: str) -> List[Dict[str, object]]:
        """A trace's spans, parents before children, then by time."""
        table = self._traces.get(trace_id, {})

        def depth(span: Dict[str, object]) -> int:
            seen = 0
            parent = span.get("parent")
            while parent is not None and seen < 16:
                row = table.get(parent)
                if row is None:
                    break
                parent = row.get("parent")
                seen += 1
            return seen

        return sorted(table.values(),
                      key=lambda s: (depth(s), s.get("t0", 0.0),
                                     str(s.get("span"))))

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._traces

    def __len__(self) -> int:
        return len(self._traces)
