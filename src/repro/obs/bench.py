"""Bench history store: durable shots/s series + regression gating.

CI emits one ``--bench-json`` payload per run and used to forget it.
This module makes the perf trajectory durable and queryable:

* :func:`ingest` appends each benchmark row of a payload to a JSONL
  history (default ``results/bench/history.jsonl``), keyed by
  ``(git sha, machine fingerprint, benchmark id)`` — the provenance
  block :mod:`benchmarks.conftest` stamps into the payload.  Re-runs
  of the same key are last-write-wins at load time, so one point per
  commit per machine survives.
* :func:`trend` renders the per-benchmark series across commits.
* :func:`check` is the CI gate: noise-aware regression detection
  against the median of same-fingerprint history, with thresholds
  scaled by the MAD (robust sigma, ``1.4826 * MAD``) so jittery
  benches earn wide bands and stable ones tight bands.  Lax mode
  (``REPRO_BENCH_LAX``, same switch as the bench bars) widens the
  relative floor for contended CI runners.

Only same-fingerprint points are comparable — shots/s on a 2-core CI
runner says nothing about an 8-core dev box — so baselines never mix
fingerprints.
"""

from __future__ import annotations

import json
import os
import time
from statistics import median
from typing import Dict, Iterable, List, Optional, Tuple

#: History record schema (the ``"schema"`` field of every line).
HISTORY_SCHEMA = 1

#: Default history location, shared with CI's ``bench-history``
#: artifact.
DEFAULT_HISTORY = os.path.join("results", "bench", "history.jsonl")

#: Regression gate defaults: relative floor (strict / lax), MAD
#: multiplier, minimum same-fingerprint baseline points before the
#: gate arms.
REL_TOL_STRICT = 0.10
REL_TOL_LAX = 0.30
MAD_K = 4.0
MIN_HISTORY = 3

#: Robust-sigma scale: for normal noise ``sigma ~= 1.4826 * MAD``.
MAD_SIGMA = 1.4826


def rel_tol_default(lax: Optional[bool] = None) -> float:
    """The relative regression floor, honouring ``REPRO_BENCH_LAX``
    when ``lax`` is not forced."""
    if lax is None:
        lax = bool(os.environ.get("REPRO_BENCH_LAX"))
    return REL_TOL_LAX if lax else REL_TOL_STRICT


def fingerprint(provenance: Dict[str, object]) -> str:
    """A coarse machine id: python major.minor, OS, arch, cpu count.

    Deliberately drops patch versions and kernel builds — points must
    stay comparable across routine CI image refreshes."""
    py = str(provenance.get("python") or "?")
    py = ".".join(py.split(".")[:2])
    system = str(provenance.get("system") or "?").lower()
    machine = str(provenance.get("machine") or "?")
    cpus = provenance.get("cpu_count") or "?"
    return f"py{py}-{system}-{machine}-{cpus}cpu"


def record_key(rec: Dict[str, object]) -> Tuple[object, object, object]:
    """Identity for last-write-wins dedup.  Records without a git sha
    (runs outside a checkout) key on their timestamp instead, so local
    exploratory points never clobber each other."""
    sha = rec.get("git_sha") or f"t{rec.get('time')}"
    return (sha, rec.get("fingerprint"), rec.get("bench"))


def rate_of(rec: Dict[str, object]) -> Optional[float]:
    """The comparable rate for a record: shots/s when the bench
    reports throughput, else inverse runtime (runs/s)."""
    rate = rec.get("shots_per_s")
    if rate:
        return float(rate)
    min_s = rec.get("min_s")
    if min_s:
        return 1.0 / float(min_s)
    return None


def payload_records(payload: Dict[str, object],
                    source: Optional[str] = None,
                    now: Optional[float] = None) -> List[Dict[str, object]]:
    """Flatten a ``--bench-json`` payload into history records.

    Tolerates pre-provenance payloads (older runners): the sha is
    ``None`` and the fingerprint falls back to the payload's top-level
    python/machine fields."""
    prov = dict(payload.get("provenance") or {})
    if not prov:
        prov = {"python": payload.get("python"),
                "machine": payload.get("machine")}
    stamp = now if now is not None else time.time()
    records = []
    for row in payload.get("benchmarks", []):
        if row.get("min_s") is None and not row.get("shots_per_s"):
            continue
        records.append({
            "schema": HISTORY_SCHEMA,
            "time": round(float(stamp), 3),
            "git_sha": prov.get("git_sha"),
            "fingerprint": fingerprint(prov),
            "bench": row.get("name"),
            "shots_per_s": row.get("shots_per_s"),
            "min_s": row.get("min_s"),
            "mean_s": row.get("mean_s"),
            "shots": row.get("shots"),
            "source": source,
        })
    return records


def load_history(path: str) -> List[Dict[str, object]]:
    """Parse a history JSONL, last-write-wins per
    :func:`record_key`, time-ordered.  Malformed lines are skipped —
    a truncated CI artifact must not take the gate down."""
    by_key: Dict[Tuple[object, object, object], Dict[str, object]] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(rec, dict) or "bench" not in rec:
                    continue
                by_key[record_key(rec)] = rec
    return sorted(by_key.values(), key=lambda r: (r.get("time") or 0.0))


def append_history(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Append records (creating parent dirs); returns count written."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    n = 0
    with open(path, "a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
            n += 1
    return n


def ingest(payload: Dict[str, object], path: str,
           source: Optional[str] = None,
           now: Optional[float] = None) -> Dict[str, int]:
    """Ingest a ``--bench-json`` payload into the history file.

    Returns ``{"added": fresh keys, "updated": re-run keys}`` —
    updates still append (the file is a log); dedup happens at load.
    """
    existing = {record_key(r) for r in load_history(path)}
    records = payload_records(payload, source=source, now=now)
    added = sum(1 for r in records if record_key(r) not in existing)
    append_history(path, records)
    return {"added": added, "updated": len(records) - added}


def trend_rows(history: List[Dict[str, object]],
               bench: Optional[str] = None) -> List[Dict[str, object]]:
    """Per-benchmark time-ordered series with step-over-step deltas."""
    rows: List[Dict[str, object]] = []
    last: Dict[Tuple[object, object], float] = {}
    for rec in history:
        if bench and rec.get("bench") != bench:
            continue
        rate = rate_of(rec)
        if rate is None:
            continue
        key = (rec.get("bench"), rec.get("fingerprint"))
        prev = last.get(key)
        last[key] = rate
        sha = rec.get("git_sha")
        rows.append({
            "bench": rec.get("bench"),
            "fingerprint": rec.get("fingerprint"),
            "git_sha": sha,
            "sha": (str(sha)[:9] if sha else "-"),
            "time": rec.get("time"),
            "rate": round(rate, 3),
            "delta_pct": (round(100.0 * (rate - prev) / prev, 1)
                          if prev else None),
        })
    return rows


def check(history: List[Dict[str, object]],
          current: Optional[List[Dict[str, object]]] = None,
          rel_tol: Optional[float] = None,
          mad_k: float = MAD_K,
          min_history: int = MIN_HISTORY) -> List[Dict[str, object]]:
    """Judge each current point against its same-fingerprint history.

    ``current`` defaults to the latest history point per
    (bench, fingerprint).  Baseline = median of the *other* points;
    a point regresses when its rate falls below
    ``median - max(rel_tol * median, mad_k * 1.4826 * MAD)`` — the
    relative floor keeps tight-MAD benches from tripping on
    micro-noise, the MAD term widens the band for jittery ones.
    Fewer than ``min_history`` baseline points: status ``no-baseline``
    (never a failure — the gate arms itself as history accrues).
    """
    if rel_tol is None:
        rel_tol = rel_tol_default()
    if current is None:
        latest: Dict[Tuple[object, object], Dict[str, object]] = {}
        for rec in history:
            if rate_of(rec) is None:
                continue
            latest[(rec.get("bench"), rec.get("fingerprint"))] = rec
        current = list(latest.values())
    results = []
    for cur in current:
        rate = rate_of(cur)
        row: Dict[str, object] = {
            "bench": cur.get("bench"),
            "fingerprint": cur.get("fingerprint"),
            "rate": (round(rate, 3) if rate is not None else None),
        }
        if rate is None:
            row.update(status="no-rate", baseline_n=0)
            results.append(row)
            continue
        cur_key = record_key(cur)
        baseline = [r for r in (rate_of(rec) for rec in history
                                if rec.get("bench") == cur.get("bench")
                                and rec.get("fingerprint")
                                == cur.get("fingerprint")
                                and record_key(rec) != cur_key)
                    if r is not None]
        row["baseline_n"] = len(baseline)
        if len(baseline) < min_history:
            row["status"] = "no-baseline"
            results.append(row)
            continue
        med = median(baseline)
        mad = median(abs(x - med) for x in baseline)
        band = max(rel_tol * med, mad_k * MAD_SIGMA * mad)
        threshold = med - band
        row.update(median=round(med, 3), mad=round(mad, 3),
                   threshold=round(threshold, 3),
                   ratio=round(rate / med, 3) if med else None)
        if rate < threshold:
            row["status"] = "regression"
        elif med and rate > med * (1.0 + rel_tol):
            row["status"] = "improved"
        else:
            row["status"] = "ok"
        results.append(row)
    return results


def render_check(results: List[Dict[str, object]]) -> str:
    """ASCII verdict table plus a one-line summary."""
    lines = [f"  {'bench':<40} {'rate':>12} {'median':>12} "
             f"{'thresh':>12} {'n':>3}  status"]
    for row in sorted(results, key=lambda r: str(r.get("bench"))):
        lines.append(
            f"  {str(row.get('bench')):<40} "
            f"{_fmt(row.get('rate')):>12} {_fmt(row.get('median')):>12} "
            f"{_fmt(row.get('threshold')):>12} "
            f"{row.get('baseline_n', 0):>3}  {row['status']}")
    n_reg = sum(1 for r in results if r["status"] == "regression")
    n_armed = sum(1 for r in results
                  if r["status"] in ("ok", "improved", "regression"))
    lines.append(f"{len(results)} benchmark(s): {n_armed} gated, "
                 f"{n_reg} regression(s)")
    return "\n".join(lines)


def render_trend(rows: List[Dict[str, object]]) -> str:
    lines = [f"  {'bench':<40} {'sha':<10} {'rate':>12} {'delta':>8}"]
    for row in rows:
        delta = row.get("delta_pct")
        lines.append(
            f"  {str(row.get('bench')):<40} {row['sha']:<10} "
            f"{_fmt(row.get('rate')):>12} "
            f"{('%+.1f%%' % delta) if delta is not None else '-':>8}")
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    return f"{value:.3f}" if isinstance(value, (int, float)) else "-"
