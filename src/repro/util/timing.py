"""Deprecated timing helpers — superseded by :mod:`repro.obs`.

:class:`Stopwatch` now lives in :mod:`repro.obs.metrics` (same API,
backed by a private metrics registry) and is re-exported here.
:func:`timed` is kept as a shim: instead of printing to stdout it runs
an :func:`repro.obs.span` (so the elapsed time lands in the telemetry
snapshot) and reports through :mod:`logging`, emitting a
:class:`DeprecationWarning` on use.
"""

from __future__ import annotations

import logging
import warnings
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from ..obs.metrics import Stopwatch

__all__ = ["Stopwatch", "timed"]

logger = logging.getLogger("repro.timing")


@contextmanager
def timed(label: str = "") -> Iterator[None]:
    """Deprecated: time a block via ``repro.obs.span`` instead.

    The shim still times the block — as an obs span named after the
    label, logged at INFO level — but no longer prints to stdout.
    """
    warnings.warn(
        "repro.util.timing.timed is deprecated; use repro.obs.span "
        "(spans feed the telemetry snapshot) or logging directly",
        DeprecationWarning, stacklevel=3)
    from .. import obs

    name = label or "timed"
    t0 = perf_counter()
    try:
        with obs.span(name):
            yield
    finally:
        logger.info("[%s] %.3fs", name, perf_counter() - t0)
