"""Lightweight timing helpers (profiling-first workflow per the guides)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock segments."""

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(f"{name:30s} {self.totals[name]:9.3f}s "
                         f"x{self.counts[name]}")
        return "\n".join(lines)


@contextmanager
def timed(label: str = "") -> Iterator[None]:
    """Print elapsed wall time of a block (debug convenience)."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        print(f"[{label or 'timed'}] {time.perf_counter() - t0:.3f}s")
