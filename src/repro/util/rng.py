"""Deterministic random-stream management.

Campaigns spawn one independent, reproducible stream per task from a
single root seed using :class:`numpy.random.SeedSequence`, so results
are bit-identical regardless of execution order or worker count —
a requirement for the paper's "deterministically chosen" configurations.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[np.random.Generator, int, None]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / int seed / Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent 64-bit seeds from ``root_seed``."""
    ss = np.random.SeedSequence(root_seed)
    return [int(s.generate_state(1, dtype=np.uint64)[0])
            for s in ss.spawn(count)]


def task_seed(root_seed: int, task_index: int) -> int:
    """Stable per-task seed (independent of how many tasks exist)."""
    ss = np.random.SeedSequence(entropy=root_seed,
                                spawn_key=(int(task_index),))
    return int(ss.generate_state(1, dtype=np.uint64)[0])
