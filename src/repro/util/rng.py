"""Deterministic random-stream management.

Campaigns spawn one independent, reproducible stream per task from a
single root seed using :class:`numpy.random.SeedSequence`, so results
are bit-identical regardless of execution order or worker count —
a requirement for the paper's "deterministically chosen" configurations.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[np.random.Generator, int, None]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / int seed / Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent 64-bit seeds from ``root_seed``."""
    ss = np.random.SeedSequence(root_seed)
    return [int(s.generate_state(1, dtype=np.uint64)[0])
            for s in ss.spawn(count)]


def derive_seed(base_seed: int, *path: int) -> int:
    """Derive a child seed from ``base_seed`` along an integer path.

    Uses ``SeedSequence`` spawn keys, so children are statistically
    independent of each other and of the base stream, and the value
    depends only on ``(base_seed, path)`` — never on how many siblings
    exist or in which order they are derived.
    """
    ss = np.random.SeedSequence(entropy=int(base_seed),
                                spawn_key=tuple(int(p) for p in path))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def task_seed(root_seed: int, task_index: int) -> int:
    """Stable per-task seed (independent of how many tasks exist)."""
    return derive_seed(root_seed, task_index)


def block_seed(task_seed_: int, block_index: int) -> int:
    """Seed for one fixed-size simulation block of a chunked task.

    Chunked execution partitions a task's shots into canonical blocks;
    each block owns an independent stream derived from the task seed,
    so results are identical however the blocks are grouped into
    chunks, scheduled, or resumed.
    """
    return derive_seed(task_seed_, block_index)


def frame_ref_seed(task_seed_: int) -> int:
    """Seed for a task's frame-backend reference pass.

    Uses a two-element spawn path so it can never collide with any
    single-index :func:`block_seed` stream, however deep a campaign's
    block counter runs.  Compiled once per task, the reference sample —
    and therefore every block's frame stream — is fixed by the task
    seed alone, preserving the chunking-invariance contract.
    """
    return derive_seed(task_seed_, 1, 0)
