"""Shared utilities: RNG spawning, parallel map, timing."""

from .parallel import default_workers, parallel_map
from .rng import as_generator, spawn_seeds, task_seed
from .timing import Stopwatch, timed

__all__ = [
    "parallel_map",
    "default_workers",
    "as_generator",
    "spawn_seeds",
    "task_seed",
    "Stopwatch",
    "timed",
]
