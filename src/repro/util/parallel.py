"""Process-level parallel map with serial fallback.

Campaign workloads are embarrassingly parallel across configuration
points (per the HPC guides: distribute coarse-grained independent tasks,
keep NumPy vectorization within each task).  ``parallel_map`` uses a
``ProcessPoolExecutor`` when more than one worker is requested and falls
back to a plain loop otherwise — also transparently when the platform
cannot fork (or the function/arguments fail to pickle), so library users
never lose results to infrastructure details.

The worker count defaults to ``REPRO_WORKERS`` (env var) or the CPU
count, capped by the number of tasks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` or ``os.cpu_count()``."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 max_workers: Optional[int] = None,
                 chunksize: int = 1) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable.
    items:
        Task sequence; each item must be picklable for the process pool.
    max_workers:
        Pool size; ``None`` uses :func:`default_workers`, ``1`` forces
        the serial path.
    chunksize:
        Items per inter-process message (raise for many tiny tasks).
    """
    items = list(items)
    if not items:
        return []
    workers = default_workers() if max_workers is None else max(1, max_workers)
    workers = min(workers, len(items))
    if workers == 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, ValueError, AttributeError, ImportError,
            BrokenProcessPool):
        # Pool unavailable (sandbox, pickling, resource limits): degrade
        # gracefully to the serial path rather than losing the campaign.
        return [fn(item) for item in items]
