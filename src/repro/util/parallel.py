"""Process-level parallel map with serial fallback.

Campaign workloads are embarrassingly parallel across configuration
points (per the HPC guides: distribute coarse-grained independent tasks,
keep NumPy vectorization within each task).  ``parallel_map`` uses a
``ProcessPoolExecutor`` when more than one worker is requested and falls
back to a plain loop otherwise — also transparently when the platform
cannot fork (or the function/arguments fail to pickle), so library users
never lose results to infrastructure details.

The worker count defaults to ``REPRO_WORKERS`` (env var) or the CPU
count, capped by the number of tasks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` or ``os.cpu_count()``."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 max_workers: Optional[int] = None,
                 chunksize: int = 1,
                 on_result: Optional[Callable[[int, R], None]] = None
                 ) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable.
    items:
        Task sequence; each item must be picklable for the process pool.
    max_workers:
        Pool size; ``None`` uses :func:`default_workers`, ``1`` forces
        the serial path.
    chunksize:
        Accepted for backward compatibility; unused since the pool
        path moved from ``map`` to per-item ``submit`` (campaign tasks
        are coarse, so message batching never paid for itself).
    on_result:
        Optional ``(index, result)`` callback fired in the *calling*
        process as each item finishes (completion order in the pool
        path, so a slow point never delays checkpointing the fast ones
        queued behind it) — the hook campaign checkpointing uses to
        persist finished points before the whole map completes.
    """
    items = list(items)
    if not items:
        return []
    results: List[Optional[R]] = [None] * len(items)
    delivered = [False] * len(items)

    def deliver(index: int, result: R) -> None:
        # Fired exactly once per item, and *outside* the pool-failure
        # net below: a raising callback (e.g. a checkpoint write
        # hitting a full disk) must surface, not masquerade as a
        # broken pool and trigger a silent re-run.
        if on_result is not None:
            on_result(index, result)
        results[index] = result
        delivered[index] = True

    #: Pool unavailable (sandbox, pickling, resource limits): degrade
    #: gracefully to the serial path rather than losing the campaign.
    pool_errors = (OSError, ValueError, AttributeError, ImportError,
                   BrokenProcessPool)
    workers = default_workers() if max_workers is None else max(1, max_workers)
    workers = min(workers, len(items))
    if workers > 1:
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except pool_errors:
            pass
        if pool is not None:
            with pool:
                # submit() rather than map(): on failure the pending
                # futures can be cancelled individually (the documented
                # safe path — shutdown(cancel_futures=True) can
                # deadlock against a feeder thread killed by a
                # pickling error), so the pool doesn't grind through a
                # doomed queue whose results would be discarded.
                futures = {}
                try:
                    for i, item in enumerate(items):
                        futures[pool.submit(fn, item)] = i
                except pool_errors:
                    # Pool died while the queue was still being fed
                    # (e.g. a worker OOM-killed mid-submission): keep
                    # the futures submitted so far — the drain below
                    # salvages any that completed, the broken ones trip
                    # the same net, and the serial path re-runs the
                    # rest — instead of letting the error escape.
                    pass
                try:
                    for future in as_completed(futures):
                        try:
                            result = future.result()
                        except pool_errors:
                            for pending in futures:
                                pending.cancel()
                            break
                        deliver(futures[future], result)
                except BaseException:
                    # deliver() failed: stop feeding the pool before
                    # the error unwinds through the executor shutdown.
                    for pending in futures:
                        pending.cancel()
                    raise
    # Serial path — and whatever a pool that died part-way did not
    # deliver: delivered items are never re-run (their side effects,
    # like store checkpoints, happened exactly once).
    for i, item in enumerate(items):
        if not delivered[i]:
            deliver(i, fn(item))
    return results
