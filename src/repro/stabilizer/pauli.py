"""Pauli-string algebra in the symplectic (x, z) representation.

A Pauli operator on ``n`` qubits is stored as two length-``n`` binary
vectors ``x`` and ``z`` plus a phase exponent ``phase`` such that the
operator equals ``i**phase * prod_j X_j^{x_j} Z_j^{z_j}``.

The same convention underlies the tableau simulators, so this module is
both a user-facing utility (stabilizer bookkeeping in the code classes)
and the reference implementation the simulators are tested against.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


class PauliString:
    """An n-qubit Pauli operator with phase ``i**phase``.

    Parameters
    ----------
    x, z:
        Binary arrays (or sequences) of equal length.
    phase:
        Phase exponent modulo 4 (``i**phase``).  Hermitian Pauli strings
        have phase 0 or 2 after accounting for the ``i`` absorbed into
        each ``Y = i X Z``; this class tracks the *global* convention
        where the stored operator is ``i**phase * X^x Z^z``.
    """

    __slots__ = ("x", "z", "phase")

    def __init__(self, x, z, phase: int = 0) -> None:
        self.x = np.asarray(x, dtype=np.uint8) % 2
        self.z = np.asarray(z, dtype=np.uint8) % 2
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be equal-length 1-D arrays")
        self.phase = int(phase) % 4

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "PauliString":
        return cls(np.zeros(n, dtype=np.uint8), np.zeros(n, dtype=np.uint8))

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Parse e.g. ``"+XIZ"``, ``"-YY"``, ``"iXZ"``, ``"XX"``.

        The leftmost character of the body acts on qubit 0.
        """
        phase = 0
        body = label
        while body and body[0] in "+-i":
            if body[0] == "-":
                phase += 2
            elif body[0] == "i":
                phase += 1
            body = body[1:]
        if not body:
            raise ValueError(f"empty Pauli label: {label!r}")
        xs, zs = [], []
        n_y = 0
        for ch in body.upper():
            if ch not in _CHAR_TO_XZ:
                raise ValueError(f"bad Pauli character {ch!r} in {label!r}")
            xb, zb = _CHAR_TO_XZ[ch]
            xs.append(xb)
            zs.append(zb)
            n_y += xb & zb
        # Y = i XZ, so a label "Y" corresponds to x=z=1 with an extra i.
        return cls(np.array(xs), np.array(zs), (phase + n_y) % 4)

    @classmethod
    def single(cls, n: int, qubit: int, kind: str) -> "PauliString":
        """Weight-one Pauli ``kind`` in an n-qubit register."""
        p = cls.identity(n)
        xb, zb = _CHAR_TO_XZ[kind.upper()]
        p.x[qubit] = xb
        p.z[qubit] = zb
        if xb and zb:
            p.phase = 1
        return p

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return int(self.x.shape[0])

    @property
    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return int(np.count_nonzero(self.x | self.z))

    def support(self) -> Tuple[int, ...]:
        return tuple(int(q) for q in np.nonzero(self.x | self.z)[0])

    def is_hermitian(self) -> bool:
        """True when the operator is Hermitian (phase real after Y-factors)."""
        n_y = int(np.count_nonzero(self.x & self.z))
        return (self.phase - n_y) % 2 == 0

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """Symplectic inner product test: True iff the operators commute."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        sym = np.count_nonzero(self.x & other.z) + np.count_nonzero(self.z & other.x)
        return sym % 2 == 0

    def __mul__(self, other: "PauliString") -> "PauliString":
        """Operator product ``self @ other`` (self applied after other)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        # (X^x1 Z^z1)(X^x2 Z^z2): commuting Z^z1 past X^x2 yields
        # (-1)^(z1.x2) = i^(2 z1.x2).
        phase = (self.phase + other.phase
                 + 2 * int(np.count_nonzero(self.z & other.x))) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, phase)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (np.array_equal(self.x, other.x)
                and np.array_equal(self.z, other.z)
                and self.phase == other.phase)

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    def __neg__(self) -> "PauliString":
        return PauliString(self.x, self.z, self.phase + 2)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def label(self) -> str:
        """Canonical label, e.g. ``"-XIY"``; one char per qubit."""
        chars = []
        n_y = 0
        for xb, zb in zip(self.x, self.z):
            chars.append(_XZ_TO_CHAR[(int(xb), int(zb))])
            n_y += int(xb) & int(zb)
        ph = (self.phase - n_y) % 4
        prefix = {0: "+", 1: "i", 2: "-", 3: "-i"}[ph]
        return prefix + "".join(chars)

    def __repr__(self) -> str:
        return f"PauliString({self.label()!r})"

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (for tests on few qubits only)."""
        I = np.eye(2, dtype=complex)
        X = np.array([[0, 1], [1, 0]], dtype=complex)
        Z = np.array([[1, 0], [0, -1]], dtype=complex)
        out = np.array([[1.0 + 0j]])
        for xb, zb in zip(self.x, self.z):
            m = I
            if xb and zb:
                m = X @ Z
            elif xb:
                m = X
            elif zb:
                m = Z
            out = np.kron(out, m)
        return (1j ** self.phase) * out


def symplectic_commutes(x1: np.ndarray, z1: np.ndarray,
                        x2: np.ndarray, z2: np.ndarray) -> np.ndarray:
    """Vectorized commutation test over batches of Pauli bit-vectors.

    Returns a boolean array: True where the row pairs commute.  Inputs
    broadcast against each other along leading dimensions.
    """
    sym = (np.sum(x1 & z2, axis=-1, dtype=np.int64)
           + np.sum(z1 & x2, axis=-1, dtype=np.int64)) % 2
    return sym == 0
