"""Stabilizer (Clifford) simulation.

* :class:`PauliString` — symplectic Pauli algebra.
* :class:`Tableau` — Aaronson–Gottesman tableau (single state).
* :class:`TableauSimulator` — single-shot reference simulator.
* :class:`BatchTableauSimulator` — vectorized multi-shot simulator.
* :func:`random_clifford_circuit` — test-circuit generation.
"""

from .pauli import PauliString, symplectic_commutes
from .tableau import Tableau
from .simulator import TableauSimulator, run_shot
from .batch import BatchTableauSimulator
from .random_clifford import (
    random_clifford_circuit,
    random_stabilizer_state_circuit,
)

__all__ = [
    "PauliString",
    "symplectic_commutes",
    "Tableau",
    "TableauSimulator",
    "run_shot",
    "BatchTableauSimulator",
    "random_clifford_circuit",
    "random_stabilizer_state_circuit",
]
