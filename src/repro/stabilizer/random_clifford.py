"""Random Clifford-circuit generation for property-based testing.

Not a uniform sampler over the Clifford group — just a convenient way to
produce diverse circuits (optionally with measurements and resets) that
exercise every code path of the simulators.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import Circuit, GateType

_DEFAULT_UNITARIES = (
    GateType.H,
    GateType.S,
    GateType.SDG,
    GateType.X,
    GateType.Y,
    GateType.Z,
    GateType.CX,
    GateType.CZ,
    GateType.SWAP,
)


def random_clifford_circuit(
    num_qubits: int,
    num_gates: int,
    rng: Optional[np.random.Generator | int] = None,
    gate_set: Sequence[GateType] = _DEFAULT_UNITARIES,
    measure_prob: float = 0.0,
    reset_prob: float = 0.0,
) -> Circuit:
    """Generate a random circuit.

    Parameters
    ----------
    num_qubits, num_gates:
        Register width and number of operations.
    rng:
        Seed or generator for reproducibility.
    gate_set:
        Unitary gate types to draw from (two-qubit types skipped when
        ``num_qubits == 1``).
    measure_prob, reset_prob:
        Per-site probability of emitting a measurement / reset instead
        of a unitary.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    from ..circuits.gates import TWO_QUBIT_GATES

    pool = [g for g in gate_set
            if num_qubits >= 2 or g not in TWO_QUBIT_GATES]
    if not pool:
        raise ValueError("empty gate pool")
    circuit = Circuit(num_qubits, name="random_clifford")
    cbit = 0
    for _ in range(num_gates):
        u = rng.random()
        if u < measure_prob:
            q = int(rng.integers(num_qubits))
            circuit.measure(q, cbit)
            cbit += 1
            continue
        if u < measure_prob + reset_prob:
            circuit.reset(int(rng.integers(num_qubits)))
            continue
        gt = pool[int(rng.integers(len(pool)))]
        if gt in TWO_QUBIT_GATES:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit._add(gt, int(a), int(b))  # noqa: SLF001 - internal builder
        else:
            circuit._add(gt, int(rng.integers(num_qubits)))  # noqa: SLF001
    return circuit


def random_stabilizer_state_circuit(
    num_qubits: int,
    rng: Optional[np.random.Generator | int] = None,
    depth_factor: int = 8,
) -> Circuit:
    """A random unitary circuit preparing a random-ish stabilizer state."""
    return random_clifford_circuit(
        num_qubits, depth_factor * num_qubits, rng=rng)
