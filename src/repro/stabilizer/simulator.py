"""Single-shot stabilizer circuit simulator (reference implementation).

Executes one shot of a :class:`~repro.circuits.circuit.Circuit` on a
:class:`~repro.stabilizer.tableau.Tableau`.  Exact for Clifford +
measure/reset circuits.  Used as the correctness oracle for the batched
simulator and directly by tests; campaign code uses the batch version.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import Circuit, Gate, GateType
from .pauli import PauliString
from .tableau import Tableau


class TableauSimulator:
    """Stateful single-shot simulator.

    Parameters
    ----------
    num_qubits:
        Register width.
    rng:
        NumPy random generator (or an int seed) supplying random
        measurement outcomes.
    """

    def __init__(self, num_qubits: int,
                 rng: Optional[np.random.Generator | int] = None) -> None:
        self.tableau = Tableau(num_qubits)
        if rng is None:
            rng = np.random.default_rng()
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng
        self.record: Dict[int, int] = {}

    @property
    def num_qubits(self) -> int:
        return self.tableau.n

    # ------------------------------------------------------------------
    def apply(self, gate: Gate) -> Optional[int]:
        """Apply one gate; returns the outcome for measurements."""
        t = self.tableau
        gt = gate.gate_type
        if gt is GateType.I or gt is GateType.BARRIER:
            return None
        if gt is GateType.X:
            t.x_gate(gate.qubits[0])
        elif gt is GateType.Y:
            t.y_gate(gate.qubits[0])
        elif gt is GateType.Z:
            t.z_gate(gate.qubits[0])
        elif gt is GateType.H:
            t.h(gate.qubits[0])
        elif gt is GateType.S:
            t.s(gate.qubits[0])
        elif gt is GateType.SDG:
            t.sdg(gate.qubits[0])
        elif gt is GateType.CX:
            t.cx(*gate.qubits)
        elif gt is GateType.CZ:
            t.cz(*gate.qubits)
        elif gt is GateType.SWAP:
            t.swap(*gate.qubits)
        elif gt is GateType.RESET:
            t.reset(gate.qubits[0], self.rng)
        elif gt is GateType.MEASURE:
            outcome = t.measure(gate.qubits[0], self.rng)
            self.record[gate.cbit] = outcome
            return outcome
        else:  # pragma: no cover - defensive
            raise NotImplementedError(gt)
        return None

    def run(self, circuit: Circuit) -> Dict[int, int]:
        """Execute every gate in order; returns {cbit: outcome}."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit wider than simulator register")
        for gate in circuit:
            self.apply(gate)
        return dict(self.record)

    # ------------------------------------------------------------------
    def measure(self, qubit: int) -> int:
        return self.tableau.measure(qubit, self.rng)

    def reset(self, qubit: int) -> None:
        self.tableau.reset(qubit, self.rng)

    def expectation(self, pauli: PauliString) -> int:
        return self.tableau.expectation(pauli)

    def stabilizers(self):
        return self.tableau.stabilizers()


def run_shot(circuit: Circuit, seed: Optional[int] = None) -> Dict[int, int]:
    """Convenience: run one shot of ``circuit`` from |0...0>."""
    sim = TableauSimulator(circuit.num_qubits, rng=seed)
    return sim.run(circuit)
