"""Aaronson–Gottesman stabilizer tableau (single state).

The tableau tracks ``2n`` rows — ``n`` destabilizers followed by ``n``
stabilizers — each a Pauli in the symplectic representation, plus a sign
bit per row.  Gate conjugation and measurement follow the CHP algorithm
(Aaronson & Gottesman, "Improved simulation of stabilizer circuits",
2004).  This is the *reference* implementation; the vectorized batch
simulator in :mod:`repro.stabilizer.batch` is validated against it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .pauli import PauliString


def _g(xi: np.ndarray, zi: np.ndarray, xh: np.ndarray, zh: np.ndarray) -> np.ndarray:
    """Phase function of the CHP ``rowsum`` (exponent of i, in {-1,0,1}).

    ``g(x_i, z_i, x_h, z_h)`` gives the exponent contributed by one
    column when multiplying Pauli row ``i`` into row ``h``.
    """
    xi = xi.astype(np.int8)
    zi = zi.astype(np.int8)
    xh = xh.astype(np.int8)
    zh = zh.astype(np.int8)
    return (
        (xi & zi) * (zh - xh)
        + (xi & (1 - zi)) * (zh * (2 * xh - 1))
        + ((1 - xi) & zi) * (xh * (1 - 2 * zh))
    )


class Tableau:
    """Stabilizer tableau for ``n`` qubits, initialised to |0...0>."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        n = int(num_qubits)
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # Destabilizer i = X_i ; stabilizer i = Z_i.
        self.x[np.arange(n), np.arange(n)] = 1
        self.z[np.arange(n, 2 * n), np.arange(n)] = 1

    # ------------------------------------------------------------------
    # Gate conjugations (in-place, O(n) each)
    # ------------------------------------------------------------------
    def h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = self.z[:, a].copy(), self.x[:, a].copy()

    def s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def sdg(self, a: int) -> None:
        self.r ^= self.x[:, a] & (self.z[:, a] ^ 1)
        self.z[:, a] ^= self.x[:, a]

    def x_gate(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def y_gate(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def z_gate(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def cx(self, a: int, b: int) -> None:
        """CNOT with control ``a``, target ``b``."""
        self.r ^= self.x[:, a] & self.z[:, b] & (self.x[:, b] ^ self.z[:, a] ^ 1)
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    # ------------------------------------------------------------------
    # rowsum
    # ------------------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        """Row ``h`` <- row ``h`` * row ``i`` with exact sign tracking."""
        total = (2 * int(self.r[h]) + 2 * int(self.r[i])
                 + int(_g(self.x[i], self.z[i], self.x[h], self.z[h]).sum()))
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # ------------------------------------------------------------------
    # Measurement / reset
    # ------------------------------------------------------------------
    def measure(self, a: int, rng: np.random.Generator,
                forced_outcome: Optional[int] = None) -> int:
        """Measure qubit ``a`` in the Z basis; collapses the state.

        ``forced_outcome`` pins the result of a *random* measurement
        (used by tests); deterministic outcomes ignore it.
        """
        n = self.n
        stab_x = self.x[n:, a]
        idx = np.nonzero(stab_x)[0]
        if idx.size:
            p = int(idx[0]) + n
            # All other rows containing X_a pick up row p.
            rows = np.nonzero(self.x[:, a])[0]
            for hh in rows:
                if hh != p:
                    self._rowsum(int(hh), p)
            # Destabilizer slot gets the old stabilizer row.
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            # New stabilizer is +/- Z_a.
            if forced_outcome is None:
                outcome = int(rng.integers(0, 2))
            else:
                outcome = int(forced_outcome) & 1
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, a] = 1
            self.r[p] = outcome
            return outcome
        # Deterministic: accumulate stabilizer rows flagged by the
        # destabilizers containing X_a into a scratch row.
        acc_x = np.zeros(n, dtype=np.uint8)
        acc_z = np.zeros(n, dtype=np.uint8)
        acc_r = 0
        for i in range(n):
            if self.x[i, a]:
                total = (2 * acc_r + 2 * int(self.r[i + n])
                         + int(_g(self.x[i + n], self.z[i + n],
                                  acc_x, acc_z).sum()))
                acc_r = (total % 4) // 2
                acc_x ^= self.x[i + n]
                acc_z ^= self.z[i + n]
        return acc_r

    def reset(self, a: int, rng: np.random.Generator) -> None:
        """Non-unitary reset of qubit ``a`` to |0> (measure, flip if 1)."""
        if self.measure(a, rng):
            self.x_gate(a)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _row_pauli(self, row: int) -> PauliString:
        x = self.x[row]
        z = self.z[row]
        n_y = int(np.count_nonzero(x & z))
        phase = (2 * int(self.r[row]) + n_y) % 4
        return PauliString(x.copy(), z.copy(), phase)

    def stabilizers(self) -> List[PauliString]:
        return [self._row_pauli(i) for i in range(self.n, 2 * self.n)]

    def destabilizers(self) -> List[PauliString]:
        return [self._row_pauli(i) for i in range(self.n)]

    def expectation(self, pauli: PauliString) -> int:
        """Expectation value of a Hermitian Pauli: -1, 0 or +1.

        Returns 0 when the operator anticommutes with some stabilizer
        (the state gives a uniformly random outcome), otherwise the
        definite value +/-1.
        """
        if pauli.num_qubits != self.n:
            raise ValueError("qubit-count mismatch")
        if not pauli.is_hermitian():
            raise ValueError("expectation defined for Hermitian Paulis only")
        n = self.n
        # Anticommutation with any stabilizer -> indefinite.
        for i in range(n, 2 * n):
            sym = (int(np.count_nonzero(pauli.x & self.z[i]))
                   + int(np.count_nonzero(pauli.z & self.x[i]))) % 2
            if sym:
                return 0
        # The operator is in the stabilizer group (up to sign): build the
        # generating product using destabilizer pairings.
        acc_x = np.zeros(n, dtype=np.uint8)
        acc_z = np.zeros(n, dtype=np.uint8)
        acc_r = 0
        for i in range(n):
            sym = (int(np.count_nonzero(pauli.x & self.z[i]))
                   + int(np.count_nonzero(pauli.z & self.x[i]))) % 2
            if sym:
                total = (2 * acc_r + 2 * int(self.r[i + n])
                         + int(_g(self.x[i + n], self.z[i + n],
                                  acc_x, acc_z).sum()))
                acc_r = (total % 4) // 2
                acc_x ^= self.x[i + n]
                acc_z ^= self.z[i + n]
        if not (np.array_equal(acc_x, pauli.x) and np.array_equal(acc_z, pauli.z)):
            raise AssertionError(
                "internal error: commuting Pauli not generated by stabilizers")
        # Compare signs: accumulated row represents (-1)^acc_r X^x Z^z with
        # the AG Y-convention; translate to the PauliString phase scheme.
        n_y = int(np.count_nonzero(acc_x & acc_z))
        acc_phase = (2 * acc_r + n_y) % 4
        delta = (pauli.phase - acc_phase) % 4
        if delta == 0:
            return 1
        if delta == 2:
            return -1
        raise AssertionError("non-Hermitian phase mismatch")

    def is_valid(self) -> bool:
        """Check the symplectic invariants of a well-formed tableau.

        Destabilizer i must anticommute with stabilizer i and commute
        with every other row; stabilizers must mutually commute.
        """
        n = self.n

        def sym(i: int, j: int) -> int:
            return (int(np.count_nonzero(self.x[i] & self.z[j]))
                    + int(np.count_nonzero(self.z[i] & self.x[j]))) % 2

        for i in range(n):
            for j in range(n):
                if sym(i + n, j + n) != 0:
                    return False
                want = 1 if i == j else 0
                if sym(i, j + n) != want:
                    return False
        # Full rank: stabilizer rows are independent iff the combined
        # (x|z) matrix has rank n over GF(2).
        m = np.concatenate([self.x[n:], self.z[n:]], axis=1).astype(np.uint8)
        return _gf2_rank(m) == n

    def copy(self) -> "Tableau":
        t = Tableau.__new__(Tableau)
        t.n = self.n
        t.x = self.x.copy()
        t.z = self.z.copy()
        t.r = self.r.copy()
        return t


def _gf2_rank(mat: np.ndarray) -> int:
    """Rank of a binary matrix over GF(2) (row elimination)."""
    m = mat.copy() % 2
    rank = 0
    rows, cols = m.shape
    col = 0
    for col in range(cols):
        pivots = np.nonzero(m[rank:, col])[0]
        if pivots.size == 0:
            continue
        piv = rank + int(pivots[0])
        if piv != rank:
            m[[rank, piv]] = m[[piv, rank]]
        others = np.nonzero(m[:, col])[0]
        for o in others:
            if o != rank:
                m[o] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank
