"""Vectorized batched stabilizer simulator.

Simulates ``B`` independent shots of a Clifford + measure/reset circuit
simultaneously, holding all ``B`` tableaus in contiguous NumPy arrays
and applying every operation across the batch in vectorized form.  Per
the HPC guides, the inner loops are expressed as whole-array boolean
algebra; Python-level loops only appear over qubits (bounded by the
register width) and circuit gates.

Stochastic noise is supported through *masked* operations: every gate
can be restricted to an arbitrary subset of shots, which is how the
noise executor applies a Pauli error to exactly the shots that sampled
one.  Masked measurement/reset handle the per-shot branching between
deterministic and random outcomes without leaving NumPy.

Memory: three arrays of shape ``(B, 2n, n)``/``(B, 2n)`` in ``uint8``;
for the paper's largest code (30 qubits) and 10⁴ shots this is ~75 MB.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import Circuit, Gate, GateType


def _g_batch(xi: np.ndarray, zi: np.ndarray,
             xh: np.ndarray, zh: np.ndarray) -> np.ndarray:
    """Vectorized CHP phase function; int8 inputs broadcast together."""
    return (
        (xi & zi) * (zh - xh)
        + (xi & (1 - zi)) * (zh * (2 * xh - 1))
        + ((1 - xi) & zi) * (xh * (1 - 2 * zh))
    )


class BatchTableauSimulator:
    """``batch_size`` independent stabilizer states evolved in lockstep.

    Parameters
    ----------
    num_qubits:
        Register width ``n``.
    batch_size:
        Number of shots ``B``.
    rng:
        Generator (or int seed) for random measurement outcomes.
    """

    def __init__(self, num_qubits: int, batch_size: int,
                 rng: Optional[np.random.Generator | int] = None) -> None:
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if batch_size <= 0:
            raise ValueError("need at least one shot")
        n = int(num_qubits)
        B = int(batch_size)
        self.n = n
        self.batch_size = B
        self.x = np.zeros((B, 2 * n, n), dtype=np.uint8)
        self.z = np.zeros((B, 2 * n, n), dtype=np.uint8)
        self.r = np.zeros((B, 2 * n), dtype=np.uint8)
        ar = np.arange(n)
        self.x[:, ar, ar] = 1
        self.z[:, ar + n, ar] = 1
        if rng is None:
            rng = np.random.default_rng()
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng

    # ------------------------------------------------------------------
    # Masked single-qubit Cliffords
    # ------------------------------------------------------------------
    def h(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            # Copy before assigning: xa/za alias the tableau columns.
            xa = self.x[:, :, a].copy()
            za = self.z[:, :, a]
            self.r ^= xa & za
            self.x[:, :, a] = za
            self.z[:, :, a] = xa
            return
        xa = self.x[mask, :, a]
        za = self.z[mask, :, a]
        self.r[mask] ^= xa & za
        self.x[mask, :, a] = za
        self.z[mask, :, a] = xa

    def s(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.r ^= self.x[:, :, a] & self.z[:, :, a]
            self.z[:, :, a] ^= self.x[:, :, a]
            return
        xa = self.x[mask, :, a]
        za = self.z[mask, :, a]
        self.r[mask] ^= xa & za
        self.z[mask, :, a] = za ^ xa

    def sdg(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.r ^= self.x[:, :, a] & (self.z[:, :, a] ^ 1)
            self.z[:, :, a] ^= self.x[:, :, a]
            return
        xa = self.x[mask, :, a]
        za = self.z[mask, :, a]
        self.r[mask] ^= xa & (za ^ 1)
        self.z[mask, :, a] = za ^ xa

    def x_gate(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.r ^= self.z[:, :, a]
        else:
            self.r[mask] ^= self.z[mask, :, a]

    def y_gate(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.r ^= self.x[:, :, a] ^ self.z[:, :, a]
        else:
            self.r[mask] ^= self.x[mask, :, a] ^ self.z[mask, :, a]

    def z_gate(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.r ^= self.x[:, :, a]
        else:
            self.r[mask] ^= self.x[mask, :, a]

    # ------------------------------------------------------------------
    # Masked two-qubit Cliffords
    # ------------------------------------------------------------------
    def cx(self, a: int, b: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            xa = self.x[:, :, a]
            xb = self.x[:, :, b]
            za = self.z[:, :, a]
            zb = self.z[:, :, b]
            self.r ^= xa & zb & (xb ^ za ^ 1)
            self.x[:, :, b] = xb ^ xa
            self.z[:, :, a] = za ^ zb
            return
        xa = self.x[mask, :, a]
        xb = self.x[mask, :, b]
        za = self.z[mask, :, a]
        zb = self.z[mask, :, b]
        self.r[mask] ^= xa & zb & (xb ^ za ^ 1)
        self.x[mask, :, b] = xb ^ xa
        self.z[mask, :, a] = za ^ zb

    def cz(self, a: int, b: int, mask: Optional[np.ndarray] = None) -> None:
        self.h(b, mask)
        self.cx(a, b, mask)
        self.h(b, mask)

    def swap(self, a: int, b: int, mask: Optional[np.ndarray] = None) -> None:
        if mask is None:
            self.x[:, :, [a, b]] = self.x[:, :, [b, a]]
            self.z[:, :, [a, b]] = self.z[:, :, [b, a]]
            return
        xa = self.x[mask, :, a].copy()
        self.x[mask, :, a] = self.x[mask, :, b]
        self.x[mask, :, b] = xa
        za = self.z[mask, :, a].copy()
        self.z[mask, :, a] = self.z[mask, :, b]
        self.z[mask, :, b] = za

    # ------------------------------------------------------------------
    # Measurement / reset
    # ------------------------------------------------------------------
    def measure(self, a: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Z-measurement of qubit ``a`` on the masked shots.

        Returns a ``(B,)`` uint8 array; entries outside the mask are 0
        and the corresponding states are untouched.
        """
        B = self.batch_size
        n = self.n
        if mask is None:
            mask = np.ones(B, dtype=bool)
        outcomes = np.zeros(B, dtype=np.uint8)
        if not mask.any():
            return outcomes
        rand_mask = mask & self.x[:, n:, a].any(axis=1)
        det_mask = mask & ~rand_mask
        if det_mask.any():
            outcomes[det_mask] = self._measure_det(a, det_mask)
        if rand_mask.any():
            outcomes[rand_mask] = self._measure_rand(a, rand_mask)
        return outcomes

    def _measure_det(self, a: int, mask: np.ndarray) -> np.ndarray:
        """Deterministic branch: qubit in a Z-eigenstate in these shots."""
        n = self.n
        S = np.nonzero(mask)[0]
        k = S.size
        acc_x = np.zeros((k, n), dtype=np.int8)
        acc_z = np.zeros((k, n), dtype=np.int8)
        acc_r = np.zeros(k, dtype=np.int64)
        xs = self.x[S]
        zs = self.z[S]
        rs = self.r[S]
        for i in range(n):
            sel = xs[:, i, a] == 1
            if not sel.any():
                continue
            xi = xs[:, i + n, :].astype(np.int8)
            zi = zs[:, i + n, :].astype(np.int8)
            gsum = _g_batch(xi, zi, acc_x, acc_z).sum(axis=1, dtype=np.int64)
            total = 2 * acc_r + 2 * rs[:, i + n].astype(np.int64) + gsum
            acc_r = np.where(sel, (total % 4) // 2, acc_r)
            acc_x = np.where(sel[:, None], acc_x ^ xi, acc_x)
            acc_z = np.where(sel[:, None], acc_z ^ zi, acc_z)
        return acc_r.astype(np.uint8)

    def _measure_rand(self, a: int, mask: np.ndarray) -> np.ndarray:
        """Random branch: some stabilizer anticommutes with Z_a."""
        n = self.n
        S = np.nonzero(mask)[0]
        k = S.size
        xs = self.x[S]
        zs = self.z[S]
        rs = self.r[S].astype(np.int64)
        # First stabilizer row with x=1 on column a, per shot.
        p = np.argmax(xs[:, n:, a], axis=1) + n  # (k,)
        rows = np.arange(k)
        row_xp = xs[rows, p, :]  # (k, n) uint8
        row_zp = zs[rows, p, :]
        row_rp = rs[rows, p]
        # Rows (destabilizer and stabilizer alike) containing X_a, except
        # row p itself, each absorb row p via rowsum.
        tgt = xs[:, :, a] == 1  # (k, 2n)
        tgt[rows, p] = False
        xi = row_xp[:, None, :].astype(np.int8)
        zi = row_zp[:, None, :].astype(np.int8)
        gsum = _g_batch(xi, zi, xs.astype(np.int8), zs.astype(np.int8)).sum(
            axis=2, dtype=np.int64)  # (k, 2n)
        total = 2 * rs + 2 * row_rp[:, None] + gsum
        new_r = ((total % 4) // 2).astype(np.uint8)
        rs_u8 = self.r[S]
        rs_u8 = np.where(tgt, new_r, rs_u8)
        xs = np.where(tgt[:, :, None], xs ^ row_xp[:, None, :], xs)
        zs = np.where(tgt[:, :, None], zs ^ row_zp[:, None, :], zs)
        # Destabilizer slot p-n receives the old stabilizer row p.
        xs[rows, p - n, :] = row_xp
        zs[rows, p - n, :] = row_zp
        rs_u8[rows, p - n] = row_rp.astype(np.uint8)
        # Row p becomes +/- Z_a with a fresh random outcome.
        outcome = self.rng.integers(0, 2, size=k, dtype=np.uint8)
        xs[rows, p, :] = 0
        zs[rows, p, :] = 0
        zs[rows, p, a] = 1
        rs_u8[rows, p] = outcome
        self.x[S] = xs
        self.z[S] = zs
        self.r[S] = rs_u8
        return outcome

    def reset(self, a: int, mask: Optional[np.ndarray] = None) -> None:
        """Reset qubit ``a`` to |0> on the masked shots."""
        outcomes = self.measure(a, mask)
        flip = outcomes.astype(bool)
        if mask is not None:
            flip &= mask
        if flip.any():
            self.x_gate(a, flip)

    # ------------------------------------------------------------------
    # Circuit execution
    # ------------------------------------------------------------------
    def apply(self, gate: Gate, mask: Optional[np.ndarray] = None,
              record: Optional[np.ndarray] = None) -> None:
        """Apply one gate (optionally masked) across the batch."""
        gt = gate.gate_type
        if gt is GateType.I or gt is GateType.BARRIER:
            return
        if gt is GateType.X:
            self.x_gate(gate.qubits[0], mask)
        elif gt is GateType.Y:
            self.y_gate(gate.qubits[0], mask)
        elif gt is GateType.Z:
            self.z_gate(gate.qubits[0], mask)
        elif gt is GateType.H:
            self.h(gate.qubits[0], mask)
        elif gt is GateType.S:
            self.s(gate.qubits[0], mask)
        elif gt is GateType.SDG:
            self.sdg(gate.qubits[0], mask)
        elif gt is GateType.CX:
            self.cx(*gate.qubits, mask=mask)
        elif gt is GateType.CZ:
            self.cz(*gate.qubits, mask=mask)
        elif gt is GateType.SWAP:
            self.swap(*gate.qubits, mask=mask)
        elif gt is GateType.RESET:
            self.reset(gate.qubits[0], mask)
        elif gt is GateType.MEASURE:
            outcomes = self.measure(gate.qubits[0], mask)
            if record is not None:
                if mask is None:
                    record[:, gate.cbit] = outcomes
                else:
                    record[mask, gate.cbit] = outcomes[mask]
        else:  # pragma: no cover - defensive
            raise NotImplementedError(gt)

    def run(self, circuit: Circuit) -> np.ndarray:
        """Run a (noise-free) circuit on every shot.

        Returns the measurement record, shape ``(B, num_cbits)`` uint8.
        """
        if circuit.num_qubits > self.n:
            raise ValueError("circuit wider than simulator register")
        record = np.zeros((self.batch_size, max(circuit.num_cbits, 1)),
                          dtype=np.uint8)
        for gate in circuit:
            self.apply(gate, record=record)
        return record

    # ------------------------------------------------------------------
    def shot_tableau(self, shot: int):
        """Extract one shot's state as a single :class:`Tableau` (testing)."""
        from .tableau import Tableau

        t = Tableau(self.n)
        t.x = self.x[shot].copy()
        t.z = self.z[shot].copy()
        t.r = self.r[shot].copy()
        return t
