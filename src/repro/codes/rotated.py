"""Rotated-surface-code lattice geometry.

Generates the plaquette structure of a rotated (checkerboard) surface
code on an ``R x C`` data grid:

* bulk plaquettes have four corners and alternate Z/X by checkerboard
  parity ``(pr + pc) % 2`` (Z on even);
* weight-2 boundary plaquettes appear on the top/bottom edges for X
  checks and on the left/right edges for Z checks, again following the
  checkerboard;
* the logical X operator is a vertical chain (column 0, weight ``R``)
  terminating on the X boundaries; the logical Z operator is a
  horizontal chain (row 0, weight ``C``) terminating on the Z
  boundaries.

Degenerate geometries fall out naturally: ``(R, 1)`` yields the
bit-flip repetition structure (only Z checks), ``(1, C)`` the
phase-flip one — matching the paper's observation that the XXZZ code at
distance ``(d, 1)`` behaves like a repetition code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Plaquette:
    """One stabilizer plaquette on the rotated lattice."""

    kind: str                      # "Z" or "X"
    position: Tuple[int, int]      # (pr, pc), plaquette grid coordinates
    data: Tuple[int, ...]          # data-qubit indices (row-major ids)


class RotatedLattice:
    """Plaquette layout for an ``R x C`` rotated surface code."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("lattice needs positive dimensions")
        self.rows = int(rows)
        self.cols = int(cols)
        self.z_plaquettes: List[Plaquette] = []
        self.x_plaquettes: List[Plaquette] = []
        self._build()

    # ------------------------------------------------------------------
    def data_index(self, r: int, c: int) -> int:
        """Row-major id of the data qubit at grid position (r, c)."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"({r}, {c}) outside {self.rows}x{self.cols}")
        return r * self.cols + c

    def data_position(self, idx: int) -> Tuple[int, int]:
        return divmod(idx, self.cols)

    @property
    def num_data(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def _corners(self, pr: int, pc: int) -> List[int]:
        out = []
        for dr in (0, 1):
            for dc in (0, 1):
                r, c = pr + dr, pc + dc
                if 0 <= r < self.rows and 0 <= c < self.cols:
                    out.append(self.data_index(r, c))
        return out

    def _build(self) -> None:
        for pr in range(-1, self.rows):
            for pc in range(-1, self.cols):
                corners = self._corners(pr, pc)
                kind = "Z" if (pr + pc) % 2 == 0 else "X"
                if len(corners) == 4:
                    pass  # bulk: always kept
                elif len(corners) == 2:
                    top_bottom = pr in (-1, self.rows - 1)
                    left_right = pc in (-1, self.cols - 1)
                    # Degenerate 1-wide lattices: a plaquette can touch
                    # both boundary classes; classify by the longer axis.
                    if top_bottom and left_right:
                        top_bottom = self.cols >= self.rows
                        left_right = not top_bottom
                    if top_bottom and kind != "X":
                        continue
                    if left_right and kind != "Z":
                        continue
                else:
                    continue  # corners (weight 0/1) never host checks
                plaq = Plaquette(kind=kind, position=(pr, pc),
                                 data=tuple(corners))
                (self.z_plaquettes if kind == "Z"
                 else self.x_plaquettes).append(plaq)

    # ------------------------------------------------------------------
    def logical_x_data(self) -> Tuple[int, ...]:
        """Vertical X chain (column 0): weight ``rows``."""
        return tuple(self.data_index(r, 0) for r in range(self.rows))

    def logical_z_data(self) -> Tuple[int, ...]:
        """Horizontal Z chain (row 0): weight ``cols``."""
        return tuple(self.data_index(0, c) for c in range(self.cols))

    def __repr__(self) -> str:
        return (f"RotatedLattice({self.rows}x{self.cols}: "
                f"{len(self.z_plaquettes)} Z, {len(self.x_plaquettes)} X)")
