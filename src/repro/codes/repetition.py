"""Quantum repetition code (paper §IV-A, Fig. 2).

``d`` data qubits hold a GHZ-encoded logical qubit, ``d - 1`` ancillas
measure the nearest-neighbour parity checks, and one readout ancilla
collects the final logical parity: ``q_rep = 2d`` qubits in total.

* ``basis="Z"`` (bit-flip protection, the paper's configuration):
  GHZ in the computational basis, ``ZZ`` checks, distance ``(d, 1)``.
* ``basis="X"`` (phase-flip protection): GHZ in the Hadamard basis,
  ``XX`` checks, distance ``(1, d)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .base import StabilizerCode


class RepetitionCode(StabilizerCode):
    """Distance-``d`` repetition code.

    Parameters
    ----------
    d:
        Code distance (odd, >= 1).
    basis:
        ``"Z"`` for bit-flip protection (default, as in the paper's
        experiments) or ``"X"`` for phase-flip protection.
    """

    def __init__(self, d: int, basis: str = "Z") -> None:
        if d < 1 or d % 2 == 0:
            raise ValueError(f"repetition distance must be odd, got {d}")
        if basis not in ("Z", "X"):
            raise ValueError("basis must be 'Z' or 'X'")
        self.d = int(d)
        self.basis = basis
        self.distance: Tuple[int, int] = (d, 1) if basis == "Z" else (1, d)
        self.name = f"repetition-({self.distance[0]},{self.distance[1]})"

        self.data_qubits = list(range(d))
        ancillas = list(range(d, 2 * d - 1))
        checks = [(i, i + 1) for i in range(d - 1)]
        if basis == "Z":
            self.z_ancillas = ancillas
            self.z_plaquettes = checks
            self.x_ancillas = []
            self.x_plaquettes = []
        else:
            self.x_ancillas = ancillas
            self.x_plaquettes = checks
            self.z_ancillas = []
            self.z_plaquettes = []
        self.readout_qubit = 2 * d - 1
        # Transversal flip + whole-register parity readout (Fig. 2):
        # X^(x)d maps |0..0> -> |1..1>; Z^(x)d reads the parity (d odd).
        self.logical_x_support = tuple(range(d))
        self.logical_z_support = tuple(range(d))

    def qubit_positions(self) -> Optional[Dict[int, Tuple[float, float]]]:
        """Chain embedding: data at even half-steps, each check ancilla
        between its pair, the readout ancilla past the chain end."""
        pos: Dict[int, Tuple[float, float]] = {
            q: (0.0, 2.0 * q) for q in self.data_qubits}
        ancillas = self.z_ancillas or self.x_ancillas
        checks = self.z_plaquettes or self.x_plaquettes
        for anc, (a, b) in zip(ancillas, checks):
            pos[anc] = (0.0, float(a + b))
        pos[self.readout_qubit] = (0.0, 2.0 * self.d)
        return pos

    def __repr__(self) -> str:
        return (f"RepetitionCode(d={self.d}, basis={self.basis!r}, "
                f"qubits={self.num_qubits})")
