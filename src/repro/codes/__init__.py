"""QEC codes: repetition and XXZZ rotated surface code (paper §IV)."""

from .base import (
    MemoryExperiment,
    QubitRole,
    StabilizerCode,
    build_memory_experiment,
)
from .repetition import RepetitionCode
from .rotated import Plaquette, RotatedLattice
from .xxzz import XXZZCode

__all__ = [
    "StabilizerCode",
    "QubitRole",
    "MemoryExperiment",
    "build_memory_experiment",
    "RepetitionCode",
    "RotatedLattice",
    "Plaquette",
    "XXZZCode",
]
