"""Stabilizer-code abstractions and the memory-experiment builder.

A :class:`StabilizerCode` describes geometry only — which qubits are
data / ancilla / readout, which data sets each plaquette checks, and the
logical operator supports.  :func:`build_memory_experiment` turns that
geometry into the exact circuit shape of the paper's Figs. 1-2:

    init -> syndrome round -> logical gate -> syndrome round -> ancilla
    parity readout (optionally followed by transversal data measurement)

Qubit numbering follows the figures: data first, then Z-ancillas
("mz"), then X-ancillas ("mx"), then the readout ancilla.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import Circuit
from ..stabilizer.pauli import PauliString


class QubitRole(enum.Enum):
    """Function of a physical qubit inside the surface code."""

    DATA = "data"
    STABILIZER_Z = "mz"
    STABILIZER_X = "mx"
    READOUT = "readout"


class StabilizerCode(abc.ABC):
    """Geometry of a CSS surface code.

    Concrete subclasses populate, in ``__init__``:

    * ``data_qubits`` — list of data-qubit indices,
    * ``z_ancillas`` / ``x_ancillas`` — ancilla indices, aligned with
      ``z_plaquettes`` / ``x_plaquettes`` (tuples of data indices),
    * ``readout_qubit`` — the final parity ancilla,
    * ``logical_x_support`` / ``logical_z_support`` — data subsets
      realizing the logical X / Z operators,
    * ``distance`` — the ``(d_Z, d_X)`` tuple of the paper.
    """

    name: str = "code"
    distance: Tuple[int, int] = (1, 1)
    data_qubits: List[int]
    z_ancillas: List[int]
    x_ancillas: List[int]
    z_plaquettes: List[Tuple[int, ...]]
    x_plaquettes: List[Tuple[int, ...]]
    readout_qubit: int
    logical_x_support: Tuple[int, ...]
    logical_z_support: Tuple[int, ...]

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return (len(self.data_qubits) + len(self.z_ancillas)
                + len(self.x_ancillas) + 1)

    @property
    def num_data(self) -> int:
        return len(self.data_qubits)

    def role(self, qubit: int) -> QubitRole:
        if qubit in self.data_qubits:
            return QubitRole.DATA
        if qubit in self.z_ancillas:
            return QubitRole.STABILIZER_Z
        if qubit in self.x_ancillas:
            return QubitRole.STABILIZER_X
        if qubit == self.readout_qubit:
            return QubitRole.READOUT
        raise ValueError(f"qubit {qubit} not part of {self.name}")

    @property
    def measures_per_round(self) -> int:
        """Ancilla measurements per syndrome round — the round-boundary
        marker shared by the burst channel (it counts measurements to
        track rounds) and the detection geometry."""
        return len(self.z_ancillas) + len(self.x_ancillas)

    def qubit_positions(self) -> Optional[Dict[int, Tuple[float, float]]]:
        """Planar qubit coordinates in half-step units, or ``None``.

        Neighbouring data/ancilla qubits sit two half-steps apart, so
        device (graph) distance between qubits ``a`` and ``b`` is
        approximately ``(|dx| + |dy|) / 2``.  Consumers: the detection
        subsystem's strike localisation and model-inverted reweighting
        (:mod:`repro.detect.recovery`), which fall back to coarser
        plaquette-hop distances when a geometry has no embedding.
        """
        return None

    # ------------------------------------------------------------------
    # Pauli views (verification / tests)
    # ------------------------------------------------------------------
    def z_stabilizer_paulis(self) -> List[PauliString]:
        out = []
        for support in self.z_plaquettes:
            p = PauliString.identity(self.num_qubits)
            for q in support:
                p.z[q] = 1
            out.append(p)
        return out

    def x_stabilizer_paulis(self) -> List[PauliString]:
        out = []
        for support in self.x_plaquettes:
            p = PauliString.identity(self.num_qubits)
            for q in support:
                p.x[q] = 1
            out.append(p)
        return out

    def logical_x_pauli(self) -> PauliString:
        p = PauliString.identity(self.num_qubits)
        for q in self.logical_x_support:
            p.x[q] = 1
        return p

    def logical_z_pauli(self) -> PauliString:
        p = PauliString.identity(self.num_qubits)
        for q in self.logical_z_support:
            p.z[q] = 1
        return p

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the stabilizer-code invariants (used by tests)."""
        stabs = self.z_stabilizer_paulis() + self.x_stabilizer_paulis()
        for i, a in enumerate(stabs):
            for b in stabs[i + 1:]:
                if not a.commutes_with(b):
                    raise AssertionError(
                        f"stabilizers {a.label()} / {b.label()} anticommute")
        lx = self.logical_x_pauli()
        lz = self.logical_z_pauli()
        for s in stabs:
            if not s.commutes_with(lx):
                raise AssertionError(f"logical X anticommutes with {s.label()}")
            if not s.commutes_with(lz):
                raise AssertionError(f"logical Z anticommutes with {s.label()}")
        if lx.commutes_with(lz):
            raise AssertionError("logical X and Z must anticommute")
        if len(self.z_ancillas) != len(self.z_plaquettes):
            raise AssertionError("Z ancilla/plaquette count mismatch")
        if len(self.x_ancillas) != len(self.x_plaquettes):
            raise AssertionError("X ancilla/plaquette count mismatch")

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} d={self.distance} "
                f"qubits={self.num_qubits}>")


@dataclass
class MemoryExperiment:
    """A built memory-experiment circuit plus its classical-bit layout.

    Attributes
    ----------
    code:
        The code geometry.
    circuit:
        The full circuit (data init, syndrome rounds, logical gate,
        parity readout, optional data measurement).
    basis:
        ``"Z"`` — init |0>, transversal/logical X flip, Z-parity readout
        (the paper's configuration); ``"X"`` — the dual experiment.
    rounds:
        Number of syndrome-extraction rounds (paper: 2).
    z_syndrome_cbits / x_syndrome_cbits:
        ``[round][plaquette] -> cbit``.
    readout_cbit:
        Classical bit holding the raw (pre-decode) logical readout.
    data_cbits:
        ``{data qubit -> cbit}`` for the final transversal measurement,
        or ``None`` when not requested.
    expected_logical:
        Noise-free decoded value (1: the logical flip was applied).
    """

    code: StabilizerCode
    circuit: Circuit
    basis: str
    rounds: int
    z_syndrome_cbits: List[List[int]]
    x_syndrome_cbits: List[List[int]]
    readout_cbit: int
    data_cbits: Optional[Dict[int, int]]
    expected_logical: int = 1

    # -- record accessors ------------------------------------------------
    def syndromes(self, records: np.ndarray, basis: Optional[str] = None
                  ) -> np.ndarray:
        """Extract syndrome bits, shape ``(B, rounds, n_plaquettes)``.

        ``basis`` defaults to the plaquette type relevant for decoding
        this experiment ('Z'-basis memory decodes Z-plaquettes).
        """
        basis = basis or self.basis
        table = (self.z_syndrome_cbits if basis == "Z"
                 else self.x_syndrome_cbits)
        if not table or not table[0]:
            return np.zeros((records.shape[0], self.rounds, 0), dtype=np.uint8)
        idx = np.asarray(table)  # (rounds, n_plaq)
        return records[:, idx]

    def raw_readout(self, records: np.ndarray) -> np.ndarray:
        """The raw ancilla parity readout, shape ``(B,)``."""
        return records[:, self.readout_cbit]

    def data_measurements(self, records: np.ndarray) -> Optional[np.ndarray]:
        """Final data measurement bits ``(B, num_data)`` in data order."""
        if self.data_cbits is None:
            return None
        cols = [self.data_cbits[q] for q in self.code.data_qubits]
        return records[:, cols]


def build_memory_experiment(code: StabilizerCode, rounds: int = 2,
                            basis: str = "Z", logical_after: int = 1,
                            include_data_measurement: bool = True
                            ) -> MemoryExperiment:
    """Construct the paper's memory-experiment circuit for ``code``.

    Parameters
    ----------
    code:
        Code geometry (validated by the caller or tests).
    rounds:
        Syndrome-extraction rounds; the paper uses 2.
    basis:
        ``"Z"`` (paper default) or ``"X"`` for the dual experiment.
    logical_after:
        Index of the round *before* which the logical flip is applied
        (1 reproduces Figs. 1-2: stabilise, measure, flip, stabilise,
        measure).
    include_data_measurement:
        Append a transversal data measurement after the parity readout;
        needed by decoders that use a final syndrome reconstruction.
    """
    if basis not in ("Z", "X"):
        raise ValueError("basis must be 'Z' or 'X'")
    if rounds < 1:
        raise ValueError("need at least one syndrome round")
    if not 0 <= logical_after <= rounds:
        raise ValueError("logical_after out of range")

    nq = code.num_qubits
    circ = Circuit(nq, name=f"{code.name}-memory-{basis}")
    # Initialisation: simulator starts in |0...0>; X-basis memory adds H.
    if basis == "X":
        for q in code.data_qubits:
            circ.h(q, tag="init")

    cbit = 0
    z_cbits: List[List[int]] = []
    x_cbits: List[List[int]] = []

    def apply_logical() -> None:
        if basis == "Z":
            for q in code.logical_x_support:
                circ.x(q, tag="logical")
        else:
            for q in code.logical_z_support:
                circ.z(q, tag="logical")

    for r in range(rounds):
        if r == logical_after:
            apply_logical()
        # Stabilisation: Z-plaquettes (data controls ancilla)...
        for anc, support in zip(code.z_ancillas, code.z_plaquettes):
            for dq in support:
                circ.cx(dq, anc)
        # ...then X-plaquettes (Hadamard-conjugated ancilla controls).
        for anc, support in zip(code.x_ancillas, code.x_plaquettes):
            circ.h(anc)
            for dq in support:
                circ.cx(anc, dq)
            circ.h(anc)
        # Syndrome measurement round.
        zc = []
        for anc in code.z_ancillas:
            circ.measure(anc, cbit)
            zc.append(cbit)
            cbit += 1
        xc = []
        for anc in code.x_ancillas:
            circ.measure(anc, cbit)
            xc.append(cbit)
            cbit += 1
        z_cbits.append(zc)
        x_cbits.append(xc)
        if r < rounds - 1:
            for anc in list(code.z_ancillas) + list(code.x_ancillas):
                circ.reset(anc, tag="round-reset")
    if logical_after == rounds:
        apply_logical()

    # Raw logical readout through the dedicated ancilla (Figs. 1-2).
    # The parity CNOTs mutually commute; emitting them from the highest
    # data index down keeps the first one adjacent to the readout
    # ancilla under chain-like layouts, cutting SWAP overhead.
    ro = code.readout_qubit
    if basis == "Z":
        for dq in sorted(code.logical_z_support, reverse=True):
            circ.cx(dq, ro)
        circ.measure(ro, cbit)
    else:
        circ.h(ro)
        for dq in sorted(code.logical_x_support, reverse=True):
            circ.cx(ro, dq)
        circ.h(ro)
        circ.measure(ro, cbit)
    readout_cbit = cbit
    cbit += 1

    data_cbits: Optional[Dict[int, int]] = None
    if include_data_measurement:
        data_cbits = {}
        for dq in code.data_qubits:
            if basis == "X":
                circ.h(dq, tag="readout-basis")
            circ.measure(dq, cbit)
            data_cbits[dq] = cbit
            cbit += 1

    return MemoryExperiment(
        code=code, circuit=circ, basis=basis, rounds=rounds,
        z_syndrome_cbits=z_cbits, x_syndrome_cbits=x_cbits,
        readout_cbit=readout_cbit, data_cbits=data_cbits,
        expected_logical=1,
    )
