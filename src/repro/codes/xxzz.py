"""XXZZ rotated surface code (paper §IV-B, Fig. 1).

The XXZZ code is the CSS rotated surface code: ``XXXX``/``XX`` and
``ZZZZ``/``ZZ`` stabilizer plaquettes on a checkerboard over a
``d_Z x d_X`` data grid, with non-periodic boundaries.  Total qubit
count is ``2 d_Z d_X``: ``d_Z d_X`` data, ``d_Z d_X - 1`` stabilizer
ancillas and one readout ancilla — matching the paper's Fig. 1 (18
qubits at distance (3,3)).

Distance semantics follow the paper: ``d_Z`` is the code distance
against bit-flips (weight of the minimal logical X, a vertical chain)
and ``d_X`` the distance against phase-flips (horizontal logical Z).
Degenerate distances reproduce repetition-code behaviour:
``XXZZCode(d, 1)`` has only ZZ checks, ``XXZZCode(1, d)`` only XX.

Note on check counts: for rectangular lattices the Z/X plaquette split
is ``(d_Z-1)(d_X+1)/2`` vs ``(d_X-1)(d_Z+1)/2`` (equal only when
square); the paper's ``m = (d_Z d_X - 1)/2`` refers to the square case.
The *total* ancilla count, and hence the circuit sizes reported in the
paper's Fig. 6b, are identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .base import StabilizerCode
from .rotated import RotatedLattice


class XXZZCode(StabilizerCode):
    """Rotated XXZZ surface code of distance ``(d_Z, d_X)``.

    Parameters
    ----------
    dz:
        Bit-flip distance (vertical extent of the data grid).
    dx:
        Phase-flip distance (horizontal extent).

    ``dz * dx`` must be odd (both distances odd), as in the paper.
    """

    def __init__(self, dz: int, dx: int) -> None:
        if dz < 1 or dx < 1 or dz % 2 == 0 or dx % 2 == 0:
            raise ValueError(
                f"XXZZ distances must be odd and positive, got ({dz}, {dx})")
        self.dz = int(dz)
        self.dx = int(dx)
        self.distance: Tuple[int, int] = (self.dz, self.dx)
        self.name = f"xxzz-({dz},{dx})"
        self.lattice = RotatedLattice(rows=self.dz, cols=self.dx)

        n = self.lattice.num_data
        self.data_qubits = list(range(n))
        nz = len(self.lattice.z_plaquettes)
        nx = len(self.lattice.x_plaquettes)
        self.z_ancillas = list(range(n, n + nz))
        self.x_ancillas = list(range(n + nz, n + nz + nx))
        self.z_plaquettes = [p.data for p in self.lattice.z_plaquettes]
        self.x_plaquettes = [p.data for p in self.lattice.x_plaquettes]
        self.readout_qubit = n + nz + nx
        self.logical_x_support = self.lattice.logical_x_data()
        self.logical_z_support = self.lattice.logical_z_data()

    def qubit_positions(self) -> Optional[Dict[int, Tuple[float, float]]]:
        """Checkerboard embedding: data at even-even half-step coords,
        plaquette ancillas at the odd-odd centres of their plaquettes,
        the readout ancilla beside the logical-Z row."""
        pos: Dict[int, Tuple[float, float]] = {}
        for q in self.data_qubits:
            r, c = divmod(q, self.lattice.cols)
            pos[q] = (2.0 * r, 2.0 * c)
        for anc, plaq in zip(self.z_ancillas, self.lattice.z_plaquettes):
            pr, pc = plaq.position
            pos[anc] = (2.0 * pr + 1, 2.0 * pc + 1)
        for anc, plaq in zip(self.x_ancillas, self.lattice.x_plaquettes):
            pr, pc = plaq.position
            pos[anc] = (2.0 * pr + 1, 2.0 * pc + 1)
        pos[self.readout_qubit] = (-2.0, 0.0)
        return pos

    def __repr__(self) -> str:
        return (f"XXZZCode(dz={self.dz}, dx={self.dx}, "
                f"qubits={self.num_qubits})")
