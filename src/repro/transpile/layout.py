"""Initial-layout selection.

Maps each *logical* circuit qubit to a *physical* architecture qubit
before routing.  Two strategies:

* :class:`TrivialLayout` — identity (logical i -> physical i).
* :class:`GreedyConnectedLayout` — interaction-aware greedy placement:
  logical qubits are visited in BFS order over the circuit's interaction
  graph and each is placed on the free physical qubit minimizing the
  summed distance to its already-placed interaction partners.  This is
  the "default optimisation" stand-in for Qiskit's dense layout used in
  the paper's Fig. 8 transpilation.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

from ..arch.graph import ArchitectureGraph
from ..circuits import Circuit


class Layout(abc.ABC):
    """Strategy object producing an initial logical->physical mapping."""

    @abc.abstractmethod
    def place(self, circuit: Circuit, arch: ArchitectureGraph,
              rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
        """Return ``{logical: physical}`` covering every circuit qubit."""


class TrivialLayout(Layout):
    """Logical qubit i on physical qubit i."""

    def place(self, circuit: Circuit, arch: ArchitectureGraph,
              rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
        if circuit.num_qubits > arch.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, architecture "
                f"has {arch.num_qubits}")
        return {q: q for q in range(circuit.num_qubits)}


class GreedyConnectedLayout(Layout):
    """Interaction-graph-aware greedy placement (see module docstring)."""

    def place(self, circuit: Circuit, arch: ArchitectureGraph,
              rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
        if circuit.num_qubits > arch.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, architecture "
                f"has {arch.num_qubits}")
        interactions = circuit.interaction_graph()
        # Weighted adjacency over logical qubits.
        adj: Dict[int, Dict[int, int]] = {q: {} for q in range(circuit.num_qubits)}
        for (a, b), w in interactions.items():
            adj[a][b] = w
            adj[b][a] = w

        dist = arch.distance_matrix()
        order = self._visit_order(circuit.num_qubits, adj)
        mapping: Dict[int, int] = {}
        free = set(range(arch.num_qubits))

        for logical in order:
            placed_partners = [(mapping[p], w) for p, w in adj[logical].items()
                               if p in mapping]
            if not placed_partners:
                # Seed: physical qubit with the highest degree still free.
                phys = max(free, key=lambda q: (arch.degree(q), -q))
            else:
                def cost(q: int) -> float:
                    return sum(w * dist[q, pp] for pp, w in placed_partners)

                phys = min(free, key=lambda q: (cost(q), -arch.degree(q), q))
            mapping[logical] = phys
            free.discard(phys)
        return mapping

    @staticmethod
    def _visit_order(num_qubits: int, adj: Dict[int, Dict[int, int]]) -> List[int]:
        """BFS over the interaction graph, heaviest-degree first."""
        weight = {q: sum(adj[q].values()) for q in range(num_qubits)}
        visited: List[int] = []
        seen = set()
        pending = sorted(range(num_qubits), key=lambda q: (-weight[q], q))
        for seed in pending:
            if seed in seen:
                continue
            queue = [seed]
            seen.add(seed)
            while queue:
                q = queue.pop(0)
                visited.append(q)
                nxt = sorted((p for p in adj[q] if p not in seen),
                             key=lambda p: (-adj[q][p], p))
                for p in nxt:
                    seen.add(p)
                    queue.append(p)
        return visited


class SnakeLayout(Layout):
    """Linearise both graphs and zip them together.

    Logical qubits are ordered by a DFS of the interaction graph
    (heaviest edges first), physical qubits by a serpentine walk of the
    architecture (row-major snake when grid positions are known, DFS
    preorder otherwise).  Chain-structured circuits — repetition-code
    syndrome extraction in particular — map with near-zero SWAPs.
    """

    def place(self, circuit: Circuit, arch: ArchitectureGraph,
              rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
        if circuit.num_qubits > arch.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, architecture "
                f"has {arch.num_qubits}")
        logical_order = self._interaction_dfs(circuit)
        physical_order = self._serpentine(arch)
        return {l: physical_order[i] for i, l in enumerate(logical_order)}

    @staticmethod
    def _interaction_dfs(circuit: Circuit) -> List[int]:
        interactions = circuit.interaction_graph()
        adj: Dict[int, Dict[int, int]] = {q: {} for q in range(circuit.num_qubits)}
        for (a, b), w in interactions.items():
            adj[a][b] = w
            adj[b][a] = w
        degree = {q: len(adj[q]) for q in adj}
        order: List[int] = []
        seen = set()
        # Prefer starting from chain endpoints (degree-1 nodes).
        starts = sorted(adj, key=lambda q: (degree[q], q))
        for start in starts:
            if start in seen:
                continue
            stack = [start]
            while stack:
                q = stack.pop()
                if q in seen:
                    continue
                seen.add(q)
                order.append(q)
                nxt = sorted((p for p in adj[q] if p not in seen),
                             key=lambda p: (adj[q][p], -p))
                stack.extend(nxt)  # heaviest edge popped first
        return order

    @staticmethod
    def _serpentine(arch: ArchitectureGraph) -> List[int]:
        if arch.positions:
            def key(q: int):
                x, y = arch.positions[q]
                return (-y, x if int(-y) % 2 == 0 else -x)

            return sorted(range(arch.num_qubits), key=key)
        # Generic: DFS preorder from a low-degree corner.
        start = min(range(arch.num_qubits), key=lambda q: (arch.degree(q), q))
        order: List[int] = []
        seen = set()
        stack = [start]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            order.append(q)
            stack.extend(sorted((p for p in arch.neighbors(q)
                                 if p not in seen), reverse=True))
        # Disconnected architectures: append leftovers deterministically.
        order.extend(q for q in range(arch.num_qubits) if q not in seen)
        return order


LAYOUTS = {
    "trivial": TrivialLayout,
    "greedy": GreedyConnectedLayout,
    "snake": SnakeLayout,
}
