"""SWAP routing.

Walks the logical circuit keeping a live logical<->physical mapping;
whenever a two-qubit gate's operands are not adjacent on the
architecture, SWAPs (tagged ``"route"``) are inserted along a shortest
path until they are.  The emitted circuit acts on *physical* qubit
indices, which is what the radiation model needs — a fault is anchored
to a physical location, and logical qubits migrate across it as SWAPs
execute, exactly as on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.graph import ArchitectureGraph
from ..circuits import Circuit, Gate, GateType


@dataclass
class RoutedCircuit:
    """Result of routing: physical circuit plus mapping bookkeeping."""

    circuit: Circuit
    initial_layout: Dict[int, int]
    final_layout: Dict[int, int]
    swap_count: int
    arch: ArchitectureGraph

    @property
    def overhead(self) -> float:
        """Added gates as a fraction of the original two-qubit count."""
        base = self.circuit.num_two_qubit_gates - 3 * self.swap_count
        return (3 * self.swap_count / base) if base else 0.0


#: Gates of lookahead used when scoring which operand to walk.
_LOOKAHEAD_WINDOW = 12


def route(circuit: Circuit, arch: ArchitectureGraph,
          initial_layout: Dict[int, int],
          decompose_swaps: bool = False,
          policy: str = "lookahead") -> RoutedCircuit:
    """Insert SWAPs so every two-qubit gate lands on an edge.

    Parameters
    ----------
    circuit:
        Logical circuit.
    arch:
        Target coupling graph.
    initial_layout:
        ``{logical: physical}`` placement covering all circuit qubits.
    decompose_swaps:
        Emit each routing SWAP as three CNOTs (matching hardware cost
        and exposing three fault sites instead of one).
    policy:
        ``"lookahead"`` (default) scores walking either operand against
        the next few two-qubit gates and picks the cheaper direction —
        this is what lets a hub qubit (e.g. the readout ancilla
        collecting parity from every data qubit) travel instead of
        dragging each partner to it.  ``"walk-first"`` always moves the
        first operand (the naive baseline, kept as a routing ablation).
    """
    if policy not in ("lookahead", "walk-first"):
        raise ValueError(f"unknown routing policy {policy!r}")
    if len(initial_layout) < circuit.num_qubits:
        raise ValueError("initial layout does not cover the circuit")
    l2p = dict(initial_layout)
    p2l: Dict[int, int] = {p: l for l, p in l2p.items()}
    if len(p2l) != len(l2p):
        raise ValueError("initial layout is not injective")

    out = Circuit(arch.num_qubits, circuit.num_cbits,
                  name=f"{circuit.name}@{arch.name}")
    swap_count = 0
    dist = arch.distance_matrix()

    # Upcoming two-qubit gates, indexed for the lookahead window.
    gates = list(circuit)
    two_qubit_after: List[List[Tuple[int, int]]] = []
    upcoming: List[Tuple[int, int]] = []
    for g in reversed(gates):
        two_qubit_after.append(list(upcoming[:_LOOKAHEAD_WINDOW]))
        if g.num_qubits == 2 and g.gate_type is not GateType.BARRIER:
            upcoming.insert(0, g.qubits)
            del upcoming[_LOOKAHEAD_WINDOW:]
    two_qubit_after.reverse()

    def emit_swap(pa: int, pb: int) -> None:
        nonlocal swap_count
        if decompose_swaps:
            out.cx(pa, pb, tag="route")
            out.cx(pb, pa, tag="route")
            out.cx(pa, pb, tag="route")
        else:
            out.swap(pa, pb, tag="route")
        swap_count += 1
        la = p2l.get(pa)
        lb = p2l.get(pb)
        if la is not None:
            l2p[la] = pb
        if lb is not None:
            l2p[lb] = pa
        p2l[pa], p2l[pb] = lb, la
        if p2l[pa] is None:
            del p2l[pa]
        if p2l[pb] is None:
            del p2l[pb]

    def walk_cost(mover: int, path: List[int], gate_index: int) -> float:
        """Windowed cost of walking ``mover`` along ``path``.

        Simulates the swaps on a scratch copy of the mapping (bystander
        displacement included) and sums the distances of the next few
        two-qubit gates under the hypothetical layout — SABRE-style
        scoring specialised to the two candidate walk directions.
        """
        hypo = dict(l2p)
        hypo_p2l = {p: l for l, p in hypo.items()}
        pos = hypo[mover]
        for step in path[1:-1]:
            other = hypo_p2l.get(step)
            hypo[mover] = step
            hypo_p2l[step] = mover
            if other is not None:
                hypo[other] = pos
                hypo_p2l[pos] = other
            else:
                del hypo_p2l[pos]
            pos = step
        return float(sum(dist[hypo[a], hypo[b]]
                         for a, b in two_qubit_after[gate_index]))

    for gate_index, gate in enumerate(gates):
        if gate.gate_type is GateType.BARRIER:
            out.append(Gate(GateType.BARRIER,
                            tuple(l2p[q] for q in gate.qubits), tag=gate.tag))
            continue
        if gate.num_qubits == 1:
            out.append(Gate(gate.gate_type, (l2p[gate.qubits[0]],),
                            cbit=gate.cbit, tag=gate.tag))
            continue
        la, lb = gate.qubits
        pa, pb = l2p[la], l2p[lb]
        if not arch.has_edge(pa, pb):
            path = arch.shortest_path(pa, pb)
            if len(path) < 2:
                raise ValueError(
                    f"no path between physical {pa} and {pb} on {arch.name}")
            mover = la
            if policy == "lookahead":
                # Walking la parks it next to pb and vice versa; score
                # both hypothetical layouts against the upcoming gates
                # (ties keep la moving).
                cost_a = walk_cost(la, path, gate_index)
                cost_b = walk_cost(lb, list(reversed(path)), gate_index)
                if cost_b < cost_a:
                    mover = lb
                    path = list(reversed(path))
            for step in path[1:-1]:
                emit_swap(l2p[mover], step)
            pa, pb = l2p[la], l2p[lb]
            if not arch.has_edge(pa, pb):
                raise AssertionError("routing failed to make qubits adjacent")
        out.append(Gate(gate.gate_type, (pa, pb), tag=gate.tag))

    return RoutedCircuit(circuit=out, initial_layout=dict(initial_layout),
                         final_layout=dict(l2p), swap_count=swap_count,
                         arch=arch)
