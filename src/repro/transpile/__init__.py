"""Circuit-to-architecture transpilation (layout + SWAP routing)."""

from .layout import (
    LAYOUTS,
    GreedyConnectedLayout,
    Layout,
    SnakeLayout,
    TrivialLayout,
)
from .routing import RoutedCircuit, route
from .transpiler import transpile
from .verify import check_connectivity, records_equal

__all__ = [
    "LAYOUTS",
    "Layout",
    "TrivialLayout",
    "GreedyConnectedLayout",
    "RoutedCircuit",
    "route",
    "transpile",
    "check_connectivity",
    "records_equal",
]
