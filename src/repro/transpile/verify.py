"""Transpilation verification helpers.

Used by tests and available to users who bring their own layouts:
* connectivity compliance — every two-qubit gate must sit on an edge;
* semantic equivalence — the routed circuit must produce the same
  classical record distribution as the logical one (checked exactly for
  deterministic circuits via the reference simulator).
"""

from __future__ import annotations

from typing import List, Tuple

from ..arch.graph import ArchitectureGraph
from ..circuits import Circuit, GateType
from ..stabilizer.simulator import TableauSimulator
from .routing import RoutedCircuit


def check_connectivity(circuit: Circuit, arch: ArchitectureGraph
                       ) -> List[Tuple[int, Tuple[int, ...]]]:
    """Return the list of (gate index, qubits) violating the coupling map.

    Empty list means the circuit is architecture-compliant.
    """
    bad = []
    for i, g in enumerate(circuit):
        if g.num_qubits == 2 and g.gate_type is not GateType.BARRIER:
            if not arch.has_edge(*g.qubits):
                bad.append((i, g.qubits))
    return bad


def records_equal(logical: Circuit, routed: RoutedCircuit,
                  seeds: Tuple[int, ...] = (0, 1, 2, 3, 4)) -> bool:
    """Compare classical records of logical vs routed circuit.

    Runs both circuits with the same seeds; for circuits whose outcomes
    are deterministic this is an exact equivalence check, for random
    outcomes it verifies the record structure matches shot by shot only
    when the measurement randomness consumption aligns (callers should
    prefer deterministic circuits).
    """
    for seed in seeds:
        a = TableauSimulator(logical.num_qubits, rng=seed).run(logical)
        b = TableauSimulator(routed.circuit.num_qubits, rng=seed).run(
            routed.circuit)
        if a != b:
            return False
    return True
