"""Top-level transpile entry point: layout + routing."""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..arch.graph import ArchitectureGraph
from ..circuits import Circuit
from .layout import LAYOUTS, Layout
from .routing import RoutedCircuit, route


def transpile(circuit: Circuit, arch: ArchitectureGraph,
              layout: Union[str, Layout, Dict[int, int]] = "greedy",
              decompose_swaps: bool = False,
              routing: str = "lookahead",
              rng: Optional[np.random.Generator | int] = None
              ) -> RoutedCircuit:
    """Map a logical circuit onto an architecture graph.

    Parameters
    ----------
    circuit:
        Logical circuit to map.
    arch:
        Target coupling graph.
    layout:
        ``"greedy"`` / ``"trivial"``, a :class:`Layout` instance, or an
        explicit ``{logical: physical}`` dict.
    decompose_swaps:
        Expand routing SWAPs into three CNOTs.
    routing:
        SWAP policy: ``"lookahead"`` (default) or ``"walk-first"``
        (naive baseline; kept for the routing ablation bench).
    rng:
        Randomness for layout tie-breaking (currently deterministic
        layouts; kept for API stability).

    Returns
    -------
    RoutedCircuit
        Physical circuit with mapping metadata and SWAP statistics.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if isinstance(layout, str) and layout == "best":
        # Route every layout strategy and keep the cheapest result —
        # the restart-style search real transpilers use.
        candidates = []
        for name, cls in LAYOUTS.items():
            try:
                placement = cls().place(circuit, arch, rng)
                candidates.append(route(circuit, arch, placement,
                                        decompose_swaps=decompose_swaps,
                                        policy=routing))
            except ValueError:
                continue
        if not candidates:
            raise ValueError("no layout strategy could place the circuit")
        return min(candidates, key=lambda r: r.swap_count)
    if isinstance(layout, dict):
        placement = layout
    else:
        if isinstance(layout, str):
            try:
                layout = LAYOUTS[layout]()
            except KeyError:
                raise KeyError(f"unknown layout {layout!r}; "
                               f"known: {sorted(LAYOUTS)} + 'best'") from None
        placement = layout.place(circuit, arch, rng)
    return route(circuit, arch, placement, decompose_swaps=decompose_swaps,
                 policy=routing)
