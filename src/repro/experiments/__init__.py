"""Per-figure experiment generators (paper §V).

Each module regenerates one figure's data series:

* :mod:`.fig3_temporal` — temporal decay T(t) and its step sampling.
* :mod:`.fig4_spatial` — spatial damping field S(d).
* :mod:`.fig5_landscape` — intrinsic-noise x radiation LER surface.
* :mod:`.fig6_distance` — single-erasure criticality by code distance.
* :mod:`.fig7_spread` — spreading fault vs multi-qubit erasure.
* :mod:`.fig8_architecture` — per-qubit criticality across topologies.
* :mod:`.fig_detect` — strike-detection ROC and recovery-policy LER.
* :mod:`.headline` — Observation I-VIII paper-vs-measured checks.
"""

from . import (
    fig3_temporal,
    fig4_spatial,
    fig5_landscape,
    fig6_distance,
    fig7_spread,
    fig8_architecture,
    fig_detect,
    headline,
    rounds_ablation,
)

__all__ = [
    "fig3_temporal",
    "fig4_spatial",
    "fig5_landscape",
    "fig6_distance",
    "fig7_spread",
    "fig8_architecture",
    "fig_detect",
    "headline",
    "rounds_ablation",
]
