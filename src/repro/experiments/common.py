"""Shared experiment plumbing.

Every figure module follows the same pattern:

* ``build_campaign(shots, ...)`` — the exact task list,
* ``run(shots, max_workers)`` — execute and post-process,
* ``format_table(data)`` — the rows/series the paper's figure reports.

Shot counts default to laptop-scale statistics (Wilson CIs of a few
percent); benchmarks pass smaller values, EXPERIMENTS.md records runs
at the defaults.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

from ..injection.adaptive import AdaptivePolicy
from ..injection.campaign import Campaign, _prepared
from ..injection.results import ResultSet
from ..injection.spec import ArchSpec, CodeSpec, InjectionTask
from ..injection.store import CampaignStore

#: Paper default intrinsic noise (§IV-C).
DEFAULT_P = 0.01
#: Paper default syndrome rounds (Figs. 1-2).
DEFAULT_ROUNDS = 2
#: Temporal samples of the radiation step function (§III-B).
NUM_TIME_SAMPLES = 10


def execute(campaign: Campaign, max_workers: Optional[int] = None,
            store: Union[CampaignStore, str, None] = None,
            adaptive: Optional[AdaptivePolicy] = None,
            chunk_shots: Optional[int] = None,
            backend: Optional[str] = None,
            workers: Optional[int] = None) -> ResultSet:
    """Run a figure campaign through the orchestration engine.

    The single funnel every experiment module uses, so campaign-level
    features — chunked streaming, JSONL checkpoint/resume (``store``
    takes a :class:`CampaignStore` or a path), adaptive shot allocation,
    backend selection (``backend="auto"|"frames"|"tableau"``; tasks
    default to "auto", which prefers the bit-packed Pauli-frame sampler),
    block-level multiprocess scheduling (``workers`` routes >1 through
    the :mod:`repro.parallel` work-stealing scheduler, bit-identical to
    serial) — apply uniformly to all figures without per-module
    plumbing.
    """
    return campaign.run(max_workers=max_workers, chunk_shots=chunk_shots,
                        adaptive=adaptive, backend=backend,
                        resume=CampaignStore.coerce(store),
                        workers=workers)


def fitting_mesh(num_qubits: int, max_cols: int = 6) -> ArchSpec:
    """The paper's 5x6 lattice "scaled down according to the qubit
    requirements": the minimal-area ``rows x cols`` mesh with
    ``cols <= 6`` that fits the code, preferring the squarest shape
    (6 -> 2x3, 10 -> 2x5, 18 -> 3x6, 30 -> 5x6)."""
    best = None
    for cols in range(1, max_cols + 1):
        rows = max(1, math.ceil(num_qubits / cols))
        if rows > 5 and num_qubits <= 5 * max_cols:
            continue  # stay inside the 5x6 footprint when possible
        area = rows * cols
        squareness = abs(rows - cols)
        key = (area, squareness, rows)
        if best is None or key < best[0]:
            best = (key, (rows, cols))
    return ArchSpec("mesh", best[1])


def used_physical_qubits(code: CodeSpec, arch: ArchSpec,
                         rounds: int = DEFAULT_ROUNDS, basis: str = "Z",
                         layout: str = "best",
                         decoder: str = "mwpm") -> Tuple[int, ...]:
    """Physical qubits touched by the transpiled memory circuit.

    Fig. 8 injects faults only at qubits the circuit actually uses
    ("unused qubits ... have been omitted").
    """
    experiment, _, _ = _prepared(code, rounds, basis, arch, layout, decoder)
    return experiment.circuit.qubits_used()


def initial_layout_roles(code: CodeSpec, arch: ArchSpec,
                         rounds: int = DEFAULT_ROUNDS, basis: str = "Z",
                         layout: str = "best") -> dict:
    """``{physical qubit: role label}`` from the initial placement."""
    from ..transpile import transpile

    built = code.build()
    from ..codes import build_memory_experiment

    exp = build_memory_experiment(built, rounds=rounds, basis=basis)
    routed = transpile(exp.circuit, arch.build(), layout=layout)
    roles = {}
    for logical, physical in routed.initial_layout.items():
        if logical < built.num_qubits:
            roles[physical] = built.role(logical).value
    return roles
