"""Shared experiment plumbing.

Every figure module follows the same pattern:

* ``build_campaign(shots, ...)`` — the exact task list,
* ``run(shots, max_workers)`` — execute and post-process,
* ``format_table(data)`` — the rows/series the paper's figure reports.

Shot counts default to laptop-scale statistics (Wilson CIs of a few
percent); benchmarks pass smaller values, EXPERIMENTS.md records runs
at the defaults.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..injection.campaign import _prepared
from ..injection.spec import ArchSpec, CodeSpec, InjectionTask

#: Paper default intrinsic noise (§IV-C).
DEFAULT_P = 0.01
#: Paper default syndrome rounds (Figs. 1-2).
DEFAULT_ROUNDS = 2
#: Temporal samples of the radiation step function (§III-B).
NUM_TIME_SAMPLES = 10


def fitting_mesh(num_qubits: int, max_cols: int = 6) -> ArchSpec:
    """The paper's 5x6 lattice "scaled down according to the qubit
    requirements": the minimal-area ``rows x cols`` mesh with
    ``cols <= 6`` that fits the code, preferring the squarest shape
    (6 -> 2x3, 10 -> 2x5, 18 -> 3x6, 30 -> 5x6)."""
    best = None
    for cols in range(1, max_cols + 1):
        rows = max(1, math.ceil(num_qubits / cols))
        if rows > 5 and num_qubits <= 5 * max_cols:
            continue  # stay inside the 5x6 footprint when possible
        area = rows * cols
        squareness = abs(rows - cols)
        key = (area, squareness, rows)
        if best is None or key < best[0]:
            best = (key, (rows, cols))
    return ArchSpec("mesh", best[1])


def used_physical_qubits(code: CodeSpec, arch: ArchSpec,
                         rounds: int = DEFAULT_ROUNDS, basis: str = "Z",
                         layout: str = "best",
                         decoder: str = "mwpm") -> Tuple[int, ...]:
    """Physical qubits touched by the transpiled memory circuit.

    Fig. 8 injects faults only at qubits the circuit actually uses
    ("unused qubits ... have been omitted").
    """
    experiment, _, _ = _prepared(code, rounds, basis, arch, layout, decoder)
    return experiment.circuit.qubits_used()


def initial_layout_roles(code: CodeSpec, arch: ArchSpec,
                         rounds: int = DEFAULT_ROUNDS, basis: str = "Z",
                         layout: str = "best") -> dict:
    """``{physical qubit: role label}`` from the initial placement."""
    from ..transpile import transpile

    built = code.build()
    from ..codes import build_memory_experiment

    exp = build_memory_experiment(built, rounds=rounds, basis=basis)
    routed = transpile(exp.circuit, arch.build(), layout=layout)
    roles = {}
    for logical, physical in routed.initial_layout.items():
        if logical < built.num_qubits:
            roles[physical] = built.role(logical).value
    return roles
