"""Figure 8 — logical error by corrupted qubit across architectures.

Transpiles the distance-(11,1) repetition code and the distance-(3,3)
XXZZ code onto the paper's architecture menagerie, injects a spreading
radiation fault at every used physical qubit, and reports the median
logical error over the fault's time evolution per injection point.

Shape targets (Observations VII-VIII): earlier-used qubits show higher
medians; the repetition code favours linear/mesh while the XXZZ code
needs well-connected graphs (its SWAP overhead explodes on the linear
chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import median_with_iqr
from ..injection import Campaign, InjectionTask
from ..injection.spec import ArchSpec, CodeSpec, FaultSpec
from ..injection.campaign import _prepared
from .common import (
    DEFAULT_P,
    DEFAULT_ROUNDS,
    NUM_TIME_SAMPLES,
    execute,
    initial_layout_roles,
    used_physical_qubits,
)

#: Fig. 8a: the 22-qubit repetition code and its eligible architectures.
REP_CODE = CodeSpec("repetition", (11, 1))
REP_ARCHS: Tuple[ArchSpec, ...] = (
    ArchSpec("linear", (22,)),
    ArchSpec("mesh", (5, 6)),
    ArchSpec("brooklyn"),
    ArchSpec("cairo"),
    ArchSpec("cambridge"),
)

#: Fig. 8b: the 18-qubit XXZZ code and its eligible architectures.
XXZZ_CODE = CodeSpec("xxzz", (3, 3))
XXZZ_ARCHS: Tuple[ArchSpec, ...] = (
    ArchSpec("complete", (18,)),
    ArchSpec("linear", (18,)),
    ArchSpec("mesh", (5, 4)),
    ArchSpec("almaden"),
    ArchSpec("johannesburg"),
    ArchSpec("cambridge"),
    ArchSpec("brooklyn"),
)

CONFIGS: Tuple[Tuple[CodeSpec, Tuple[ArchSpec, ...]], ...] = (
    (REP_CODE, REP_ARCHS),
    (XXZZ_CODE, XXZZ_ARCHS),
)


def build_campaign(shots: int = 400, root_seed: int = 801,
                   configs=CONFIGS,
                   time_indices: Optional[Sequence[int]] = None,
                   max_roots: Optional[int] = None) -> Campaign:
    """Tasks for every (code, architecture, root qubit, time sample)."""
    if time_indices is None:
        time_indices = range(NUM_TIME_SAMPLES)
    tasks: List[InjectionTask] = []
    for code, archs in configs:
        for arch in archs:
            roots = used_physical_qubits(code, arch)
            if max_roots is not None and len(roots) > max_roots:
                stride = max(1, len(roots) // max_roots)
                roots = roots[::stride][:max_roots]
            for root in roots:
                for k in time_indices:
                    tasks.append(InjectionTask(
                        code=code, arch=arch,
                        fault=FaultSpec(kind="radiation", root_qubit=root,
                                        time_index=int(k)),
                        intrinsic_p=DEFAULT_P, rounds=DEFAULT_ROUNDS,
                        shots=shots,
                    ).with_tags(fig="fig8", code=code.label,
                                arch=arch.label, root=root, t=int(k)))
    return Campaign(tasks, root_seed=root_seed)


@dataclass
class QubitCriticality:
    """Median LER for one root injection point (a node of Fig. 8)."""

    arch: str
    root: int
    role: str
    median_ler: float
    q25: float
    q75: float


@dataclass
class ArchitectureData:
    """One architecture's panel entry."""

    code_label: str
    arch_label: str
    swap_count: int
    per_qubit: List[QubitCriticality]

    @property
    def median_ler(self) -> float:
        return float(np.median([q.median_ler for q in self.per_qubit]))

    @property
    def min_ler(self) -> float:
        return float(min(q.median_ler for q in self.per_qubit))

    @property
    def max_ler(self) -> float:
        return float(max(q.median_ler for q in self.per_qubit))

    def to_row(self) -> Dict[str, object]:
        return {
            "code": self.code_label,
            "arch": self.arch_label,
            "swaps": self.swap_count,
            "median_ler": self.median_ler,
            "min_ler": self.min_ler,
            "max_ler": self.max_ler,
            "qubits": len(self.per_qubit),
        }


def run(shots: int = 400, max_workers: Optional[int] = None,
        configs=CONFIGS, time_indices: Optional[Sequence[int]] = None,
        max_roots: Optional[int] = None, store=None, adaptive=None,
        chunk_shots: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None) -> List[ArchitectureData]:
    campaign = build_campaign(shots=shots, configs=configs,
                              time_indices=time_indices,
                              max_roots=max_roots)
    results = execute(campaign, max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      backend=backend, workers=workers)
    out: List[ArchitectureData] = []
    for code, archs in configs:
        for arch in archs:
            sub = results.filter_tags(fig="fig8", code=code.label,
                                      arch=arch.label)
            if not len(sub):
                continue
            roles = initial_layout_roles(code, arch)
            roots = sorted({int(dict(r.task.tags)["root"]) for r in sub})
            per_qubit = []
            swap_count = sub[0].swap_count
            for root in roots:
                pts = sub.filter_tags(root=root)
                med, q25, q75 = median_with_iqr(pts.rates())
                per_qubit.append(QubitCriticality(
                    arch=arch.label, root=root,
                    role=roles.get(root, "-"),
                    median_ler=med, q25=q25, q75=q75))
            out.append(ArchitectureData(
                code_label=code.label, arch_label=arch.label,
                swap_count=swap_count, per_qubit=per_qubit))
    return out


def index_correlation(data: ArchitectureData) -> float:
    """Spearman correlation between root index and median LER.

    Observation VII predicts a *negative* value: higher-indexed (later
    used) qubits suffer lower medians.
    """
    from scipy.stats import spearmanr

    roots = [q.root for q in data.per_qubit]
    lers = [q.median_ler for q in data.per_qubit]
    if len(roots) < 3:
        return float("nan")
    rho, _ = spearmanr(roots, lers)
    return float(rho)


def first_use_correlation(code: CodeSpec, arch: ArchSpec,
                          data: ArchitectureData) -> float:
    """Spearman correlation between a root's *first-use gate index* in
    the transpiled circuit and its median LER.

    This operationalises Observation VII's stated mechanism directly:
    qubits entering the gate sequence earlier reach more of the DAG, so
    their faults should yield higher logical error (negative rho).
    """
    from scipy.stats import spearmanr

    experiment, _, _ = _prepared(code, DEFAULT_ROUNDS, "Z", arch, "best",
                                 "mwpm", "ancilla")
    first_use: Dict[int, int] = {}
    for gi, gate in enumerate(experiment.circuit):
        for q in gate.qubits:
            first_use.setdefault(q, gi)
    pts = [(first_use.get(q.root, len(experiment.circuit)), q.median_ler)
           for q in data.per_qubit]
    if len(pts) < 3:
        return float("nan")
    rho, _ = spearmanr([p[0] for p in pts], [p[1] for p in pts])
    return float(rho)
