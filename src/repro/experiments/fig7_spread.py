"""Figure 7 — spreading radiation fault vs multiple uncorrelated erasures.

For the distance-(15,1) repetition code and the distance-(3,3) XXZZ
code, connected subgraphs of increasing size are erased simultaneously
(reset probability 1 on every member) and the logical error is compared
against the *single* spreading radiation fault at t=0 (the red line of
the paper's figure).

Shape targets: the logical error grows monotonically with the number of
simultaneously erased qubits, exceeding ~80% once more than half the
circuit is erased; a single spreading fault out-damages several
independent erasures (Observations V-VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import median_with_iqr
from ..injection import Campaign, InjectionTask
from ..injection.spec import ArchSpec, CodeSpec, FaultSpec
from ..injection.campaign import build_arch
from .common import (DEFAULT_P, DEFAULT_ROUNDS, execute, fitting_mesh,
                     used_physical_qubits)

#: Paper configurations: code, erased-cluster sizes shown on the x-axis.
CONFIGS: Tuple[Tuple[CodeSpec, Tuple[int, ...]], ...] = (
    (CodeSpec("repetition", (15, 1)), (1, 5, 10, 11, 15, 16, 20)),
    (CodeSpec("xxzz", (3, 3)), (1, 5, 9, 10, 14, 15)),
)

#: Connected subgraphs sampled per cluster size.  Medians over few
#: clusters are noisy (parity effects: erasing an even number of data
#: qubits preserves the raw parity readout), so sample generously.
SAMPLES_PER_SIZE = 10


def _subgraph_pool(code: CodeSpec, arch: ArchSpec, size: int,
                   count: int, seed: int) -> List[Tuple[int, ...]]:
    """Sample connected clusters inside the *used* part of the lattice."""
    graph = build_arch(arch)
    used = used_physical_qubits(code, arch)
    sub = graph.graph.subgraph(used)
    import networkx as nx

    rng = np.random.default_rng(seed)
    pools: List[Tuple[int, ...]] = []
    seen = set()
    attempts = 0
    while len(pools) < count and attempts < 60 * count:
        attempts += 1
        seed_q = int(rng.choice(used))
        chosen = {seed_q}
        frontier = set(sub.neighbors(seed_q))
        ok = True
        while len(chosen) < size:
            frontier -= chosen
            if not frontier:
                ok = False
                break
            pick = int(rng.choice(sorted(frontier)))
            chosen.add(pick)
            frontier |= set(sub.neighbors(pick))
        if not ok:
            continue
        key = tuple(sorted(chosen))
        if key not in seen:
            seen.add(key)
            pools.append(key)
    return pools


def build_campaign(shots: int = 800, root_seed: int = 701,
                   samples_per_size: int = SAMPLES_PER_SIZE,
                   configs=CONFIGS) -> Campaign:
    tasks: List[InjectionTask] = []
    for code, sizes in configs:
        arch = fitting_mesh(code.build().num_qubits)
        used = used_physical_qubits(code, arch)
        for size in sizes:
            if size > len(used):
                continue
            clusters = _subgraph_pool(code, arch, size, samples_per_size,
                                      seed=root_seed + size)
            for ci, cluster in enumerate(clusters):
                tasks.append(InjectionTask(
                    code=code, arch=arch,
                    fault=FaultSpec(kind="erasure", qubits=cluster,
                                    probability=1.0),
                    intrinsic_p=DEFAULT_P, rounds=DEFAULT_ROUNDS,
                    shots=shots,
                ).with_tags(fig="fig7", code=code.label, size=size,
                            cluster=ci))
        # Red line: single spreading radiation fault at t=0, every root.
        for root in used:
            tasks.append(InjectionTask(
                code=code, arch=arch,
                fault=FaultSpec(kind="radiation", root_qubit=root,
                                time_index=0, spread=True),
                intrinsic_p=DEFAULT_P, rounds=DEFAULT_ROUNDS, shots=shots,
            ).with_tags(fig="fig7", code=code.label, size="radiation",
                        root=root))
    return Campaign(tasks, root_seed=root_seed)


@dataclass
class SpreadData:
    """One panel of Fig. 7."""

    code_label: str
    sizes: List[int]
    median_ler: List[float]
    q25: List[float]
    q75: List[float]
    radiation_ler: float      # the red line
    num_qubits: int

    def to_rows(self) -> List[Dict[str, object]]:
        rows = []
        for s, m, lo, hi in zip(self.sizes, self.median_ler,
                                self.q25, self.q75):
            rows.append({"code": self.code_label,
                         "erased_qubits": s, "median_ler": m,
                         "q25": lo, "q75": hi,
                         "radiation_line": self.radiation_ler})
        return rows


def run(shots: int = 800, max_workers: Optional[int] = None,
        samples_per_size: int = SAMPLES_PER_SIZE,
        configs=CONFIGS, store=None, adaptive=None,
        chunk_shots: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None) -> List[SpreadData]:
    campaign = build_campaign(shots=shots,
                              samples_per_size=samples_per_size,
                              configs=configs)
    results = execute(campaign, max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      backend=backend, workers=workers)
    out: List[SpreadData] = []
    for code, sizes in configs:
        sub = results.filter_tags(fig="fig7", code=code.label)
        med_list, q25_list, q75_list, size_list = [], [], [], []
        for size in sizes:
            pts = sub.filter_tags(size=size)
            if not len(pts):
                continue
            med, q25, q75 = median_with_iqr(pts.rates())
            size_list.append(size)
            med_list.append(med)
            q25_list.append(q25)
            q75_list.append(q75)
        rad = sub.filter_tags(size="radiation")
        rad_med, _, _ = median_with_iqr(rad.rates())
        out.append(SpreadData(
            code_label=code.label, sizes=size_list, median_ler=med_list,
            q25=q25_list, q75=q75_list, radiation_ler=rad_med,
            num_qubits=code.build().num_qubits))
    return out


def equivalent_erasures(data: SpreadData) -> Optional[int]:
    """Smallest erased-cluster size whose median LER reaches the single
    spreading fault's (the paper's 'how many resets equal one strike')."""
    for s, m in zip(data.sizes, data.median_ler):
        if m >= data.radiation_ler:
            return s
    return None
