"""Figure 6 — logical-error criticality by code distance.

A single non-spreading erasure (reset at 100% intensity, the t=0 moment
of a strike) is injected at every possible root qubit; the median
logical error across roots is reported per code distance.

Shape targets: the repetition code's median error *rises* with distance
(Observation III, ~8% at (3,1) to ~20% at (13,1)); the bit-flip
protected XXZZ variants beat their phase-flip mirrors — (3,1) < (1,3)
and (5,3) < (3,5) — by up to ~10% (Observation IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import median_with_iqr
from ..injection import Campaign, InjectionTask
from ..injection.spec import ArchSpec, CodeSpec, FaultSpec
from .common import (DEFAULT_P, DEFAULT_ROUNDS, execute, fitting_mesh,
                     used_physical_qubits)

#: Repetition-code distances of Fig. 6a.
REP_DISTANCES: Tuple[Tuple[int, int], ...] = (
    (3, 1), (5, 1), (7, 1), (9, 1), (11, 1), (13, 1), (15, 1))
#: XXZZ distances of Fig. 6b.
XXZZ_DISTANCES: Tuple[Tuple[int, int], ...] = (
    (1, 3), (3, 1), (3, 3), (3, 5), (5, 3))


def _configs() -> List[Tuple[CodeSpec, ArchSpec]]:
    configs = []
    for dist in REP_DISTANCES:
        spec = CodeSpec("repetition", dist)
        configs.append((spec, fitting_mesh(2 * dist[0])))
    for dist in XXZZ_DISTANCES:
        spec = CodeSpec("xxzz", dist)
        configs.append((spec, fitting_mesh(2 * dist[0] * dist[1])))
    return configs


#: Intrinsic noise level of the ``--deep`` baseline points: two-plus
#: decades below the fault-dominated curves, where plain MC would need
#: millions of shots per point.
DEEP_P = 2e-4


def build_campaign(shots: int = 600, root_seed: int = 601,
                   max_roots: Optional[int] = None,
                   deep: bool = False, deep_p: float = DEEP_P) -> Campaign:
    """One erasure task per (code, root qubit).

    ``max_roots`` caps the injection points per code (evenly strided)
    for quick runs; ``None`` sweeps every used physical qubit.

    ``deep`` adds one *intrinsic-noise floor* point per code: no
    radiation fault, ``deep_p`` depolarizing noise, data readout, and
    the auto-tilted importance sampler (:mod:`repro.rare`) — the
    logical error rates these points measure sit orders of magnitude
    below what the fault-dominated sweep (or plain Monte Carlo at this
    shot budget) can resolve, extending Fig. 6's LER axis into the
    deep tail.
    """
    from ..rare.sampler import SamplerSpec

    tasks: List[InjectionTask] = []
    for spec, arch in _configs():
        roots = used_physical_qubits(spec, arch)
        if max_roots is not None and len(roots) > max_roots:
            stride = max(1, len(roots) // max_roots)
            roots = roots[::stride][:max_roots]
        for root in roots:
            tasks.append(InjectionTask(
                code=spec, arch=arch,
                fault=FaultSpec(kind="erasure", qubits=(root,),
                                probability=1.0),
                intrinsic_p=DEFAULT_P, rounds=DEFAULT_ROUNDS, shots=shots,
            ).with_tags(fig="fig6", family=spec.kind,
                        dz=spec.distance[0], dx=spec.distance[1],
                        root=root))
        if deep:
            # No architecture: the floor is a property of the code
            # itself, and the un-transpiled circuit keeps the noise
            # model exactly lowerable (frame backend + tilting).
            tasks.append(InjectionTask(
                code=spec, arch=None, fault=FaultSpec(kind="none"),
                intrinsic_p=deep_p, rounds=DEFAULT_ROUNDS,
                readout="data",
                sampler=SamplerSpec(kind="tilt", tilt=0.0),
                shots=max(8 * shots, 8192),
            ).with_tags(fig="fig6", family=spec.kind,
                        dz=spec.distance[0], dx=spec.distance[1],
                        deep=1))
    return Campaign(tasks, root_seed=root_seed)


@dataclass
class DistanceRow:
    """One bar of Fig. 6."""

    family: str
    distance: Tuple[int, int]
    circuit_size: int
    median_ler: float
    q25: float
    q75: float
    num_roots: int

    def to_row(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "distance": f"({self.distance[0]},{self.distance[1]})",
            "circuit_size": self.circuit_size,
            "median_ler": self.median_ler,
            "q25": self.q25,
            "q75": self.q75,
            "roots": self.num_roots,
        }


def run(shots: int = 600, max_workers: Optional[int] = None,
        max_roots: Optional[int] = None, store=None, adaptive=None,
        chunk_shots: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        deep: bool = False, deep_p: float = DEEP_P) -> List[DistanceRow]:
    campaign = build_campaign(shots=shots, max_roots=max_roots,
                              deep=deep, deep_p=deep_p)
    results = execute(campaign, max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      backend=backend, workers=workers)
    rows: List[DistanceRow] = []
    for spec, _ in _configs():
        sub = results.filter_tags(family=spec.kind,
                                  dz=spec.distance[0], dx=spec.distance[1])
        fault_sub = (sub.filter(lambda r: "deep" not in dict(r.task.tags))
                     if deep else sub)
        rates = fault_sub.rates()
        med, q25, q75 = median_with_iqr(rates)
        rows.append(DistanceRow(
            family=spec.kind, distance=spec.distance,
            circuit_size=spec.build().num_qubits,
            median_ler=med, q25=q25, q75=q75,
            num_roots=len(fault_sub)))
        if deep:
            # The weighted tail estimate: one row per code, the Wilson
            # CI of the importance-sampled rate standing in for the
            # IQR of the root sweep.
            for r in sub.filter_tags(deep=1):
                lo, hi = r.confidence_interval
                rows.append(DistanceRow(
                    family=f"{spec.kind}+deep", distance=spec.distance,
                    circuit_size=spec.build().num_qubits,
                    median_ler=r.logical_error_rate, q25=lo, q75=hi,
                    num_roots=1))
    return rows


def bitflip_advantage(rows: Sequence[DistanceRow]) -> List[Dict[str, object]]:
    """Observation IV: bit-flip vs phase-flip protection at equal size."""
    by_key = {(r.family, r.distance): r for r in rows}
    pairs = [((3, 1), (1, 3)), ((5, 3), (3, 5))]
    out = []
    for bit, phase in pairs:
        b = by_key.get(("xxzz", bit))
        p = by_key.get(("xxzz", phase))
        if b and p:
            out.append({
                "bitflip_code": f"xxzz-{bit}",
                "phaseflip_code": f"xxzz-{phase}",
                "bitflip_ler": b.median_ler,
                "phaseflip_ler": p.median_ler,
                "advantage": p.median_ler - b.median_ler,
            })
    return out
