"""Figure 4 — spatial decay of the radiation fault.

Regenerates the paper's Fig. 4: the injection-probability field around
an impact at the centre of a 2-D lattice, with a 100% peak at the root
and ``S(d) = 1/(d+1)^2`` damping over architecture-graph distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..arch import mesh
from ..noise.radiation import DEFAULT_SPATIAL_N, spatial_damping


@dataclass
class SpatialDecayData:
    """The 2-D injection-probability field of Fig. 4."""

    extent: int                 # half-width of the plotted window
    distances: np.ndarray       # (2E+1, 2E+1) graph distances
    probabilities: np.ndarray   # (2E+1, 2E+1) injection probabilities
    n: float

    def radial_profile(self) -> List[Dict[str, object]]:
        """Median probability at each integer distance (radial series)."""
        rows = []
        dmax = int(np.nanmax(self.distances))
        for d in range(dmax + 1):
            mask = self.distances == d
            if mask.any():
                rows.append({"distance": d,
                             "injection_prob": float(
                                 np.median(self.probabilities[mask]))})
        return rows

    def to_rows(self) -> List[Dict[str, object]]:
        rows = []
        E = self.extent
        for i in range(2 * E + 1):
            for j in range(2 * E + 1):
                rows.append({
                    "x": j - E,
                    "y": i - E,
                    "distance": float(self.distances[i, j]),
                    "injection_prob": float(self.probabilities[i, j]),
                })
        return rows


def run(extent: int = 10, n: float = DEFAULT_SPATIAL_N) -> SpatialDecayData:
    """Evaluate the field on a ``(2*extent+1)^2`` mesh around the root.

    Distances are architecture-graph distances on the mesh (Manhattan),
    matching the paper's unit-weight interconnection-graph model.
    """
    side = 2 * extent + 1
    lattice = mesh(side, side)
    root = extent * side + extent  # centre
    dist_map = lattice.distances_from(root)
    distances = np.full((side, side), np.nan)
    for q, d in dist_map.items():
        distances[divmod(q, side)] = d
    probabilities = spatial_damping(distances, n)
    return SpatialDecayData(extent=extent, distances=distances,
                            probabilities=probabilities, n=n)
