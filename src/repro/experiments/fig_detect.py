"""Detection figure — strike ROC and LER by recovery policy.

Two panels, both new to this reproduction (the source paper measures
damage post-mortem; its follow-up and Google's cosmic-ray study detect
strikes online):

* **ROC panel** — for a sweep of strike intensities, run a clean batch
  and a struck batch of the d=5 rotated-code memory, score every shot
  with the streaming CUSUM detector, and report ROC AUC, the operating
  point at the default threshold (TPR/FPR), detection latency in
  rounds, and the localisation error of the estimated epicenter.
* **Policy panel** — the same struck memory executed through the
  campaign engine once per :class:`~repro.detect.RecoveryPolicy`, with
  seeds shared across policies so every arm decodes the *same* sampled
  records: LER differences are purely the decode policy.

Both panels use the frame backend: burst reset faults on the entangled
rotated-code data qubits take the documented reset-to-mixed lowering,
identically in every arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codes import XXZZCode, build_memory_experiment
from ..detect import (
    DetectorConfig,
    PackedSyndromes,
    StreamingDetector,
    estimate_cluster,
    roc_auc,
)
from ..detect.recovery import RECOVERY_POLICIES
from ..frames import FrameSimulator, compile_frame_program
from ..injection import Campaign, InjectionTask
from ..injection.results import wilson_interval
from ..injection.spec import CodeSpec, FaultSpec
from ..noise import DepolarizingNoise, NoiseModel, RadiationEvent
from .common import execute

#: Detection-scenario defaults: a long memory so the strike has a
#: genuine pre/post window, struck mid-run at the lattice centre.
DEFAULT_DISTANCE = 5
DEFAULT_ROUNDS = 10
DEFAULT_STRIKE_ROUND = 4
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.1, 0.25, 0.5, 1.0)
DEFAULT_P = 0.005


def _setup(distance: int, rounds: int):
    """Experiment + centre-rooted radiation event on the lattice metric."""
    code = XXZZCode(distance, distance)
    experiment = build_memory_experiment(code, rounds=rounds)
    root = code.lattice.data_index(distance // 2, distance // 2)
    event = RadiationEvent.from_positions(root, code.qubit_positions())
    return code, experiment, event, root


def _frame_batch(experiment, noise, shots: int, seed: int) -> np.ndarray:
    """Packed record words for one seeded frame-backend batch."""
    program = compile_frame_program(experiment.circuit, noise, rng=seed)
    sim = FrameSimulator(experiment.circuit.num_qubits, shots, rng=seed + 1)
    return sim.run_packed(program)


@dataclass
class RocPoint:
    """Detection quality at one strike intensity."""

    intensity: float
    auc: float
    tpr: float
    fpr: float
    median_latency: float
    epicenter_error: float

    def to_row(self) -> Dict[str, object]:
        return {"intensity": self.intensity, "auc": self.auc,
                "tpr": self.tpr, "fpr": self.fpr,
                "median_latency_rounds": self.median_latency,
                "epicenter_error": self.epicenter_error}


def roc_series(shots: int = 2048, distance: int = DEFAULT_DISTANCE,
               rounds: int = DEFAULT_ROUNDS,
               strike_round: int = DEFAULT_STRIKE_ROUND,
               intensities: Sequence[float] = DEFAULT_INTENSITIES,
               intrinsic_p: float = DEFAULT_P, seed: int = 2024,
               config: Optional[DetectorConfig] = None) -> List[RocPoint]:
    """Detection ROC/latency/localisation across strike intensities."""
    code, experiment, event, root = _setup(distance, rounds)
    mpr = max(1, code.measures_per_round)
    detector = StreamingDetector(config or DetectorConfig())
    positions = code.qubit_positions()
    root_pos = positions[root]

    clean_noise = NoiseModel([DepolarizingNoise(intrinsic_p)])
    clean_words = _frame_batch(experiment, clean_noise, shots, seed)
    clean_packed = PackedSyndromes.from_record_words(clean_words,
                                                     experiment, shots)
    clean_report = detector.detect(clean_packed)
    fpr = clean_report.flag_rate

    out: List[RocPoint] = []
    for i, intensity in enumerate(intensities):
        noise = NoiseModel([event.burst(strike_round, mpr, scale=intensity),
                            DepolarizingNoise(intrinsic_p)])
        words = _frame_batch(experiment, noise, shots, seed + 10 * (i + 1))
        packed = PackedSyndromes.from_record_words(words, experiment, shots)
        report = detector.detect(packed)
        auc = roc_auc(report.max_scores, clean_report.max_scores)
        timely = report.flagged & (report.flag_round >= strike_round)
        tpr = float(np.mean(timely))
        lats = report.flag_round[timely] - strike_round
        latency = float(np.median(lats)) if lats.size else float("nan")
        cluster = estimate_cluster(packed, report, code)
        if cluster is not None:
            anc = (list(code.z_ancillas) + list(code.x_ancillas))[
                cluster.epicenter]
            ap = positions[anc]
            loc_err = (abs(ap[0] - root_pos[0])
                       + abs(ap[1] - root_pos[1])) / 2.0
        else:
            loc_err = float("nan")
        out.append(RocPoint(intensity=float(intensity), auc=float(auc),
                            tpr=tpr, fpr=float(fpr),
                            median_latency=latency,
                            epicenter_error=float(loc_err)))
    return out


def build_campaign(shots: int = 2048, distance: int = DEFAULT_DISTANCE,
                   rounds: int = DEFAULT_ROUNDS,
                   strike_round: int = DEFAULT_STRIKE_ROUND,
                   intensity: float = 1.0, intrinsic_p: float = DEFAULT_P,
                   decoder: str = "mwpm",
                   policies: Sequence[str] = RECOVERY_POLICIES,
                   root_seed: int = 7202) -> Campaign:
    """One task per recovery policy over the identical struck memory.

    Seeds are pinned (not campaign-derived) and equal across policies:
    the sampled records match shot for shot, so policy columns are a
    paired comparison.
    """
    code = CodeSpec("xxzz", (distance, distance))
    built = code.build()
    root = built.lattice.data_index(distance // 2, distance // 2)
    fault = FaultSpec(kind="radiation", root_qubit=root,
                      strike_round=strike_round, intensity=intensity)
    tasks = []
    for policy in policies:
        task = InjectionTask(code=code, fault=fault, rounds=rounds,
                             intrinsic_p=intrinsic_p, decoder=decoder,
                             backend="frames", recovery=policy,
                             shots=shots, seed=root_seed)
        tasks.append(task.with_tags(fig="detect", policy=policy,
                                    intensity=intensity))
    return Campaign(tasks, root_seed=root_seed)


def policy_rows(results) -> List[Dict[str, object]]:
    rows = []
    for r in results:
        lo, hi = wilson_interval(r.errors, r.shots)
        rows.append({"policy": dict(r.task.tags)["policy"],
                     "decoder": r.task.decoder.label,
                     "shots": r.shots, "errors": r.errors,
                     "ler": r.logical_error_rate,
                     "ler_lo": lo, "ler_hi": hi})
    return rows


def run(shots: int = 1024, distance: int = DEFAULT_DISTANCE,
        rounds: int = DEFAULT_ROUNDS,
        strike_round: int = DEFAULT_STRIKE_ROUND,
        intensity: float = 1.0, decoder: str = "mwpm",
        max_workers: Optional[int] = None, store=None, adaptive=None,
        chunk_shots: Optional[int] = None, backend: Optional[str] = None,
        workers: Optional[int] = None
        ) -> Tuple[List[RocPoint], List[Dict[str, object]]]:
    """Both panels at one call (the ``repro detect`` CLI entry).

    ``backend`` is accepted for engine-flag uniformity; the policy
    campaign pins ``frames`` regardless (the only backend fast enough
    for detection-scale batches) unless an override is passed.
    """
    roc = roc_series(shots=shots, distance=distance, rounds=rounds,
                     strike_round=strike_round)
    campaign = build_campaign(shots=shots, distance=distance, rounds=rounds,
                              strike_round=strike_round, intensity=intensity,
                              decoder=decoder)
    results = execute(campaign, max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      backend=backend, workers=workers)
    return roc, policy_rows(results)
