"""Headline observation checks (paper Observations I-VIII).

Consumes the figure campaigns' outputs and evaluates every qualitative
claim of the paper, producing the paper-vs-measured rows recorded in
EXPERIMENTS.md.  Each check is a *shape* assertion — orderings, trends,
crossovers — rather than an absolute-number comparison (our substrate
is a simulator stack, not the authors' exact qtcodes/Qiskit versions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.landscape import Landscape
from .fig6_distance import DistanceRow, bitflip_advantage
from .fig7_spread import SpreadData
from .fig8_architecture import ArchitectureData, index_correlation


@dataclass
class ObservationCheck:
    """One paper claim with our measured verdict."""

    observation: str
    paper_claim: str
    measured: str
    holds: bool

    def to_row(self) -> Dict[str, object]:
        return {
            "obs": self.observation,
            "paper": self.paper_claim,
            "measured": self.measured,
            "holds": "yes" if self.holds else "NO",
        }


def check_observation_1(landscapes: Dict[str, Landscape]
                        ) -> ObservationCheck:
    """Radiation keeps LER catastrophic even at p = 1e-8."""
    floors = {label: float(ls.rates[0, 0]) for label, ls in landscapes.items()}
    measured = ", ".join(f"{k}: {v:.0%}" for k, v in floors.items())
    return ObservationCheck(
        observation="I",
        paper_claim="LER at strike stays >20% even at p=1e-8 "
                    "(24% rep / 52% xxzz)",
        measured=f"LER at strike, p=1e-8: {measured}",
        holds=all(v > 0.15 for v in floors.values()),
    )


def check_observation_2(landscapes: Dict[str, Landscape],
                        tol: float = 0.05) -> ObservationCheck:
    """No destructive interference: surface has no significant dips."""
    worst = {}
    for label, ls in landscapes.items():
        # Violations along the noise axis (rates should rise with p).
        n_cells = ls.rates.size
        worst[label] = ls.monotone_violations(axis=0, tol=tol) / n_cells
    measured = ", ".join(f"{k}: {v:.1%} dip cells" for k, v in worst.items())
    return ObservationCheck(
        observation="II",
        paper_claim="intrinsic noise and radiation interfere only "
                    "constructively (no pits in the surface)",
        measured=measured,
        holds=all(v < 0.10 for v in worst.values()),
    )


def check_observation_3(rows: Sequence[DistanceRow]) -> ObservationCheck:
    """Larger repetition codes are MORE sensitive to a fixed fault."""
    rep = [r for r in rows if r.family == "repetition"]
    rep.sort(key=lambda r: r.distance[0])
    lers = [r.median_ler for r in rep]
    measured = " -> ".join(f"{x:.0%}" for x in lers)
    smallest, largest = lers[0], max(lers[-2:]) if len(lers) >= 2 else lers[-1]
    return ObservationCheck(
        observation="III",
        paper_claim="repetition-code median LER rises with distance "
                    "(~8% at (3,1) to ~20% at (13,1))",
        measured=f"rep {rep[0].distance}..{rep[-1].distance}: {measured}",
        holds=largest > smallest,
    )


def check_observation_4(rows: Sequence[DistanceRow]) -> ObservationCheck:
    """Bit-flip protection beats phase-flip at equal qubit count."""
    adv = bitflip_advantage(rows)
    measured = ", ".join(
        f"{a['bitflip_code']} {a['bitflip_ler']:.0%} vs "
        f"{a['phaseflip_code']} {a['phaseflip_ler']:.0%}" for a in adv)
    return ObservationCheck(
        observation="IV",
        paper_claim="bit-flip protected variants beat phase-flip mirrors "
                    "by up to ~10% ((3,1)<(1,3), (5,3)<(3,5))",
        measured=measured,
        holds=bool(adv) and all(a["advantage"] > 0 for a in adv),
    )


def check_observation_5(spread: Sequence[SpreadData]) -> ObservationCheck:
    """One spreading fault out-damages several independent erasures."""
    measured_parts = []
    holds = True
    for d in spread:
        single = d.median_ler[d.sizes.index(1)] if 1 in d.sizes else np.nan
        measured_parts.append(
            f"{d.code_label}: 1-qubit erase {single:.0%} vs "
            f"spreading {d.radiation_ler:.0%}")
        holds &= d.radiation_ler > single
    return ObservationCheck(
        observation="V",
        paper_claim="a single correlated spreading fault is worse than a "
                    "single (and several) uncorrelated erasures",
        measured="; ".join(measured_parts),
        holds=holds,
    )


def check_observation_6(spread: Sequence[SpreadData]) -> ObservationCheck:
    """LER escalates with erased-cluster size (>=80% past half).

    The trend check compares the small-cluster and large-cluster ends
    rather than demanding strict per-step monotonicity: cluster medians
    carry parity effects (erasing an even number of data qubits leaves
    the raw parity readout intact) and sampling noise, both visible in
    the paper's own step-shaped Fig. 7.
    """
    measured_parts = []
    holds = True
    for d in spread:
        half = d.num_qubits // 2
        big = [m for s, m in zip(d.sizes, d.median_ler) if s > half]
        top = max(big) if big else np.nan
        measured_parts.append(
            f"{d.code_label}: 1 erased {d.median_ler[0]:.0%} -> "
            f">{half} erased {top:.0%}")
        holds &= bool(big) and top > 0.6 and top > d.median_ler[0]
    return ObservationCheck(
        observation="VI",
        paper_claim="erasing more than half the qubits drives LER to ~80%",
        measured="; ".join(measured_parts),
        holds=holds,
    )


def check_observation_7(arch_data: Sequence[ArchitectureData]
                        ) -> ObservationCheck:
    """Earlier-used qubits are more critical.

    Measured through the mechanism the paper states (first-use order in
    the gate sequence), since physical indices lose meaning after
    transpilation.  The effect is small relative to per-root sampling
    noise — we require the *direction* (negative mean correlation), and
    EXPERIMENTS.md reports the magnitude honestly.
    """
    from ..injection.spec import ArchSpec, CodeSpec
    from .fig8_architecture import first_use_correlation

    def spec_of(d: ArchitectureData):
        kind, dist = d.code_label.split("-(")
        dz, dx = dist.rstrip(")").split(",")
        code = CodeSpec(kind, (int(dz), int(dx)))
        label = d.arch_label
        if label.startswith(("mesh-", "linear-", "complete-")):
            name, args = label.split("-", 1)
            arch = ArchSpec(name, tuple(int(x) for x in args.split("x")))
        else:
            arch = ArchSpec(label)
        return code, arch

    rhos = []
    for d in arch_data:
        code, arch = spec_of(d)
        rho = first_use_correlation(code, arch, d)
        if np.isfinite(rho):
            rhos.append(rho)
    mean_rho = float(np.mean(rhos)) if rhos else float("nan")
    return ObservationCheck(
        observation="VII",
        paper_claim="median LER decreases for later-used qubits (earlier "
                    "gates spread further through the DAG)",
        measured=f"mean Spearman rho(first-use order, LER) = {mean_rho:+.2f} "
                 f"over {len(rhos)} panels",
        holds=bool(rhos) and mean_rho < 0,
    )


def check_observation_8(arch_data: Sequence[ArchitectureData]
                        ) -> ObservationCheck:
    """Connectivity must match the code: mesh ~best for XXZZ, and the
    linear chain is catastrophic for XXZZ but fine for repetition."""
    rep = {d.arch_label: d for d in arch_data
           if d.code_label.startswith("repetition")}
    xxzz = {d.arch_label: d for d in arch_data
            if d.code_label.startswith("xxzz")}
    holds = True
    parts = []
    lin_rep = next((d for n, d in rep.items() if n.startswith("linear")), None)
    if lin_rep is not None and rep:
        best_rep = min(rep.values(), key=lambda d: d.median_ler)
        parts.append(f"rep: linear {lin_rep.median_ler:.0%} "
                     f"(best {best_rep.arch_label} {best_rep.median_ler:.0%})")
        holds &= lin_rep.median_ler <= best_rep.median_ler + 0.05
    lin_xxzz = next((d for n, d in xxzz.items() if n.startswith("linear")), None)
    mesh_xxzz = next((d for n, d in xxzz.items() if n.startswith("mesh")), None)
    if lin_xxzz is not None and mesh_xxzz is not None:
        parts.append(f"xxzz: mesh {mesh_xxzz.median_ler:.0%} "
                     f"(swaps {mesh_xxzz.swap_count}) vs linear "
                     f"{lin_xxzz.median_ler:.0%} (swaps {lin_xxzz.swap_count})")
        holds &= lin_xxzz.median_ler > mesh_xxzz.median_ler
        holds &= lin_xxzz.swap_count > mesh_xxzz.swap_count
    return ObservationCheck(
        observation="VIII",
        paper_claim="well-connected graphs curb SWAP overhead and fault "
                    "spread for XXZZ; repetition is near-optimal on linear",
        measured="; ".join(parts),
        holds=holds,
    )


def check_all(landscapes: Optional[Dict[str, Landscape]] = None,
              distance_rows: Optional[Sequence[DistanceRow]] = None,
              spread_data: Optional[Sequence[SpreadData]] = None,
              arch_data: Optional[Sequence[ArchitectureData]] = None
              ) -> List[ObservationCheck]:
    """Evaluate every observation for which data was supplied."""
    checks: List[ObservationCheck] = []
    if landscapes:
        checks.append(check_observation_1(landscapes))
        checks.append(check_observation_2(landscapes))
    if distance_rows:
        checks.append(check_observation_3(distance_rows))
        checks.append(check_observation_4(distance_rows))
    if spread_data:
        checks.append(check_observation_5(spread_data))
        checks.append(check_observation_6(spread_data))
    if arch_data:
        checks.append(check_observation_7(arch_data))
        checks.append(check_observation_8(arch_data))
    return checks
