"""Figure 3 — temporal decay of the radiation fault.

Regenerates the two series of the paper's Fig. 3: the continuous decay
``T(t) = exp(-10 t)`` and its 10-sample step approximation ``T̂(t)``,
plus an ``n_s`` ablation quantifying the accuracy/cost trade-off the
paper mentions when fixing ``n_s = 10``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..noise.radiation import (
    DEFAULT_GAMMA,
    DEFAULT_NUM_SAMPLES,
    sample_times,
    stepped_temporal_decay,
    temporal_decay,
)


@dataclass
class TemporalDecayData:
    """Series behind Fig. 3."""

    t: np.ndarray
    continuous: np.ndarray
    stepped: np.ndarray
    gamma: float
    num_samples: int

    def to_rows(self) -> List[Dict[str, object]]:
        return [{"t": float(tt), "T(t)": float(c), "That(t)": float(s)}
                for tt, c, s in zip(self.t, self.continuous, self.stepped)]


def run(num_points: int = 101, gamma: float = DEFAULT_GAMMA,
        num_samples: int = DEFAULT_NUM_SAMPLES) -> TemporalDecayData:
    """Evaluate both curves on a dense grid over the fault window."""
    t = np.linspace(0.0, 1.0, num_points)
    return TemporalDecayData(
        t=t,
        continuous=temporal_decay(t, gamma),
        stepped=stepped_temporal_decay(t, gamma, num_samples),
        gamma=gamma,
        num_samples=num_samples,
    )


def sample_table(gamma: float = DEFAULT_GAMMA,
                 num_samples: int = DEFAULT_NUM_SAMPLES
                 ) -> List[Dict[str, object]]:
    """The ``n_s`` sampled injection probabilities (Fig. 5's time axis)."""
    ts = sample_times(num_samples)
    return [{"sample": k, "t": float(tt),
             "injection_prob": float(temporal_decay(tt, gamma))}
            for k, tt in enumerate(ts)]


def sampling_ablation(candidates: Sequence[int] = (2, 5, 10, 20, 50),
                      gamma: float = DEFAULT_GAMMA,
                      num_points: int = 2001) -> List[Dict[str, object]]:
    """Approximation error of T̂ vs sample count (why n_s = 10 suffices)."""
    t = np.linspace(0.0, 1.0, num_points)
    ref = temporal_decay(t, gamma)
    rows = []
    for ns in candidates:
        stepped = stepped_temporal_decay(t, gamma, ns)
        err = np.abs(stepped - ref)
        rows.append({
            "num_samples": ns,
            "max_abs_error": float(err.max()),
            "mean_abs_error": float(err.mean()),
            "sim_cost_factor": ns / DEFAULT_NUM_SAMPLES,
        })
    return rows
