"""Syndrome-round ablation (extension beyond the paper).

The paper fixes two syndrome-extraction rounds (Figs. 1-2).  Because a
radiation fault *persists* across the whole shot, adding rounds is a
plausible mitigation: later rounds watch the fault decay and give the
decoder more temporal structure.  This experiment sweeps the round
count under (a) intrinsic noise only and (b) a radiation strike, and
reports whether extra rounds pay for their extra exposure — design
guidance in the spirit of the paper's RQ3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..injection import Campaign, InjectionTask
from ..injection.spec import ArchSpec, CodeSpec, FaultSpec
from .common import DEFAULT_P, execute

#: Round counts swept (paper value: 2).
ROUND_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 6)

CODE = CodeSpec("xxzz", (3, 3))
ARCH = ArchSpec("mesh", (5, 4))


def build_campaign(shots: int = 1000, root_seed: int = 901,
                   rounds_list: Sequence[int] = ROUND_COUNTS) -> Campaign:
    tasks: List[InjectionTask] = []
    for rounds in rounds_list:
        for scenario, fault in [
            ("noise-only", FaultSpec()),
            ("strike", FaultSpec(kind="radiation", root_qubit=2,
                                 time_index=0)),
        ]:
            tasks.append(InjectionTask(
                code=CODE, arch=ARCH, fault=fault, rounds=int(rounds),
                intrinsic_p=DEFAULT_P, shots=shots,
            ).with_tags(fig="rounds", rounds=rounds, scenario=scenario))
    return Campaign(tasks, root_seed=root_seed)


@dataclass
class RoundsRow:
    rounds: int
    noise_only_ler: float
    strike_ler: float

    def to_row(self) -> Dict[str, object]:
        return {"rounds": self.rounds,
                "noise_only_ler": self.noise_only_ler,
                "strike_ler": self.strike_ler}


def run(shots: int = 1000, max_workers: Optional[int] = None,
        rounds_list: Sequence[int] = ROUND_COUNTS, store=None,
        adaptive=None, chunk_shots: Optional[int] = None,
        workers: Optional[int] = None) -> List[RoundsRow]:
    results = execute(build_campaign(shots=shots, rounds_list=rounds_list),
                      max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      workers=workers)
    rows = []
    for rounds in rounds_list:
        sub = results.filter_tags(rounds=rounds)
        noise = sub.filter_tags(scenario="noise-only")
        strike = sub.filter_tags(scenario="strike")
        rows.append(RoundsRow(
            rounds=int(rounds),
            noise_only_ler=noise.pooled_rate(),
            strike_ler=strike.pooled_rate()))
    return rows
