"""Figure 5 — logical-error landscape: intrinsic noise x radiation.

For the distance-(5,1) repetition code on a 5x2 lattice and the
distance-(3,3) XXZZ code on a 5x4 lattice (paper §V-A), sweeps the
intrinsic physical error rate ``p`` from 1e-8 to 1e-1 against the full
time evolution of a radiation fault rooted at physical qubit 2, and
interpolates the post-decoding logical error surface.

Shape targets (DESIGN.md): high LER at the strike for *every* p
(Observation I) and no destructive interference — the surface never
dips as either noise source intensifies (Observation II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.landscape import Landscape
from ..injection import Campaign, InjectionTask
from ..injection.spec import ArchSpec, CodeSpec, FaultSpec
from ..noise.radiation import sample_times, temporal_decay
from .common import DEFAULT_ROUNDS, NUM_TIME_SAMPLES, execute

#: The two paper configurations: (code, lattice, root qubit).
CONFIGS: Tuple[Tuple[CodeSpec, ArchSpec, int], ...] = (
    (CodeSpec("repetition", (5, 1)), ArchSpec("mesh", (5, 2)), 2),
    (CodeSpec("xxzz", (3, 3)), ArchSpec("mesh", (5, 4)), 2),
)

#: Intrinsic-noise sweep, 1e-8 .. 1e-1 (paper's axis).
P_VALUES: Tuple[float, ...] = tuple(10.0 ** e for e in range(-8, 0))


def build_campaign(shots: int = 1500,
                   p_values: Sequence[float] = P_VALUES,
                   configs=CONFIGS, root_seed: int = 501) -> Campaign:
    """All (code, p, time-sample) points of the landscape."""
    tasks: List[InjectionTask] = []
    for code, arch, root in configs:
        for p in p_values:
            for k in range(NUM_TIME_SAMPLES):
                tasks.append(InjectionTask(
                    code=code, arch=arch,
                    fault=FaultSpec(kind="radiation", root_qubit=root,
                                    time_index=k),
                    intrinsic_p=float(p), rounds=DEFAULT_ROUNDS,
                    shots=shots,
                ).with_tags(fig="fig5", code=code.label, p=p, t=k))
    return Campaign(tasks, root_seed=root_seed)


def run(shots: int = 1500, p_values: Sequence[float] = P_VALUES,
        configs=CONFIGS, max_workers: Optional[int] = None,
        store=None, adaptive=None, chunk_shots: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None) -> Dict[str, Landscape]:
    """Execute the sweep and assemble one landscape per code."""
    campaign = build_campaign(shots=shots, p_values=p_values,
                              configs=configs)
    results = execute(campaign, max_workers=max_workers, store=store,
                      adaptive=adaptive, chunk_shots=chunk_shots,
                      backend=backend, workers=workers)
    times = sample_times(NUM_TIME_SAMPLES)
    landscapes: Dict[str, Landscape] = {}
    for code, _, _ in configs:
        rates = np.full((len(p_values), NUM_TIME_SAMPLES), np.nan)
        for r in results.filter_tags(code=code.label):
            tags = dict(r.task.tags)
            i = list(p_values).index(float(tags["p"]))
            j = int(tags["t"])
            rates[i, j] = r.logical_error_rate
        landscapes[code.label] = Landscape(
            code_label=code.label,
            p_values=np.asarray(p_values, dtype=float),
            time_indices=np.arange(NUM_TIME_SAMPLES),
            root_probs=temporal_decay(times),
            rates=rates,
        )
    return landscapes


def summarize(landscapes: Dict[str, Landscape]) -> List[Dict[str, object]]:
    """Headline numbers the paper quotes from Fig. 5."""
    rows = []
    for label, ls in landscapes.items():
        strike = ls.at_strike()
        rows.append({
            "code": label,
            "peak_ler": ls.peak,
            "ler_at_strike_mean": float(np.nanmean(strike)),
            "ler_at_strike_max": float(np.nanmax(strike)),
            "radiation_floor_p1e-8": float(ls.rates[0, 0]),
            "noise_only_ler_p1e-1": float(ls.rates[-1, -1]),
            "dip_violations": ls.monotone_violations(axis=0, tol=0.03),
        })
    return rows
