"""Frame-backend entry points mirroring the tableau executor.

:func:`run_batch_frames` is the drop-in counterpart of
:func:`repro.noise.executor.run_batch_noisy`: same signature, same
record shape, an order of magnitude (or three) faster on the
deterministic Clifford memory circuits the campaigns hammer.  A single
``rng`` drives the reference pass, the Z-frame initialisation and every
noise sampler, so a seed fully determines the run.

Campaign code compiles once per task and reuses the program across the
task's simulation blocks (see :func:`repro.injection.campaign.
iter_task_chunks`); this module-level helper recompiles per call, which
is the right trade-off for ad-hoc and test use.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..circuits import Circuit
from ..noise.base import NoiseModel
from .program import (
    FrameLoweringError,
    FrameProgram,
    compile_frame_program,
    supports_noise,
)
from .simulator import FrameSimulator

#: Recognised backend selectors, shared by the executor, the campaign
#: engine, the sweep spec and the CLI.
BACKENDS = ("auto", "frames", "tableau")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def run_batch_frames(circuit: Circuit, noise: Optional[NoiseModel],
                     batch_size: int,
                     rng: Union[np.random.Generator, int, None] = None,
                     program: Optional[FrameProgram] = None) -> np.ndarray:
    """Run ``batch_size`` noisy shots via Pauli frames.

    Returns records ``(B, cbits)`` uint8.  Pass a precompiled
    ``program`` to skip the reference pass (it must have been compiled
    from the same circuit/noise pair).  Raises
    :class:`FrameLoweringError` when the noise model cannot be lowered.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if program is None:
        program = compile_frame_program(circuit, noise, rng=rng)
    sim = FrameSimulator(circuit.num_qubits, batch_size, rng=rng)
    return sim.run(program)


__all__ = [
    "BACKENDS",
    "FrameLoweringError",
    "FrameProgram",
    "compile_frame_program",
    "run_batch_frames",
    "supports_noise",
    "validate_backend",
]
