"""Bit-packed Pauli-frame simulator.

Instead of evolving ``B`` full stabilizer tableaus, the frame simulator
tracks — per shot — only the *Pauli difference* between the noisy run
and a single noiseless reference run (Gidney, "Stim: a fast stabilizer
circuit simulator", 2021).  The X and Z frame components of each qubit
are stored bit-packed across shots (64 shots per ``uint64`` word), so
every gate, noise sample and measurement is a handful of whole-array
bitwise ops on ``(num_qubits, ceil(B/64))`` words: memory and work per
gate shrink from ``O(B * n)`` tableau rows to ``O(B / 64)`` words.

Sampling is exact in distribution for any Clifford+measure+reset
circuit because the Z frame is drawn uniformly at random at
initialisation and re-randomised by resets and measurements: a uniform
Z product stabilises |0...0> (so the state is untouched), but once
rotated through the circuit it supplies exactly the per-shot randomness
— with the right cross-measurement correlations — that random-branch
measurements require.  Deterministic reference measurements are never
perturbed by it (their ``Z`` commutes with the whole stabilizer group),
so noiseless records match the reference bit-for-bit.  Noise enters
through the lowered ops of a :class:`~repro.frames.program.FrameProgram`
(see that module for exactness notes on reset faults).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Union

import numpy as np

from .packing import (
    FULL_WORD,
    bernoulli_words,
    pack_bool,
    pack_bool_rows,
    random_words,
    unpack_words,
    words_for,
)
from .program import (
    OP_CX,
    OP_CX_LAYER,
    OP_CZ,
    OP_CZ_LAYER,
    OP_DEPOLARIZE,
    OP_DEPOLARIZE_LAYER,
    OP_H,
    OP_H_LAYER,
    OP_MEASURE,
    OP_MEASURE_LAYER,
    OP_RESET,
    OP_RESET_LAYER,
    OP_RESET_NOISE,
    OP_S,
    OP_S_LAYER,
    OP_SWAP,
    OP_SWAP_LAYER,
    FrameProgram,
)

from .. import obs
from ..obs import prof as _prof

_LAYER_OPS = frozenset((OP_CX_LAYER, OP_CZ_LAYER, OP_H_LAYER,
                        OP_S_LAYER, OP_SWAP_LAYER, OP_MEASURE_LAYER,
                        OP_RESET_LAYER, OP_DEPOLARIZE_LAYER))
_OBS_BLOCKS = obs.counter("frames.blocks")
_OBS_OPS = obs.counter("frames.ops")
_OBS_FUSED = obs.counter("frames.fused_ops")


class FrameSimulator:
    """X/Z Pauli frames for ``batch_size`` shots, bit-packed in uint64.

    Parameters
    ----------
    num_qubits:
        Register width ``n``.
    batch_size:
        Number of shots ``B`` (64 per word).
    rng:
        Generator (or int seed) driving the Z-frame randomisation and
        every lowered noise sampler.
    tilt:
        Importance-sampling tilt on depolarizing sites: each lowered
        ``OP_DEPOLARIZE`` site with nominal probability ``p`` fires at
        ``q = max(p, min(tilt * p, tilt_p_cap))`` instead, and the shot
        accumulates the exact log-likelihood-ratio ``log P_p / P_q`` in
        :attr:`log_weights` — a per-shot float row riding alongside the
        packed X/Z frames.  ``tilt=1`` (the default) keeps the
        historical bit-identical sampling path and allocates nothing.
        Fault-reset sites (``OP_RESET_NOISE``) are never tilted: the
        strike is the *condition* of a radiation campaign, not the rare
        event, and its per-site probabilities are already order one.
    """

    def __init__(self, num_qubits: int, batch_size: int,
                 rng: Union[np.random.Generator, int, None] = None,
                 tilt: float = 1.0, tilt_p_cap: float = 0.5) -> None:
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if tilt != 1.0 and tilt < 1.0:
            raise ValueError("tilt must be >= 1")
        n = int(num_qubits)
        B = int(batch_size)
        self.n = n
        self.batch_size = B
        self.num_words = words_for(B)
        self.tilt = float(tilt)
        self.tilt_p_cap = float(tilt_p_cap)
        #: Per-shot accumulated log-likelihood-ratio weights (tilted
        #: sampling only; ``None`` — and zero overhead — at tilt=1).
        self.log_weights = (np.zeros(B, dtype=np.float64)
                            if self.tilt != 1.0 else None)
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.x = np.zeros((n, self.num_words), dtype=np.uint64)
        # Uniformly random initial Z frame: stabilises |0...0>, feeds the
        # random-measurement branches downstream (module docstring).  One
        # (n, W) draw: Generator.bytes streams identically whether pulled
        # per row or in one call, so the sampled frames match the
        # historical per-qubit loop bit-for-bit.
        self.z = random_words(rng, n * self.num_words).reshape(
            n, self.num_words).copy()

    # ------------------------------------------------------------------
    # Frame propagation (conjugation by the ideal Cliffords)
    # ------------------------------------------------------------------
    def h(self, a: int) -> None:
        tmp = self.x[a].copy()
        self.x[a] = self.z[a]
        self.z[a] = tmp

    def s(self, a: int) -> None:
        self.z[a] ^= self.x[a]

    def cx(self, c: int, t: int) -> None:
        self.x[t] ^= self.x[c]
        self.z[c] ^= self.z[t]

    def cz(self, a: int, b: int) -> None:
        self.z[a] ^= self.x[b]
        self.z[b] ^= self.x[a]

    def swap(self, a: int, b: int) -> None:
        self.x[[a, b]] = self.x[[b, a]]
        self.z[[a, b]] = self.z[[b, a]]

    # ------------------------------------------------------------------
    # Fused layers: one (len(layer), W) kernel sweep per run of
    # qubit-disjoint same-type Cliffords (the compiler guarantees
    # disjointness, so fancy-indexed whole-layer ops match the
    # gate-by-gate semantics exactly — and no rng is involved, so the
    # sampled streams are unchanged by fusion).
    # ------------------------------------------------------------------
    def h_layer(self, qs: np.ndarray) -> None:
        tmp = self.x[qs].copy()
        self.x[qs] = self.z[qs]
        self.z[qs] = tmp

    def s_layer(self, qs: np.ndarray) -> None:
        self.z[qs] ^= self.x[qs]

    def cx_layer(self, cs: np.ndarray, ts: np.ndarray) -> None:
        self.x[ts] ^= self.x[cs]
        self.z[cs] ^= self.z[ts]

    def cz_layer(self, a: np.ndarray, b: np.ndarray) -> None:
        self.z[a] ^= self.x[b]
        self.z[b] ^= self.x[a]

    def swap_layer(self, a: np.ndarray, b: np.ndarray) -> None:
        ab = np.concatenate([a, b])
        ba = np.concatenate([b, a])
        self.x[ab] = self.x[ba]
        self.z[ab] = self.z[ba]

    def measure_layer(self, qs: np.ndarray, refs: np.ndarray) -> np.ndarray:
        """Fused Z-measure of disjoint qubits; returns ``(k, W)`` words.

        Bit-identical to ``k`` scalar :meth:`measure` calls: reads
        precede the Z re-randomisation (which never touches X), and the
        one block draw equals the per-qubit draws concatenated.
        """
        out = self.x[qs].copy()
        out[refs.astype(bool)] ^= FULL_WORD
        self.z[qs] ^= random_words(
            self.rng, len(qs) * self.num_words).reshape(len(qs), -1)
        return out

    def reset_layer(self, qs: np.ndarray) -> None:
        self.x[qs] = 0
        self.z[qs] = random_words(
            self.rng, len(qs) * self.num_words).reshape(len(qs), -1)

    def depolarize_layer(self, qs: np.ndarray, ps: np.ndarray) -> None:
        """Fused depolarize sites: per-site draws stay in scalar order,
        mask packing and frame application collapse to one sweep."""
        u = np.empty((len(qs), self.batch_size))
        for i in range(len(qs)):
            u[i] = self.rng.random(self.batch_size)
        ps = self._tilted_layer_llr(ps, u)
        third = ps[:, None] / 3.0
        mx = pack_bool_rows(u < third)
        my = pack_bool_rows((u >= third) & (u < 2 * third))
        mz = pack_bool_rows((u >= 2 * third) & (u < ps[:, None]))
        self.x[qs] ^= mx | my
        self.z[qs] ^= mz | my

    # ------------------------------------------------------------------
    # Tilted (importance-sampled) depolarize helpers
    # ------------------------------------------------------------------
    def _tilted_p(self, p: float) -> float:
        """The sampling probability of a nominal-``p`` depolarize site
        under the simulator's tilt: at most ``tilt_p_cap``, but never
        below ``p`` (a site already past the cap stays at ``p`` — zero
        likelihood ratio — rather than under-sampling the tail)."""
        return max(p, min(self.tilt * p, self.tilt_p_cap))

    def _accumulate_llr(self, p: float, q: float, fired: np.ndarray) -> None:
        """Add one site's log-likelihood-ratio to every shot's weight.

        The tilt scales all three Pauli arms uniformly (``q/3`` each),
        so the ratio depends only on whether the site fired:
        ``log(p/q)`` on error shots, ``log((1-p)/(1-q))`` elsewhere.
        """
        if q == p:
            return
        self.log_weights += np.where(fired, np.log(p / q),
                                     np.log((1.0 - p) / (1.0 - q)))

    def _tilted_layer_llr(self, ps: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Resolve a depolarize layer's sampling probabilities and bank
        the layer's log-likelihood ratios; identity at tilt=1."""
        if self.log_weights is None:
            return ps
        qs_p = np.maximum(ps, np.minimum(self.tilt * ps, self.tilt_p_cap))
        fired = u < qs_p[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            llr_hit = np.log(ps / qs_p)
            llr_miss = np.log((1.0 - ps) / (1.0 - qs_p))
        delta = np.where(fired, llr_hit[:, None], llr_miss[:, None])
        self.log_weights += np.where((qs_p == ps)[:, None], 0.0,
                                     delta).sum(axis=0)
        return qs_p

    # ------------------------------------------------------------------
    # Non-unitary ops
    # ------------------------------------------------------------------
    def measure(self, a: int, reference_bit: int) -> np.ndarray:
        """Z-measure ``a``: per-shot outcome words (reference XOR X frame).

        The Z frame of the measured qubit is re-randomised: collapse
        destroys the phase coherence the old Z component tracked, and
        the fresh randomness decorrelates later basis-changed
        measurements exactly as physics does.
        """
        out = self.x[a].copy()
        if reference_bit:
            out ^= FULL_WORD
        self.z[a] ^= random_words(self.rng, self.num_words)
        return out

    def reset(self, a: int) -> None:
        """Circuit reset (present in the reference run too): both runs
        land in |0>, so the X difference vanishes and Z is randomised."""
        self.x[a] = 0
        self.z[a] = random_words(self.rng, self.num_words)

    # ------------------------------------------------------------------
    # Lowered noise ops
    # ------------------------------------------------------------------
    def depolarize(self, a: int, p: float) -> None:
        """Per-shot X/Y/Z error with probability ``p/3`` each (Eq. 4).

        Under a tilt the site samples at the boosted probability and
        banks the shot's log-likelihood ratio (see the class doc)."""
        u = self.rng.random(self.batch_size)
        if self.log_weights is not None:
            q = self._tilted_p(p)
            self._accumulate_llr(p, q, u < q)
            p = q
        third = p / 3.0
        mx = pack_bool(u < third)
        my = pack_bool((u >= third) & (u < 2 * third))
        mz = pack_bool((u >= 2 * third) & (u < p))
        self.x[a] ^= mx | my
        self.z[a] ^= mz | my

    def reset_noise(self, a: int, p: float,
                    x_value: Optional[int] = None) -> None:
        """Fault reset of ``a`` on a Bernoulli(``p``) subset of shots.

        ``x_value`` is the reference state's definite Z eigenvalue at
        this site (exact lowering: the frame maps the reference onto
        |0>), or ``None`` when the reference is indefinite there — the
        reset then lowers to a full Pauli twirl (reset to the maximally
        mixed state; see :mod:`repro.frames.program`).
        """
        mask = bernoulli_words(self.rng, p, self.batch_size)
        if not mask.any():
            return
        keep = ~mask
        if x_value is None:
            xbits = random_words(self.rng, self.num_words)
        elif x_value:
            xbits = np.full(self.num_words, FULL_WORD, dtype=np.uint64)
        else:
            xbits = np.zeros(self.num_words, dtype=np.uint64)
        self.x[a] = (self.x[a] & keep) | (xbits & mask)
        zbits = random_words(self.rng, self.num_words)
        self.z[a] = (self.z[a] & keep) | (zbits & mask)

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run_packed(self, program: FrameProgram) -> np.ndarray:
        """Execute a compiled program; returns record *words*.

        The ``(num_cbits, W)`` uint64 result is the backend's native
        output: cbit ``c``'s per-shot outcomes bit-packed 64 shots per
        word.  Frame-native consumers (the :mod:`repro.detect` streaming
        detector) reduce these words directly — popcount, bit-sliced
        counters, whole-word XOR — without ever materialising per-shot
        uint8 records.
        """
        if program.num_qubits > self.n:
            raise ValueError("program wider than simulator register")
        record_words = np.zeros((program.num_cbits, self.num_words),
                                dtype=np.uint64)
        _OBS_BLOCKS.inc()
        fused = program.__dict__.get("_obs_fused")
        if fused is None:
            fused = sum(1 for op in program.ops if op[0] in _LAYER_OPS)
            program.__dict__["_obs_fused"] = fused
        _OBS_OPS.inc(len(program.ops))
        _OBS_FUSED.inc(fused)
        self.exec_ops(program.ops, record_words)
        return record_words

    def exec_ops(self, ops, record_words: np.ndarray) -> None:
        """Execute a slice of compiled ops against ``record_words``.

        The dispatch core of :meth:`run_packed`, exposed so staged
        executors (the multilevel-splitting driver in
        :mod:`repro.rare.split`) can run a program segment by segment,
        resampling the batch between segments.

        With a profiler enabled (``repro perf record``) dispatch
        switches to the sampling twin below; this ``None`` check is
        the entire hot-path cost when profiling is off.
        """
        if _prof._ACTIVE is not None:
            self._exec_ops_profiled(ops, record_words, _prof._ACTIVE)
            return
        self._exec_ops_plain(ops, record_words)

    def _exec_ops_plain(self, ops, record_words: np.ndarray) -> None:
        for op in ops:
            code = op[0]
            if code == OP_CX:
                self.cx(op[1], op[2])
            elif code == OP_CX_LAYER:
                self.cx_layer(op[1], op[2])
            elif code == OP_H:
                self.h(op[1])
            elif code == OP_H_LAYER:
                self.h_layer(op[1])
            elif code == OP_MEASURE:
                record_words[op[2]] = self.measure(op[1], op[3])
            elif code == OP_MEASURE_LAYER:
                record_words[op[2]] = self.measure_layer(op[1], op[3])
            elif code == OP_DEPOLARIZE:
                self.depolarize(op[1], op[2])
            elif code == OP_DEPOLARIZE_LAYER:
                self.depolarize_layer(op[1], op[2])
            elif code == OP_RESET_NOISE:
                self.reset_noise(op[1], op[2], op[3])
            elif code == OP_RESET:
                self.reset(op[1])
            elif code == OP_RESET_LAYER:
                self.reset_layer(op[1])
            elif code == OP_CZ:
                self.cz(op[1], op[2])
            elif code == OP_CZ_LAYER:
                self.cz_layer(op[1], op[2])
            elif code == OP_S:
                self.s(op[1])
            elif code == OP_S_LAYER:
                self.s_layer(op[1])
            elif code == OP_SWAP:
                self.swap(op[1], op[2])
            elif code == OP_SWAP_LAYER:
                self.swap_layer(op[1], op[2])
            else:  # pragma: no cover - compiler emits no other opcodes
                raise NotImplementedError(f"opcode {code}")

    def _exec_ops_profiled(self, ops, record_words: np.ndarray,
                           prof) -> None:
        """Sampling twin of :meth:`exec_ops`: one block in
        ``prof.SAMPLE_EVERY`` runs a per-op-timed mirror of the
        dispatch chain (each op lands in its per-kind kernel bucket;
        fused layers count their width as scalar-equivalent ops), the
        rest run the plain chain — every block contributes wall time,
        and the profiler scales the sampled buckets to it at snapshot.
        Sampling is what keeps the enabled overhead < 2%: scalar frame
        ops are a few µs each, so clocking *every* op costs ~2% by
        itself.  Within a sampled block the clock is read only at
        opcode-change boundaries (runs of one opcode share a bucket).
        The mirrored chain must stay in lockstep with
        :meth:`_exec_ops_plain` — the profiled/unprofiled bit-identity
        test enforces it."""
        table, sampled = prof.begin_block()
        pc = perf_counter
        if not sampled:
            t0 = pc()
            self._exec_ops_plain(ops, record_words)
            prof.end_block(pc() - t0)
            return
        n_codes = len(table)
        t_acc = [0.0] * n_codes
        c_acc = [0] * n_codes
        o_acc = [0] * n_codes   # layer widths; scalar codes stay 0
        run_code = -1           # sentinel: no run open yet
        run_n = 0
        t_blk = t_run = pc()
        for op in ops:
            code = op[0]
            if code != run_code:
                t1 = pc()
                if run_code >= 0:
                    t_acc[run_code] += t1 - t_run
                    c_acc[run_code] += run_n
                t_run = t1
                run_code = code
                run_n = 0
            run_n += 1
            if code == OP_CX:
                self.cx(op[1], op[2])
            elif code == OP_CX_LAYER:
                self.cx_layer(op[1], op[2])
                o_acc[code] += len(op[1])
            elif code == OP_H:
                self.h(op[1])
            elif code == OP_H_LAYER:
                self.h_layer(op[1])
                o_acc[code] += len(op[1])
            elif code == OP_MEASURE:
                record_words[op[2]] = self.measure(op[1], op[3])
            elif code == OP_MEASURE_LAYER:
                record_words[op[2]] = self.measure_layer(op[1], op[3])
                o_acc[code] += len(op[1])
            elif code == OP_DEPOLARIZE:
                self.depolarize(op[1], op[2])
            elif code == OP_DEPOLARIZE_LAYER:
                self.depolarize_layer(op[1], op[2])
                o_acc[code] += len(op[1])
            elif code == OP_RESET_NOISE:
                self.reset_noise(op[1], op[2], op[3])
            elif code == OP_RESET:
                self.reset(op[1])
            elif code == OP_RESET_LAYER:
                self.reset_layer(op[1])
                o_acc[code] += len(op[1])
            elif code == OP_CZ:
                self.cz(op[1], op[2])
            elif code == OP_CZ_LAYER:
                self.cz_layer(op[1], op[2])
                o_acc[code] += len(op[1])
            elif code == OP_S:
                self.s(op[1])
            elif code == OP_S_LAYER:
                self.s_layer(op[1])
                o_acc[code] += len(op[1])
            elif code == OP_SWAP:
                self.swap(op[1], op[2])
            elif code == OP_SWAP_LAYER:
                self.swap_layer(op[1], op[2])
                o_acc[code] += len(op[1])
            else:  # pragma: no cover - compiler emits no other opcodes
                raise NotImplementedError(f"opcode {code}")
        t_end = pc()
        if run_code >= 0:
            t_acc[run_code] += t_end - t_run
            c_acc[run_code] += run_n
        for code, calls in enumerate(c_acc):
            if not calls:
                continue
            st = table[code]
            st.total_s += t_acc[code]
            st.count += calls
            # Scalar codes never touch o_acc: one op per call.
            st.ops += o_acc[code] or calls
        prof.end_block(t_end - t_blk)

    def shot_weights(self) -> np.ndarray:
        """Per-shot importance weights ``exp(log_weights)`` (unit
        weights when the simulator is untilted)."""
        if self.log_weights is None:
            return np.ones(self.batch_size, dtype=np.float64)
        return np.exp(self.log_weights)

    def run(self, program: FrameProgram) -> np.ndarray:
        """Execute a compiled program; returns records ``(B, cbits)``.

        The record layout matches
        :meth:`repro.stabilizer.batch.BatchTableauSimulator.run` /
        :func:`repro.noise.executor.run_batch_noisy`, so decoders and
        experiments consume either backend's output unchanged.  Use
        :meth:`run_packed` to keep the records in the packed domain.
        """
        return np.ascontiguousarray(
            unpack_words(self.run_packed(program), self.batch_size).T)

    # ------------------------------------------------------------------
    # Introspection (tests / debugging)
    # ------------------------------------------------------------------
    def frame_bits(self, qubit: int) -> np.ndarray:
        """``(2, B)`` uint8: the X and Z frame bits of one qubit."""
        return unpack_words(
            np.stack([self.x[qubit], self.z[qubit]]), self.batch_size)
