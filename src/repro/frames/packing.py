"""Bit-packing primitives for the Pauli-frame backend.

Frames hold one bit per shot, 64 shots per ``uint64`` word: shot ``j``
lives in word ``j // 64`` at bit ``j % 64`` (little-endian bit order, so
``numpy.packbits``/``unpackbits`` with ``bitorder="little"`` round-trip
the layout exactly).  All frame algebra is whole-word bitwise ops, so a
10^4-shot frame row is 157 words — three orders of magnitude smaller
than the batched tableau's per-qubit slabs.

Bits past ``batch_size`` in the final word are *don't-care*: masks built
by :func:`pack_bool` leave them zero, random fills leave them random,
and :func:`unpack_words` drops them via ``count=``.
"""

from __future__ import annotations

import numpy as np

#: All-ones uint64 word (avoids repeated Python-int coercion).
FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Shots per machine word.
WORD_BITS = 64


def words_for(batch_size: int) -> int:
    """Number of 64-bit words needed for ``batch_size`` shot bits."""
    if batch_size <= 0:
        raise ValueError("need at least one shot")
    return (int(batch_size) + WORD_BITS - 1) // WORD_BITS


def pack_bool(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(B,)`` boolean/0-1 array into ``(words_for(B),)`` uint64.

    Bits beyond ``B`` in the last word are zero, so packed masks can be
    AND/OR-combined without contaminating the don't-care tail.
    """
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise ValueError("pack_bool expects a 1-D array")
    nwords = words_for(bits.size)
    packed = np.packbits(bits.astype(np.uint8, copy=False),
                         bitorder="little")
    if packed.size < nwords * 8:
        packed = np.pad(packed, (0, nwords * 8 - packed.size))
    return packed.view(np.uint64)


def pack_bool_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(R, B)`` boolean array into ``(R, words_for(B))`` uint64.

    Row-wise :func:`pack_bool`: one ``packbits`` call for a whole layer
    of masks instead of one per row.  Don't-care tail bits are zero.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("pack_bool_rows expects a 2-D array")
    nwords = words_for(bits.shape[1]) if bits.shape[1] else 0
    packed = np.packbits(bits.astype(np.uint8, copy=False), axis=1,
                         bitorder="little")
    if packed.shape[1] < nwords * 8:
        packed = np.pad(packed, ((0, 0), (0, nwords * 8 - packed.shape[1])))
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, batch_size: int) -> np.ndarray:
    """Unpack word rows back to per-shot bits.

    ``words`` is ``(W,)`` or ``(R, W)`` uint64; returns ``(B,)`` or
    ``(R, B)`` uint8 with the don't-care tail dropped.
    """
    words = np.ascontiguousarray(words)
    if words.ndim == 1:
        return np.unpackbits(words.view(np.uint8), count=int(batch_size),
                             bitorder="little")
    return np.unpackbits(words.view(np.uint8).reshape(words.shape[0], -1),
                         axis=1, count=int(batch_size), bitorder="little")


def random_words(rng: np.random.Generator, nwords: int) -> np.ndarray:
    """``nwords`` uniformly random uint64 words (one fresh bit per shot)."""
    return np.frombuffer(rng.bytes(int(nwords) * 8), dtype=np.uint64)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word set-bit counts (uint64 in, int64 out, any shape).

    Word-level popcount is the packed layout's native aggregation: a row
    of frame/record words reduces to its across-shot event count without
    ever unpacking to per-shot uint8.  Uses ``numpy.bitwise_count`` when
    present (numpy >= 2.0), else a byte-table fallback.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    counts = _BYTE_POPCOUNT[words.view(np.uint8)]
    return counts.reshape(*words.shape, 8).sum(axis=-1, dtype=np.int64)


#: Set-bit counts for every byte value (popcount fallback table).
_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)],
                          dtype=np.int64)


def column_counts(planes: np.ndarray, batch_size: int) -> np.ndarray:
    """Per-shot sums over bit-plane rows: ``(P, W)`` words → ``(B,)`` ints.

    The transpose of :func:`popcount_words` — count, for each shot
    (column), how many of the ``P`` rows have that bit set.  Computed
    with bit-sliced vertical counters: rows are added into
    ``ceil(log2(P+1))`` packed carry planes using whole-word AND/XOR
    only, so the reduction stays in the packed domain; the counter
    planes (not the data) are expanded at the end.
    """
    planes = np.asarray(planes, dtype=np.uint64)
    if planes.ndim != 2:
        raise ValueError("column_counts expects a (P, W) plane stack")
    counters: list = []  # counters[k] = bit k of the running per-shot sum
    for row in planes:
        carry = row
        for k in range(len(counters)):
            carry, counters[k] = counters[k] & carry, counters[k] ^ carry
        if carry.any():
            counters.append(carry.copy())
    counts = np.zeros(int(batch_size), dtype=np.int64)
    for k, plane in enumerate(counters):
        counts += unpack_words(plane, batch_size).astype(np.int64) << k
    return counts


def bernoulli_words(rng: np.random.Generator, p: float, batch_size: int
                    ) -> np.ndarray:
    """Bit-packed Bernoulli(``p``) mask over ``batch_size`` shots.

    The packed tail past ``batch_size`` is zero, so the mask never
    selects don't-care bits.
    """
    if p >= 1.0:
        mask = np.full(words_for(batch_size), FULL_WORD, dtype=np.uint64)
        tail = batch_size % WORD_BITS
        if tail:
            mask[-1] = np.uint64((1 << tail) - 1)
        return mask
    if p <= 0.0:
        return np.zeros(words_for(batch_size), dtype=np.uint64)
    return pack_bool(rng.random(batch_size) < p)
