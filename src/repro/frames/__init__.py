"""Bit-packed Pauli-frame sampling backend.

The fast path for fault-injection campaigns: one noiseless reference
run of the memory circuit plus per-shot Pauli-frame propagation with 64
shots packed per ``uint64`` word.

* :func:`compile_frame_program` — reference pass + noise lowering.
* :class:`FrameSimulator` — bit-packed frame propagation.
* :func:`run_batch_frames` — drop-in counterpart of
  :func:`repro.noise.executor.run_batch_noisy`.
* :func:`supports_noise` — can a noise model be lowered?
* :exc:`FrameLoweringError` — raised when it cannot; callers fall back
  to the batched tableau backend.
"""

from .backend import BACKENDS, run_batch_frames, validate_backend
from .packing import (
    bernoulli_words,
    column_counts,
    pack_bool,
    popcount_words,
    random_words,
    unpack_words,
    words_for,
)
from .program import (
    FrameLoweringError,
    FrameProgram,
    compile_frame_program,
    fuse_layers,
    supports_noise,
)
from .simulator import FrameSimulator

__all__ = [
    "BACKENDS",
    "FrameLoweringError",
    "FrameProgram",
    "FrameSimulator",
    "bernoulli_words",
    "column_counts",
    "compile_frame_program",
    "fuse_layers",
    "pack_bool",
    "popcount_words",
    "random_words",
    "run_batch_frames",
    "supports_noise",
    "unpack_words",
    "validate_backend",
    "words_for",
]
