"""Reference pass + noise lowering: circuit → frame program.

A :class:`FrameProgram` is the compiled form a
:class:`~repro.frames.simulator.FrameSimulator` executes: the ideal
circuit reduced to frame-propagation opcodes, interleaved with
*lowered* noise sites, plus the reference measurement record the frames
are XORed against.

The **reference pass** runs the circuit once, noiselessly, through the
single-shot :class:`~repro.stabilizer.simulator.TableauSimulator`,
recording every measurement's outcome and whether it took the
random-outcome CHP branch (some stabilizer anticommutes with the
measured ``Z``).  Random-branch measurements are still sampled exactly
by the frame backend — the simulator's Z-frame randomisation at
initialisation, reset and measurement supplies per-shot randomness with
the correct cross-measurement correlations — but the flags are kept as
program metadata: a program with *no* random branches reproduces the
reference record bit-for-bit on noiseless shots, while any random
branch makes the record (including later measurements whose CHP branch
is deterministic but whose value is conditioned on the earlier
collapse) exact in distribution only.

**Noise lowering** turns the supported channel types into bit-packed
samplers:

* :class:`~repro.noise.depolarizing.DepolarizingNoise` → per-qubit
  ``OP_DEPOLARIZE`` sites (exact: Pauli channels commute with frame
  propagation).
* :class:`~repro.noise.erasure.ErasureChannel` and
  :class:`~repro.noise.radiation.RadiationChannel` (the paper's Eqs.
  5-7 reset faults) → ``OP_RESET_NOISE`` sites with a per-site
  probability.  At sites where the reference state holds the struck
  qubit in a definite ``Z`` eigenstate (always true for repetition-code
  memories, and for ancillas between their reset and re-entanglement)
  the lowering is *exact*: the fault forces the frame's X component to
  the reference eigenvalue, mapping the reference state onto |0>.
  Elsewhere the reset is lowered to a full Pauli twirl of the qubit —
  a reset to the maximally mixed state, i.e. the paper's reset-to-|0>
  composed with an extra 50% X flip.  Site counts for both cases are
  recorded on the program so the approximation is observable.

Any other channel type raises :class:`FrameLoweringError`; callers fall
back to the batched tableau backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..circuits import Circuit, GateType
from ..noise.base import NoiseModel
from ..noise.depolarizing import DepolarizingNoise
from ..noise.erasure import ErasureChannel
from ..noise.radiation import RadiationChannel
from ..stabilizer.simulator import TableauSimulator

#: Frame-propagation opcodes (ints for cheap dispatch).
OP_H = 0            # (OP_H, qubit)
OP_S = 1            # (OP_S, qubit) — S and SDG propagate frames identically
OP_CX = 2           # (OP_CX, control, target)
OP_CZ = 3           # (OP_CZ, a, b)
OP_SWAP = 4         # (OP_SWAP, a, b)
OP_MEASURE = 5      # (OP_MEASURE, qubit, cbit, reference_bit)
OP_RESET = 6        # (OP_RESET, qubit) — circuit reset (in the reference too)
OP_DEPOLARIZE = 7   # (OP_DEPOLARIZE, qubit, p)
OP_RESET_NOISE = 8  # (OP_RESET_NOISE, qubit, p, x_value|None) — fault reset

#: Pauli gate types: they conjugate frames trivially (phases only).
_FRAME_TRIVIAL = frozenset({GateType.I, GateType.X, GateType.Y, GateType.Z})

#: Channel types the lowering understands.  Exact type match on purpose:
#: a subclass overriding ``apply_batch`` would be lowered unfaithfully.
LOWERABLE_CHANNELS = (DepolarizingNoise, ErasureChannel, RadiationChannel)


class FrameLoweringError(ValueError):
    """The circuit/noise pair cannot be lowered to a frame program."""


@dataclass
class FrameProgram:
    """Compiled frame program: opcodes + reference record + metadata."""

    num_qubits: int
    num_cbits: int
    ops: List[Tuple]
    #: Reference measurement outcomes, indexed by cbit.
    reference_record: np.ndarray
    #: cbits whose reference measurement took the random-outcome branch.
    #: Any entry here demotes the whole record from bit-exact (vs the
    #: reference, noiselessly) to exact-in-distribution: later
    #: deterministic measurements may be conditioned on these collapses.
    random_cbits: Tuple[int, ...] = ()
    #: Reset-fault sites lowered exactly (reference Z-determinate).
    exact_reset_sites: int = 0
    #: Reset-fault sites lowered to a Pauli twirl (reset-to-mixed).
    twirled_reset_sites: int = 0
    #: Channels the program lowered (informational).
    num_channels: int = 0

    @property
    def deterministic_reference(self) -> bool:
        """True when every reference measurement was deterministic, so a
        noiseless frame run reproduces the reference record bit-exactly."""
        return not self.random_cbits

    @property
    def exact_noise(self) -> bool:
        """True when every lowered noise site is distribution-exact."""
        return self.twirled_reset_sites == 0

    def __repr__(self) -> str:
        return (f"FrameProgram(n={self.num_qubits}, cbits={self.num_cbits}, "
                f"ops={len(self.ops)}, random_measures="
                f"{len(self.random_cbits)}, reset_sites="
                f"{self.exact_reset_sites}+{self.twirled_reset_sites}t)")


def supports_noise(noise: Optional[NoiseModel]) -> bool:
    """Cheap pre-flight: can every channel be lowered to frame ops?"""
    if noise is None:
        return True
    return all(type(ch) in LOWERABLE_CHANNELS for ch in noise)


def _z_determinate(sim: TableauSimulator, qubit: int) -> Optional[int]:
    """The definite Z value of ``qubit`` in the reference state, or
    ``None`` when a measurement there would take the random branch."""
    tab = sim.tableau
    if tab.x[tab.n:, qubit].any():
        return None
    # Deterministic CHP branch: non-destructive, consumes no randomness.
    return int(tab.measure(qubit, sim.rng))


def _lower_channel(channel, gate, sim: TableauSimulator, ops: List[Tuple],
                   counts: List[int]) -> None:
    """Append the frame-level ops for one (channel, gate) firing."""
    if type(channel) is DepolarizingNoise:
        for q in gate.qubits:
            if channel.qubits is None or q in channel.qubits:
                ops.append((OP_DEPOLARIZE, q, channel.p))
        return
    if type(channel) is ErasureChannel:
        sites = [(q, channel.probability) for q in gate.qubits
                 if q in channel.qubits]
    elif type(channel) is RadiationChannel:
        sites = [(q, float(channel.probs[q])) for q in gate.qubits
                 if q < channel.probs.size and channel.probs[q] > 0.0]
    else:
        raise FrameLoweringError(
            f"noise channel {type(channel).__name__} has no frame lowering")
    for q, p in sites:
        value = _z_determinate(sim, q)
        ops.append((OP_RESET_NOISE, q, p, value))
        counts[0 if value is not None else 1] += 1


def compile_frame_program(circuit: Circuit,
                          noise: Optional[NoiseModel] = None,
                          rng: Union[np.random.Generator, int, None] = None
                          ) -> FrameProgram:
    """Run the reference pass and lower ``noise`` into a frame program.

    ``rng`` seeds the reference pass's random measurement branches (the
    compiled program embeds that one reference sample, so the same seed
    always yields the same program).  Raises :class:`FrameLoweringError`
    if the circuit uses an unsupported gate or the noise model contains
    a channel without a frame lowering.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if noise is not None and not supports_noise(noise):
        bad = [type(ch).__name__ for ch in noise
               if type(ch) not in LOWERABLE_CHANNELS]
        raise FrameLoweringError(
            f"noise channels without a frame lowering: {bad}")

    sim = TableauSimulator(circuit.num_qubits, rng=rng)
    num_cbits = max(circuit.num_cbits, 1)
    ref = np.zeros(num_cbits, dtype=np.uint8)
    ops: List[Tuple] = []
    random_cbits: List[int] = []
    reset_counts = [0, 0]  # [exact, twirled]

    for gate in circuit:
        gt = gate.gate_type
        if gt is GateType.BARRIER:
            continue
        if gt in _FRAME_TRIVIAL:
            sim.apply(gate)  # advances the reference; no frame op
        elif gt is GateType.H:
            sim.apply(gate)
            ops.append((OP_H, gate.qubits[0]))
        elif gt is GateType.S or gt is GateType.SDG:
            sim.apply(gate)
            ops.append((OP_S, gate.qubits[0]))
        elif gt is GateType.CX:
            sim.apply(gate)
            ops.append((OP_CX, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.CZ:
            sim.apply(gate)
            ops.append((OP_CZ, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.SWAP:
            sim.apply(gate)
            ops.append((OP_SWAP, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.RESET:
            sim.apply(gate)
            ops.append((OP_RESET, gate.qubits[0]))
        elif gt is GateType.MEASURE:
            a = gate.qubits[0]
            random_branch = bool(sim.tableau.x[sim.tableau.n:, a].any())
            outcome = sim.apply(gate)
            ref[gate.cbit] = outcome
            if random_branch:
                random_cbits.append(gate.cbit)
            ops.append((OP_MEASURE, a, gate.cbit, int(outcome)))
        else:  # pragma: no cover - the IR has no other gate types
            raise FrameLoweringError(f"unsupported gate type {gt}")
        if noise is not None:
            for channel in noise:
                if channel.triggers_on(gate):
                    _lower_channel(channel, gate, sim, ops, reset_counts)

    return FrameProgram(
        num_qubits=circuit.num_qubits,
        num_cbits=num_cbits,
        ops=ops,
        reference_record=ref,
        random_cbits=tuple(random_cbits),
        exact_reset_sites=reset_counts[0],
        twirled_reset_sites=reset_counts[1],
        num_channels=0 if noise is None else len(noise),
    )
