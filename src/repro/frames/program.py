"""Reference pass + noise lowering: circuit → frame program.

A :class:`FrameProgram` is the compiled form a
:class:`~repro.frames.simulator.FrameSimulator` executes: the ideal
circuit reduced to frame-propagation opcodes, interleaved with
*lowered* noise sites, plus the reference measurement record the frames
are XORed against.

The **reference pass** runs the circuit once, noiselessly, through the
single-shot :class:`~repro.stabilizer.simulator.TableauSimulator`,
recording every measurement's outcome and whether it took the
random-outcome CHP branch (some stabilizer anticommutes with the
measured ``Z``).  Random-branch measurements are still sampled exactly
by the frame backend — the simulator's Z-frame randomisation at
initialisation, reset and measurement supplies per-shot randomness with
the correct cross-measurement correlations — but the flags are kept as
program metadata: a program with *no* random branches reproduces the
reference record bit-for-bit on noiseless shots, while any random
branch makes the record (including later measurements whose CHP branch
is deterministic but whose value is conditioned on the earlier
collapse) exact in distribution only.

**Noise lowering** turns the supported channel types into bit-packed
samplers:

* :class:`~repro.noise.depolarizing.DepolarizingNoise` → per-qubit
  ``OP_DEPOLARIZE`` sites (exact: Pauli channels commute with frame
  propagation).
* :class:`~repro.noise.erasure.ErasureChannel` and
  :class:`~repro.noise.radiation.RadiationChannel` (the paper's Eqs.
  5-7 reset faults) → ``OP_RESET_NOISE`` sites with a per-site
  probability.  At sites where the reference state holds the struck
  qubit in a definite ``Z`` eigenstate (always true for repetition-code
  memories, and for ancillas between their reset and re-entanglement)
  the lowering is *exact*: the fault forces the frame's X component to
  the reference eigenvalue, mapping the reference state onto |0>.
  Elsewhere the reset is lowered to a full Pauli twirl of the qubit —
  a reset to the maximally mixed state, i.e. the paper's reset-to-|0>
  composed with an extra 50% X flip.  Site counts for both cases are
  recorded on the program so the approximation is observable.

Any other channel type raises :class:`FrameLoweringError`; callers fall
back to the batched tableau backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..circuits import Circuit, GateType
from ..noise.base import NoiseModel
from ..noise.depolarizing import DepolarizingNoise
from ..noise.erasure import ErasureChannel
from ..noise.radiation import RadiationBurst, RadiationChannel
from ..stabilizer.simulator import TableauSimulator

#: Frame-propagation opcodes (ints for cheap dispatch).
OP_H = 0            # (OP_H, qubit)
OP_S = 1            # (OP_S, qubit) — S and SDG propagate frames identically
OP_CX = 2           # (OP_CX, control, target)
OP_CZ = 3           # (OP_CZ, a, b)
OP_SWAP = 4         # (OP_SWAP, a, b)
OP_MEASURE = 5      # (OP_MEASURE, qubit, cbit, reference_bit)
OP_RESET = 6        # (OP_RESET, qubit) — circuit reset (in the reference too)
OP_DEPOLARIZE = 7   # (OP_DEPOLARIZE, qubit, p)
OP_RESET_NOISE = 8  # (OP_RESET_NOISE, qubit, p, x_value|None) — fault reset

#: Fused-layer opcodes: a group of qubit-disjoint same-type ops
#: collapsed into one vectorised (len(layer), W) kernel sweep.  See
#: :func:`fuse_layers` for why fused programs sample bit-identically to
#: their scalar form.
OP_H_LAYER = 9           # (OP_H_LAYER, qubit_array)
OP_S_LAYER = 10          # (OP_S_LAYER, qubit_array)
OP_CX_LAYER = 11         # (OP_CX_LAYER, control_array, target_array)
OP_CZ_LAYER = 12         # (OP_CZ_LAYER, a_array, b_array)
OP_SWAP_LAYER = 13       # (OP_SWAP_LAYER, a_array, b_array)
OP_MEASURE_LAYER = 14    # (OP_MEASURE_LAYER, qubit_array, cbit_array,
                         #  reference_bit_array)
OP_RESET_LAYER = 15      # (OP_RESET_LAYER, qubit_array)
OP_DEPOLARIZE_LAYER = 16  # (OP_DEPOLARIZE_LAYER, qubit_array, p_array)

#: Scalar opcode → its fused-layer twin.
_LAYER_OF = {OP_H: OP_H_LAYER, OP_S: OP_S_LAYER, OP_CX: OP_CX_LAYER,
             OP_CZ: OP_CZ_LAYER, OP_SWAP: OP_SWAP_LAYER,
             OP_MEASURE: OP_MEASURE_LAYER, OP_RESET: OP_RESET_LAYER,
             OP_DEPOLARIZE: OP_DEPOLARIZE_LAYER}

#: Opcode → profiler kernel-bucket name (:mod:`repro.obs.prof`):
#: scalar kinds plus their ``.fused`` layer twins, so the profile
#: separates fused-layer throughput from scalar stragglers.
OP_KIND = {OP_H: "h", OP_S: "s", OP_CX: "cx", OP_CZ: "cz",
           OP_SWAP: "swap", OP_MEASURE: "measure", OP_RESET: "reset",
           OP_DEPOLARIZE: "depolarize", OP_RESET_NOISE: "reset_noise",
           OP_H_LAYER: "h.fused", OP_S_LAYER: "s.fused",
           OP_CX_LAYER: "cx.fused", OP_CZ_LAYER: "cz.fused",
           OP_SWAP_LAYER: "swap.fused",
           OP_MEASURE_LAYER: "measure.fused",
           OP_RESET_LAYER: "reset.fused",
           OP_DEPOLARIZE_LAYER: "depolarize.fused"}

#: Opcodes whose execution consumes the shared rng stream.  Their
#: mutual order is a hard scheduling constraint: permuting any two
#: would hand each the other's draws.
_RNG_OPS = frozenset({OP_MEASURE, OP_RESET, OP_DEPOLARIZE, OP_RESET_NOISE})

#: Qubit operands per opcode (slice of the op tuple holding qubits).
_QUBIT_ARITY = {OP_H: 1, OP_S: 1, OP_CX: 2, OP_CZ: 2, OP_SWAP: 2,
                OP_MEASURE: 1, OP_RESET: 1, OP_DEPOLARIZE: 1,
                OP_RESET_NOISE: 1}

#: Pauli gate types: they conjugate frames trivially (phases only).
_FRAME_TRIVIAL = frozenset({GateType.I, GateType.X, GateType.Y, GateType.Z})

#: Channel types the lowering understands.  Exact type match on purpose:
#: a subclass overriding ``apply_batch`` would be lowered unfaithfully.
LOWERABLE_CHANNELS = (DepolarizingNoise, ErasureChannel, RadiationChannel,
                      RadiationBurst)


class FrameLoweringError(ValueError):
    """The circuit/noise pair cannot be lowered to a frame program."""


@dataclass
class FrameProgram:
    """Compiled frame program: opcodes + reference record + metadata."""

    num_qubits: int
    num_cbits: int
    ops: List[Tuple]
    #: Reference measurement outcomes, indexed by cbit.
    reference_record: np.ndarray
    #: cbits whose reference measurement took the random-outcome branch.
    #: Any entry here demotes the whole record from bit-exact (vs the
    #: reference, noiselessly) to exact-in-distribution: later
    #: deterministic measurements may be conditioned on these collapses.
    random_cbits: Tuple[int, ...] = ()
    #: Reset-fault sites lowered exactly (reference Z-determinate).
    exact_reset_sites: int = 0
    #: Reset-fault sites lowered to a Pauli twirl (reset-to-mixed).
    twirled_reset_sites: int = 0
    #: Channels the program lowered (informational).
    num_channels: int = 0

    @property
    def deterministic_reference(self) -> bool:
        """True when every reference measurement was deterministic, so a
        noiseless frame run reproduces the reference record bit-exactly."""
        return not self.random_cbits

    @property
    def exact_noise(self) -> bool:
        """True when every lowered noise site is distribution-exact."""
        return self.twirled_reset_sites == 0

    def __repr__(self) -> str:
        return (f"FrameProgram(n={self.num_qubits}, cbits={self.num_cbits}, "
                f"ops={len(self.ops)}, random_measures="
                f"{len(self.random_cbits)}, reset_sites="
                f"{self.exact_reset_sites}+{self.twirled_reset_sites}t)")


#: Smallest group worth a fused rng layer: below this the layer kernel's
#: fixed overhead (2-D buffers, row loops) beats the scalar ops it
#: replaces, measured on the d=5 noisy memory program.
_MIN_RNG_LAYER = 4


def _emit_group(code: int, group: List[Tuple], out: List[Tuple]) -> None:
    """Append one scheduled same-opcode group as a scalar or layer op."""
    if len(group) == 1 or (code in _RNG_OPS and len(group) < _MIN_RNG_LAYER):
        out.extend(group)
        return
    if code == OP_MEASURE:
        out.append((OP_MEASURE_LAYER,
                    np.array([op[1] for op in group], dtype=np.intp),
                    np.array([op[2] for op in group], dtype=np.intp),
                    np.array([op[3] for op in group], dtype=np.uint8)))
    elif code == OP_RESET:
        out.append((OP_RESET_LAYER,
                    np.array([op[1] for op in group], dtype=np.intp)))
    elif code == OP_DEPOLARIZE:
        out.append((OP_DEPOLARIZE_LAYER,
                    np.array([op[1] for op in group], dtype=np.intp),
                    np.array([op[2] for op in group], dtype=float)))
    elif _QUBIT_ARITY[code] == 1:
        out.append((_LAYER_OF[code],
                    np.array([op[1] for op in group], dtype=np.intp)))
    else:
        out.append((_LAYER_OF[code],
                    np.array([op[1] for op in group], dtype=np.intp),
                    np.array([op[2] for op in group], dtype=np.intp)))


def fuse_layers(ops: List[Tuple]) -> List[Tuple]:
    """Reschedule a scalar op list into fused ``(k, W)`` kernel sweeps.

    Per-gate execution costs one numpy dispatch per frame row — the
    dominant cost at campaign block sizes, where a row is all of eight
    words.  This pass list-schedules the ops under the only two
    constraints the frame semantics actually impose:

    * **per-qubit order** — ops touching a common qubit never reorder
      (ops on disjoint qubits always commute as frame maps);
    * **rng order** — ops that consume the shared rng stream (measure,
      reset, depolarize, fault reset) keep their exact mutual order, so
      every draw lands in the same op as in the scalar program.

    Ready ops of one opcode whose qubits are pairwise disjoint are
    emitted as a single fused layer: a whole stabilisation sweep of CX
    legs, a round's ancilla measurements, or the depolarize sites
    behind them collapse into one vectorised op each.  Fused rng layers
    draw their samples in the scalar order (loops for per-site
    ``random`` calls; ``Generator.bytes`` streams identically whether
    pulled per row or in one block), so a fused program's records are
    **bit-identical** to the unfused program's — fusion is pure
    scheduling, not approximation.
    """
    n = len(ops)
    if n < 2:
        return list(ops)
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    last_on_qubit: dict = {}
    last_rng = -1
    for i, op in enumerate(ops):
        code = op[0]
        for q in op[1:1 + _QUBIT_ARITY[code]]:
            prev = last_on_qubit.get(q, -1)
            if prev >= 0:
                succ[prev].append(i)
                indeg[i] += 1
            last_on_qubit[q] = i
        if code in _RNG_OPS:
            if last_rng >= 0:
                succ[last_rng].append(i)
                indeg[i] += 1
            last_rng = i

    out: List[Tuple] = []
    ready_cliff: List[int] = []   # program-order indices, kept sorted
    ready_rng = -1                # at most one (the rng chain head)

    def mark_ready(i: int) -> None:
        nonlocal ready_rng
        if ops[i][0] in _RNG_OPS:
            ready_rng = i
        else:
            ready_cliff.append(i)

    def release(i: int) -> None:
        for j in succ[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                mark_ready(j)

    for i in range(n):
        if indeg[i] == 0:
            mark_ready(i)

    emitted = 0
    while emitted < n:
        if ready_cliff:
            batch, ready_cliff = sorted(ready_cliff), []
            by_code: dict = {}
            for i in batch:
                by_code.setdefault(ops[i][0], []).append(ops[i])
            for code, group in by_code.items():
                _emit_group(code, group, out)
            emitted += len(batch)
            for i in batch:
                release(i)
        else:
            i = ready_rng
            ready_rng = -1
            code = ops[i][0]
            group = [ops[i]]
            used = set(ops[i][1:1 + _QUBIT_ARITY[code]])
            emitted += 1
            release(i)
            # Extend along the rng chain while the next op is ready,
            # same-opcode, and qubit-disjoint with the group (fault
            # resets stay scalar: their draw count is data-dependent).
            while (code != OP_RESET_NOISE and ready_rng >= 0
                   and ops[ready_rng][0] == code):
                nxt = ops[ready_rng]
                nq = nxt[1:1 + _QUBIT_ARITY[code]]
                if any(q in used for q in nq):
                    break
                used.update(nq)
                group.append(nxt)
                j = ready_rng
                ready_rng = -1
                emitted += 1
                release(j)
            _emit_group(code, group, out)
    return out


def supports_noise(noise: Optional[NoiseModel]) -> bool:
    """Cheap pre-flight: can every channel be lowered to frame ops?"""
    if noise is None:
        return True
    return all(type(ch) in LOWERABLE_CHANNELS for ch in noise)


def _z_determinate(sim: TableauSimulator, qubit: int) -> Optional[int]:
    """The definite Z value of ``qubit`` in the reference state, or
    ``None`` when a measurement there would take the random branch."""
    tab = sim.tableau
    if tab.x[tab.n:, qubit].any():
        return None
    # Deterministic CHP branch: non-destructive, consumes no randomness.
    return int(tab.measure(qubit, sim.rng))


def _lower_channel(channel, gate, sim: TableauSimulator, ops: List[Tuple],
                   counts: List[int]) -> None:
    """Append the frame-level ops for one (channel, gate) firing."""
    if type(channel) is DepolarizingNoise:
        for q in gate.qubits:
            if channel.qubits is None or q in channel.qubits:
                ops.append((OP_DEPOLARIZE, q, channel.p))
        return
    if type(channel) is ErasureChannel:
        sites = [(q, channel.probability) for q in gate.qubits
                 if q in channel.qubits]
    elif type(channel) is RadiationChannel:
        sites = [(q, float(channel.probs[q])) for q in gate.qubits
                 if q < channel.probs.size and channel.probs[q] > 0.0]
    elif type(channel) is RadiationBurst:
        probs = channel.current_probs()
        sites = ([] if probs is None else
                 [(q, float(probs[q])) for q in gate.qubits
                  if q < probs.size and probs[q] > 0.0])
    else:
        raise FrameLoweringError(
            f"noise channel {type(channel).__name__} has no frame lowering")
    for q, p in sites:
        value = _z_determinate(sim, q)
        ops.append((OP_RESET_NOISE, q, p, value))
        counts[0 if value is not None else 1] += 1


def compile_frame_program(circuit: Circuit,
                          noise: Optional[NoiseModel] = None,
                          rng: Union[np.random.Generator, int, None] = None
                          ) -> FrameProgram:
    """Run the reference pass and lower ``noise`` into a frame program.

    ``rng`` seeds the reference pass's random measurement branches (the
    compiled program embeds that one reference sample, so the same seed
    always yields the same program).  Raises :class:`FrameLoweringError`
    if the circuit uses an unsupported gate or the noise model contains
    a channel without a frame lowering.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if noise is not None and not supports_noise(noise):
        bad = [type(ch).__name__ for ch in noise
               if type(ch) not in LOWERABLE_CHANNELS]
        raise FrameLoweringError(
            f"noise channels without a frame lowering: {bad}")

    sim = TableauSimulator(circuit.num_qubits, rng=rng)
    num_cbits = max(circuit.num_cbits, 1)
    ref = np.zeros(num_cbits, dtype=np.uint8)
    ops: List[Tuple] = []
    random_cbits: List[int] = []
    reset_counts = [0, 0]  # [exact, twirled]
    if noise is not None:
        noise.begin_run()

    for gate in circuit:
        gt = gate.gate_type
        if gt is GateType.BARRIER:
            continue
        if gt in _FRAME_TRIVIAL:
            sim.apply(gate)  # advances the reference; no frame op
        elif gt is GateType.H:
            sim.apply(gate)
            ops.append((OP_H, gate.qubits[0]))
        elif gt is GateType.S or gt is GateType.SDG:
            sim.apply(gate)
            ops.append((OP_S, gate.qubits[0]))
        elif gt is GateType.CX:
            sim.apply(gate)
            ops.append((OP_CX, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.CZ:
            sim.apply(gate)
            ops.append((OP_CZ, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.SWAP:
            sim.apply(gate)
            ops.append((OP_SWAP, gate.qubits[0], gate.qubits[1]))
        elif gt is GateType.RESET:
            sim.apply(gate)
            ops.append((OP_RESET, gate.qubits[0]))
        elif gt is GateType.MEASURE:
            a = gate.qubits[0]
            random_branch = bool(sim.tableau.x[sim.tableau.n:, a].any())
            outcome = sim.apply(gate)
            ref[gate.cbit] = outcome
            if random_branch:
                random_cbits.append(gate.cbit)
            ops.append((OP_MEASURE, a, gate.cbit, int(outcome)))
        else:  # pragma: no cover - the IR has no other gate types
            raise FrameLoweringError(f"unsupported gate type {gt}")
        if noise is not None:
            for channel in noise:
                channel.observe(gate)
                if channel.triggers_on(gate):
                    _lower_channel(channel, gate, sim, ops, reset_counts)

    return FrameProgram(
        num_qubits=circuit.num_qubits,
        num_cbits=num_cbits,
        ops=fuse_layers(ops),
        reference_record=ref,
        random_cbits=tuple(random_cbits),
        exact_reset_sites=reset_counts[0],
        twirled_reset_sites=reset_counts[1],
        num_channels=0 if noise is None else len(noise),
    )
