"""Multiprocess work-stealing campaign execution (``repro.parallel``).

The scale leg of the reproduction: a priority/work-stealing scheduler
that spreads a campaign's canonical simulation blocks across worker
processes with per-worker JSONL store shards, crash tolerance, and
stop decisions that are bit-identical to a serial run.  Reached through
``Campaign.run(workers=N)``, the sweep-spec ``"workers"`` key, and
``repro campaign -j N``.
"""

from .plan import ChunkLease, TaskPlan, plan_leases
from .scheduler import (WorkStealingScheduler, absorb_stale_shards,
                        lease_run_size)
from .worker import execute_lease, shard_path, worker_main

__all__ = [
    "ChunkLease",
    "TaskPlan",
    "WorkStealingScheduler",
    "absorb_stale_shards",
    "execute_lease",
    "lease_run_size",
    "plan_leases",
    "shard_path",
    "worker_main",
]
