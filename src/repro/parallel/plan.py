"""Deterministic chunk planning and watermark aggregation.

The scheduler never hands a worker anything but a :class:`ChunkLease` —
a ``[start, start + shots)`` slice of one task's canonical block
stream.  Because every block is seeded from the task seed by its block
index alone (:func:`repro.util.rng.block_seed`), a lease's counts are a
pure function of ``(task, start, shots)``: it does not matter which
worker runs it, when, or how many times (a re-run after a crash is
bit-identical, so duplicates merge away).

:class:`TaskPlan` owns the other half of the determinism contract: it
aggregates completed leases into a *contiguous frontier* and evaluates
the adaptive policy only when the frontier crosses a decision
watermark, with the cumulative counts **at exactly that watermark**.
Leases are pre-split so none straddles a watermark, so those prefix
counts — and therefore the stop shot — are identical for one worker or
many, whatever order results arrive in.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from .. import obs
from ..injection.adaptive import AdaptivePolicy
from ..injection.results import (SIM_BLOCK, ChunkResult, InjectionResult,
                                 normalize_prior)
from ..rare.stats import WeightStats

from ..injection.spec import InjectionTask

#: Counts tuple banked per task before the run (store resume):
#: ``(shots, errors, raw_errors, corrections, elapsed_s, chunks)``,
#: optionally extended with accumulated importance-weight moments
#: ``(wsum, wsq, esum, esq)`` as a seventh element.
Prior = Tuple


class ChunkLease(NamedTuple):
    """One schedulable slice of a task's block stream."""

    task_index: int
    start: int
    shots: int

    @property
    def end(self) -> int:
        return self.start + self.shots


def plan_leases(task_index: int, start: int, target: int,
                chunk_shots: int,
                adaptive: Optional[AdaptivePolicy],
                task_shots: int) -> List[ChunkLease]:
    """Split ``[start, target)`` into block-aligned, watermark-aligned
    leases of at most ``chunk_shots`` shots.

    ``chunk_shots`` must be a whole number of blocks (the engine's
    ``_normalize_chunk`` guarantees it); the final lease may be partial
    when the target is not a block multiple.
    """
    leases: List[ChunkLease] = []
    pos = start
    while pos < target:
        end = min(pos + chunk_shots, target)
        if adaptive is not None:
            end = min(end, adaptive.next_watermark(pos, task_shots))
        leases.append(ChunkLease(task_index, pos, end - pos))
        pos = end
    return leases


class TaskPlan:
    """Scheduling state for one campaign point.

    Tracks which leases are pending (unleased), leased (on some
    worker's deque or in flight), and completed; advances the
    contiguous frontier as results arrive; and fires the adaptive
    policy at each crossed watermark, truncating the plan when the
    point resolves early.
    """

    def __init__(self, index: int, task: InjectionTask, prior: Prior,
                 chunk_shots: int,
                 adaptive: Optional[AdaptivePolicy]) -> None:
        self.index = index
        self.task = task
        self.adaptive = adaptive
        (self.prior_shots, prior_errors, prior_raw, prior_corr,
         prior_elapsed, self.prior_chunks, prior_weights) = \
            normalize_prior(prior)
        # Cumulative counts along the contiguous frontier.
        self.shots = self.prior_shots
        self.errors = prior_errors
        self.raw_errors = prior_raw
        self.corrections = prior_corr
        self.elapsed_s = prior_elapsed
        self.chunks = self.prior_chunks
        #: Accumulated weight moments along the frontier (weighted
        #: samplers only) — folded per canonical block, so the values
        #: are bit-identical to a serial run's.
        self.weighted = task.sampler.weighted
        self.weights = (prior_weights or (0.0, 0.0, 0.0, 0.0)) \
            if self.weighted else None
        self.target = (adaptive.ceiling(task.shots) if adaptive
                       else task.shots)
        # Replay the prior's decision only ON the watermark grid (an
        # off-grid prior resumes to the next watermark first), exactly
        # like the serial engine.
        self.stopped = (adaptive is not None and self.shots < self.target
                        and self.shots > 0
                        and self.shots % adaptive.decision_step == 0
                        and adaptive.should_stop(self.errors, self.shots,
                                                 task.shots,
                                                 self._weight_stats()))
        if self.stopped:
            self.target = self.shots
        self.pending: Deque[ChunkLease] = deque(plan_leases(
            index, self.shots, self.target, chunk_shots, adaptive,
            task.shots))
        #: Completed-but-not-yet-contiguous results, keyed by start.
        self._completed: Dict[int, ChunkResult] = {}
        #: Leases currently owned by a worker (deque or in flight).
        self.leased: Dict[int, ChunkLease] = {}

    # -- scheduling views ---------------------------------------------
    @property
    def remaining(self) -> int:
        """Expected remaining shots (the priority key): everything not
        yet completed up to the current target."""
        return max(0, self.target - self.shots)

    @property
    def unleased_shots(self) -> int:
        return sum(lease.shots for lease in self.pending)

    @property
    def done(self) -> bool:
        return self.shots >= self.target and not self.leased

    def take(self, max_leases: int) -> List[ChunkLease]:
        """Lease up to ``max_leases`` pending chunks (front first, so a
        worker extends the frontier rather than sampling far ahead)."""
        out = []
        while self.pending and len(out) < max_leases:
            lease = self.pending.popleft()
            self.leased[lease.start] = lease
            out.append(lease)
        return out

    def give_back(self, lease: ChunkLease) -> None:
        """Return a leased chunk to the pending pool (worker death)."""
        if self.leased.pop(lease.start, None) is None:
            return
        if lease.start < self.target:
            self.pending.appendleft(lease)

    # -- result aggregation -------------------------------------------
    def record(self, chunk: ChunkResult) -> bool:
        """Bank one completed lease; returns True if it was new.

        Advances the contiguous frontier and evaluates the policy at
        every watermark the frontier crosses, in order.  Results for
        already-banked or beyond-stop ranges (a re-run after a crash,
        or a speculative in-flight chunk finishing after the stop
        decision) are discarded — counts stay a function of the
        canonical prefix ``[0, stop)`` alone.
        """
        self.leased.pop(chunk.start, None)
        if chunk.start in self._completed or chunk.start < self.shots \
                or chunk.start >= self.target:
            return False
        self._completed[chunk.start] = chunk
        while self.shots in self._completed:
            nxt = self._completed[self.shots]
            watermark = (self.adaptive.next_watermark(
                self.shots, self.task.shots)
                if self.adaptive is not None else self.target)
            self.shots = nxt.end
            self.errors += nxt.errors
            self.raw_errors += nxt.raw_errors
            self.corrections += nxt.corrections_applied
            self.elapsed_s += nxt.elapsed_s
            self.chunks += 1
            if self.weighted:
                self.weights = nxt.fold_weights(self.weights)
            if self.adaptive is not None and self.shots >= watermark \
                    and self.shots < self.target:
                obs.counter("engine.decisions").inc()
                if self.adaptive.should_stop(
                        self.errors, self.shots, self.task.shots,
                        self._weight_stats()):
                    obs.counter("engine.early_stops").inc()
                    self._stop_at_frontier()
                    break
        return True

    def _weight_stats(self) -> Optional[WeightStats]:
        """Frontier weight moments for policy decisions (None for MC)."""
        if not self.weighted:
            return None
        wsum, wsq, esum, esq = self.weights
        return WeightStats(shots=self.shots, wsum=wsum, wsq=wsq,
                           esum=esum, esq=esq,
                           iid=self.task.sampler.kind != "split")

    def _stop_at_frontier(self) -> None:
        """Adaptive stop: truncate the plan at the current frontier."""
        self.stopped = True
        self.target = self.shots
        self.pending.clear()
        for start in [s for s in self._completed if s >= self.target]:
            del self._completed[start]
        # In-flight leases stay in ``leased`` until their (discarded)
        # results or their worker's death accounts for them.
        for start in [s for s, lease in self.leased.items()
                      if lease.start >= self.target]:
            del self.leased[start]

    def result(self) -> InjectionResult:
        """The point's final, order-independent aggregate (swap counts
        come from the same cached transpilation the serial path uses)."""
        from ..injection.campaign import _assemble

        return _assemble(self.task, self.shots, self.errors,
                         self.raw_errors, self.corrections,
                         self.elapsed_s, self.chunks,
                         self.weights if self.weighted else None)
