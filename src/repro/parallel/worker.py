"""Worker-process side of the work-stealing campaign scheduler.

Each worker owns one inbox queue (scheduler → worker), shares one
results queue (workers → scheduler), and — when the campaign is
checkpointed — one private JSONL shard of the campaign store.  A worker
only ever sees :class:`~repro.parallel.plan.ChunkLease` messages: it
executes the lease through the exact same
:func:`~repro.injection.campaign.iter_task_chunks` streaming path the
serial engine uses (so counts are bit-identical by construction),
appends the finished chunk to its shard for crash durability, then
reports the counts upstream as the scheduler's feedback channel for
globally-aggregated adaptive stop decisions.

Shards exist so that *no completed work is lost to a dead process*:
the scheduler merges them into the main store afterwards through
:meth:`CampaignStore.merge`, whose ``(key, start)`` dedup makes
re-runs of requeued chunks (bit-identical by the canonical-block
contract) collapse back into one record.
"""

from __future__ import annotations

import os
import signal
import traceback
from typing import Dict, List, Optional

from .. import obs
from ..injection.campaign import iter_task_chunks
from ..injection.results import ChunkResult
from ..injection.spec import InjectionTask
from ..injection.store import CampaignStore, task_key

#: Test-only crash injection: a worker whose id matches
#: ``REPRO_TEST_CRASH_WORKER`` SIGKILLs itself after completing
#: ``REPRO_TEST_CRASH_AFTER`` chunks — the crash-tolerance tests use it
#: to die mid-campaign exactly like an OOM-killed or segfaulted worker.
CRASH_WORKER_ENV = "REPRO_TEST_CRASH_WORKER"
CRASH_AFTER_ENV = "REPRO_TEST_CRASH_AFTER"


def shard_path(store_path: str, worker_id: int) -> str:
    """The JSONL shard worker ``worker_id`` appends chunks to."""
    return f"{store_path}.shard-{worker_id}"


def execute_lease(task: InjectionTask, start: int, shots: int
                  ) -> ChunkResult:
    """Run one lease as a single streaming chunk (shared with the
    scheduler's in-process fallback when every worker has died)."""
    chunk = next(iter_task_chunks(task, chunk_shots=shots,
                                  start_shot=start,
                                  total_shots=start + shots))
    assert chunk.shots == shots, "lease must map to exactly one chunk"
    return chunk


def _maybe_crash(worker_id: int, completed: int) -> None:
    doomed = os.environ.get(CRASH_WORKER_ENV, "")
    if str(worker_id) not in doomed.split(","):
        return
    if completed >= int(os.environ.get(CRASH_AFTER_ENV, "1")):
        os.kill(os.getpid(), signal.SIGKILL)


def worker_main(worker_id: int, tasks: List[InjectionTask],
                store_path: Optional[str], inbox, results) -> None:
    """Process entry point: drain leases until told to exit.

    Messages in: ``("chunk", task_index, start, shots)`` /
    ``("exit",)``.  Messages out: ``("chunk", worker_id, task_index,
    row, metrics_snapshot)`` / ``("error", worker_id, task_index,
    start, shots, traceback)``.  Failures are reported, not raised — a
    task that cannot execute must surface in the scheduler as a
    campaign error, not as a silent worker death that looks
    requeue-able.

    The metrics snapshot riding every chunk message is the worker's
    *cumulative* registry state (zeroed at worker start, so fork
    inheritance never leaks parent counts): the scheduler merges per
    worker by replacement, making the transport idempotent — a lost or
    reordered message can never double-count.
    """
    obs.reset()
    shard: Optional[CampaignStore] = None
    if store_path is not None:
        shard = CampaignStore(shard_path(store_path, worker_id))
    keys: Dict[int, str] = {}
    completed = 0
    try:
        while True:
            message = inbox.get()
            if message[0] == "exit":
                return
            _, task_index, start, shots = message
            task = tasks[task_index]
            try:
                chunk = execute_lease(task, start, shots)
            except Exception:
                results.put(("error", worker_id, task_index, start, shots,
                             traceback.format_exc()))
                continue
            if shard is not None:
                if task_index not in keys:
                    keys[task_index] = task_key(task)
                shard.append_chunk(keys[task_index], chunk)
            results.put(("chunk", worker_id, task_index, chunk.to_row(),
                         obs.registry().snapshot()))
            completed += 1
            _maybe_crash(worker_id, completed)
    finally:
        if shard is not None:
            shard.close()
