"""Multiprocess work-stealing campaign scheduler.

The paper's conclusions rest on millions of injections; the frame
backend made sampling cheap enough that a single interpreter became
the bottleneck.  This scheduler makes campaign wall-clock scale with
the hardware while keeping the engine's reproducibility contract
intact:

* **Priority queue** — tasks are dispensed in order of expected
  remaining shots (deepest first), so the low-LER tail points that
  adaptive stopping cannot shorten start early and never straggle
  behind a line of quick mid-rate points.
* **Per-worker deques + stealing** — each worker owns a deque of
  block-aligned :class:`ChunkLease` runs (locality: consecutive leases
  of one task reuse the worker's cached compiled program).  A worker
  that drains its deque first refills from the priority queue, then
  steals the back half of the longest deque.  Leases queue on the
  parent side; only a small pipeline is ever buffered in a worker, so
  almost all planned work remains stealable.
* **Crash tolerance** — a dead worker's leased chunks are requeued
  and the campaign completes with a :class:`RuntimeWarning`; if every
  worker dies, the scheduler finishes the remaining leases in-process.
  Requeued chunks may execute twice; canonical block seeding makes the
  re-run bit-identical, and the store's ``(key, start)`` dedup folds
  the duplicates away.
* **Deterministic sharded aggregation** — each worker appends finished
  chunks to its own JSONL shard (no write contention, crash-durable)
  while the results queue feeds the same counts back as the global
  aggregation channel.  Adaptive stop decisions are made only at
  shots-completed watermarks over the contiguous frontier
  (:class:`~repro.parallel.plan.TaskPlan`), never on worker arrival
  order, so final counts and stop shots are bit-identical for
  ``workers=1|2|4``.  Shards are merged into the main store through
  :meth:`CampaignStore.merge` when the campaign ends.
"""

from __future__ import annotations

import glob
import heapq
import multiprocessing as mp
import os
import queue
import signal
import threading
import warnings
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .. import obs
from ..injection.adaptive import AdaptivePolicy
from ..injection.campaign import _normalize_chunk
from ..injection.results import SIM_BLOCK, ChunkResult, InjectionResult
from ..injection.spec import InjectionTask
from ..injection.store import CampaignStore, task_key
from .plan import ChunkLease, Prior, TaskPlan
from .worker import execute_lease, shard_path, worker_main

#: Chunks buffered inside a worker process (in its inbox) at any time.
#: Enough to hide the queue round-trip behind compute; small enough
#: that nearly all planned work stays on the parent side, stealable.
PIPELINE_DEPTH = 2
#: Lease run handed to one worker before any wall-clock observation.
MAX_LEASE_RUN = 8
#: Adaptive lease sizing: target wall-clock for one refill's lease run.
#: Once a task's chunk rate is observed, runs are sized so a worker
#: holds roughly this many seconds of leased work — deep/slow tasks
#: shrink to single-lease runs (everything else stays stealable),
#: cheap tasks batch up to :data:`LEASE_RUN_CAP` to amortise the queue
#: round-trip.
TARGET_LEASE_RUN_S = 1.0
#: Hard cap on an adaptively-sized lease run.
LEASE_RUN_CAP = 32
#: EWMA smoothing for observed per-shot wall-clock.
_RATE_ALPHA = 0.5

#: Scheduler metric handles (parent-process registry; cached once —
#: obs.reset zeroes them in place).
_OBS_LEASES = obs.counter("scheduler.leases")
_OBS_STEALS = obs.counter("scheduler.steals")
_OBS_CRASHES = obs.counter("scheduler.worker_crashes")
_OBS_REQUEUED = obs.counter("scheduler.requeued_leases")
_OBS_WORKERS = obs.counter("scheduler.workers_started")
_OBS_QUEUE = obs.gauge("scheduler.pending_leases")
#: Lease wall-clock distribution (drives the lease-sizing EWMA; the
#: histogram makes its spread visible in /metrics and reports).
_OBS_LEASE_RUN = obs.registry().histogram(
    "scheduler.lease_run_s",
    (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
     60.0, 120.0))


def lease_run_size(pending: int, alive: int, chunk_shots: int,
                   sec_per_shot: Optional[float]) -> int:
    """How many leases one refill should hand a worker.

    Pure sizing rule (unit-testable, scheduling-only — counts never
    depend on it): before any observation, fall back to the fixed
    fair-share bound; afterwards, target :data:`TARGET_LEASE_RUN_S`
    seconds of work per run from the task's observed per-shot
    wall-clock, clamped by the fair share so one worker can never
    drain a task other workers are starving for.
    """
    fair = max(1, -(-pending // max(1, alive)))
    if sec_per_shot is None or sec_per_shot <= 0.0:
        return max(1, min(MAX_LEASE_RUN, fair))
    per_lease = sec_per_shot * max(1, chunk_shots)
    desired = max(1, int(TARGET_LEASE_RUN_S / max(per_lease, 1e-9)))
    return max(1, min(LEASE_RUN_CAP, fair, desired))


def absorb_stale_shards(store: CampaignStore) -> Optional[Dict[str, int]]:
    """Fold leftover per-worker shards (an interrupted parallel run)
    into ``store`` so a resume sees every chunk that actually ran."""
    paths = sorted(glob.glob(glob.escape(store.path) + ".shard-*"))
    if not paths:
        return None
    warnings.warn(
        f"absorbing {len(paths)} leftover worker shard(s) from an "
        f"interrupted parallel run into {store.path!r}",
        RuntimeWarning, stacklevel=2)
    obs.event("scheduler.stale_shards",
              f"absorbing {len(paths)} leftover shard(s)",
              store=store.path, shards=len(paths))
    stats = store.absorb_shards(paths)
    for path in paths:
        os.unlink(path)
    return stats


def _mp_context():
    """Prefer fork (fast spawn, inherited imports); fall back cleanly."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class WorkStealingScheduler:
    """Execute a list of campaign points across worker processes."""

    def __init__(self, workers: int,
                 chunk_shots: Optional[int] = None,
                 adaptive: Optional[AdaptivePolicy] = None,
                 store: Optional[CampaignStore] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.requested_workers = int(workers)
        # Parallel default: one canonical SIM_BLOCK per lease — the
        # finest stealable grain the reproducibility contract allows.
        self.chunk_shots = (SIM_BLOCK if chunk_shots is None
                            else _normalize_chunk(chunk_shots))
        self.adaptive = adaptive
        self.store = store

    # -- public entry --------------------------------------------------
    def run(self, tasks: List[InjectionTask],
            priors: Optional[List[Prior]] = None) -> List[InjectionResult]:
        if priors is None:
            priors = [(0, 0, 0, 0, 0.0, 0)] * len(tasks)
        plans = [TaskPlan(i, task, prior, self.chunk_shots, self.adaptive)
                 for i, (task, prior) in enumerate(zip(tasks, priors))]
        self._plans = plans
        self._keys = [task_key(t) for t in tasks] \
            if self.store is not None else [None] * len(tasks)
        self._finalized = [plan.done for plan in plans]
        for plan in plans:
            if plan.done:
                self._mark_done(plan)
        total_leases = sum(len(p.pending) for p in plans)
        if total_leases:
            self._execute(plans, total_leases)
        return [plan.result() for plan in plans]

    # -- store plumbing ------------------------------------------------
    def _mark_done(self, plan: TaskPlan) -> None:
        self._finalized[plan.index] = True
        if self.store is not None:
            self.store.mark_done(self._keys[plan.index], plan.result())
        mon = obs.active()
        if mon is not None:
            mon.task_done(plan.task, plan.shots, plan.errors,
                          target=plan.target)
            mon.tick()

    def _absorb_shards(self, worker_ids) -> None:
        if self.store is None:
            return
        paths = [shard_path(self.store.path, w) for w in worker_ids]
        paths = [p for p in paths if os.path.exists(p)]
        if paths:
            self.store.absorb_shards(paths)
            for path in paths:
                os.unlink(path)

    # -- the scheduling loop -------------------------------------------
    def _execute(self, plans: List[TaskPlan], total_leases: int) -> None:
        ctx = _mp_context()
        num_workers = max(1, min(self.requested_workers, total_leases))
        results_q = ctx.Queue()
        workers: Dict[int, Tuple[object, object]] = {}  # wid -> (proc, inbox)
        tasks = [plan.task for plan in plans]
        store_path = self.store.path if self.store is not None else None
        # Graceful shutdown: a SIGTERM (service stop, batch-system
        # preemption) becomes a KeyboardInterrupt so it unwinds through
        # the same finally as Ctrl+C — workers drained, shards absorbed
        # — instead of killing the parent with shards on disk (the
        # stale-shard recovery path).  Only installable from the main
        # thread; elsewhere SIGTERM keeps its default meaning.
        previous_term = None
        if threading.current_thread() is threading.main_thread():

            def _term_to_interrupt(signum, frame):
                raise KeyboardInterrupt

            previous_term = signal.signal(signal.SIGTERM,
                                          _term_to_interrupt)
        try:
            for wid in range(num_workers):
                inbox = ctx.Queue()
                proc = ctx.Process(
                    target=worker_main,
                    args=(wid, tasks, store_path, inbox, results_q),
                    daemon=True)
                try:
                    proc.start()
                except OSError as exc:
                    warnings.warn(
                        f"could not start parallel worker {wid} ({exc}); "
                        f"continuing with {len(workers)} worker(s)",
                        RuntimeWarning, stacklevel=2)
                    break
                workers[wid] = (proc, inbox)
                _OBS_WORKERS.inc()
            self._deques: Dict[int, Deque[ChunkLease]] = {
                wid: deque() for wid in workers}
            self._inflight: Dict[int, Dict[Tuple[int, int], ChunkLease]] = {
                wid: {} for wid in workers}
            #: Observed per-shot wall-clock EWMA per task (adaptive
            #: lease sizing; scheduling-only state).
            self._sec_per_shot: Dict[int, float] = {}
            self._alive = set(workers)
            self._heap: List[Tuple[int, int, int]] = []
            self._heap_seq = 0
            for plan in plans:
                self._push_plan(plan)
            if not workers:
                self._run_inline(plans)
                return
            for wid in list(self._alive):
                self._pump(wid, workers)
            failure: Optional[Tuple[InjectionTask, str]] = None
            while not all(self._finalized) and failure is None:
                try:
                    message = results_q.get(timeout=0.25)
                except queue.Empty:
                    self._reap_dead(workers)
                    if not self._alive:
                        self._run_inline(plans)
                        return
                    continue
                kind = message[0]
                if kind == "chunk":
                    _, wid, task_index, row, metrics_snap = message
                    self._on_chunk(wid, task_index,
                                   ChunkResult.from_row(row),
                                   metrics_snap)
                    # Pump every live worker, not just the reporter: a
                    # worker that went idle while all work was in
                    # flight elsewhere picks new leases back up here.
                    for live in list(self._alive):
                        self._pump(live, workers)
                elif kind == "error":
                    _, wid, task_index, start, shots, tb = message
                    failure = (plans[task_index].task, tb)
            if failure is not None:
                task, tb = failure
                raise RuntimeError(
                    f"parallel campaign point {task.label!r} failed in a "
                    f"worker:\n{tb}")
        except KeyboardInterrupt:
            # Requeue every lease still on a deque or in flight (parent
            # bookkeeping so the plans' pending state is honest), count
            # what the interrupt abandoned, and let the finally drain
            # workers + absorb their shards: every chunk that actually
            # ran reaches the store, and the resume is warning-free.
            requeued = 0
            for wid in getattr(self, "_inflight", {}):
                leases = list(self._inflight[wid].values()) \
                    + list(self._deques[wid])
                self._inflight[wid].clear()
                self._deques[wid].clear()
                for lease in sorted(leases,
                                    key=lambda lease: lease.start,
                                    reverse=True):
                    self._plans[lease.task_index].give_back(lease)
                    requeued += 1
            done = sum(1 for f in self._finalized if f)
            warnings.warn(
                f"campaign interrupted: {done}/{len(plans)} point(s) "
                f"complete, {requeued} leased chunk(s) requeued; worker "
                f"shards absorbed — rerun with the same store to "
                f"resume", RuntimeWarning, stacklevel=2)
            _OBS_REQUEUED.inc(requeued)
            obs.event("scheduler.interrupted",
                      f"interrupt: {done}/{len(plans)} point(s) done, "
                      f"{requeued} lease(s) requeued, shards absorbed",
                      points_done=done, points_total=len(plans),
                      requeued=requeued)
            raise
        finally:
            self._shutdown(workers)
            self._absorb_shards(list(workers))
            if previous_term is not None:
                signal.signal(signal.SIGTERM, previous_term)

    def _push_plan(self, plan: TaskPlan) -> None:
        """(Re-)enter a task into the priority queue, deepest-first."""
        if plan.pending:
            heapq.heappush(self._heap,
                           (-plan.remaining, self._heap_seq, plan.index))
            self._heap_seq += 1

    def _on_chunk(self, wid: int, task_index: int, chunk: ChunkResult,
                  metrics_snap: Optional[dict] = None) -> None:
        plan = self._plans[task_index]
        self._inflight.get(wid, {}).pop((task_index, chunk.start), None)
        if chunk.shots and chunk.elapsed_s > 0.0:
            _OBS_LEASE_RUN.observe(chunk.elapsed_s)
            rate = chunk.elapsed_s / chunk.shots
            prev = self._sec_per_shot.get(task_index)
            self._sec_per_shot[task_index] = rate if prev is None else \
                _RATE_ALPHA * rate + (1.0 - _RATE_ALPHA) * prev
        target_before = plan.target
        with obs.span("aggregate"):
            plan.record(chunk)
        mon = obs.active()
        if mon is not None:
            if metrics_snap is not None:
                mon.worker_snapshot(wid, metrics_snap)
            mon.task_progress(plan.task, plan.shots, plan.errors,
                              plan.target, plan._weight_stats())
            _OBS_QUEUE.set(sum(len(p.pending) for p in self._plans))
            mon.tick()
        if plan.target < target_before:
            # Adaptive stop: drop the task's now-moot leases from every
            # deque (in-flight ones finish and are discarded on
            # arrival), freeing workers for the deep tail.
            for dq in self._deques.values():
                stale = [lease for lease in dq
                         if lease.task_index == task_index
                         and lease.start >= plan.target]
                for lease in stale:
                    dq.remove(lease)
        if plan.done and not self._finalized[plan.index]:
            self._mark_done(plan)

    def _pump(self, wid: int, workers) -> None:
        """Keep ``wid``'s pipeline full from its deque, refilling or
        stealing when the deque drains."""
        dq = self._deques[wid]
        inflight = self._inflight[wid]
        while len(inflight) < PIPELINE_DEPTH:
            if not dq and not self._refill(wid):
                return
            lease = dq.popleft()
            plan = self._plans[lease.task_index]
            if lease.start >= plan.target:
                continue    # stopped while queued
            inflight[(lease.task_index, lease.start)] = lease
            _OBS_LEASES.inc()
            workers[wid][1].put(("chunk", lease.task_index, lease.start,
                                 lease.shots))

    def _refill(self, wid: int) -> bool:
        """Refill ``wid``'s deque: priority queue first, then steal."""
        while self._heap:
            _, _, task_index = heapq.heappop(self._heap)
            plan = self._plans[task_index]
            if not plan.pending:
                continue
            run = lease_run_size(len(plan.pending), len(self._alive),
                                 self.chunk_shots,
                                 self._sec_per_shot.get(task_index))
            self._deques[wid].extend(plan.take(run))
            self._push_plan(plan)
            return True
        victims = [w for w in self._alive
                   if w != wid and len(self._deques[w]) > 0]
        if not victims:
            return False
        victim = max(victims, key=lambda w: len(self._deques[w]))
        steal = (len(self._deques[victim]) + 1) // 2
        stolen = [self._deques[victim].pop() for _ in range(steal)]
        self._deques[wid].extend(reversed(stolen))
        _OBS_STEALS.inc()
        obs.counter("scheduler.stolen_leases").inc(steal)
        return True

    def _reap_dead(self, workers) -> None:
        """Requeue the leases of any worker that died."""
        for wid in list(self._alive):
            proc = workers[wid][0]
            if proc.is_alive():
                continue
            self._alive.discard(wid)
            leases = list(self._inflight[wid].values()) \
                + list(self._deques[wid])
            self._inflight[wid].clear()
            self._deques[wid].clear()
            requeued = set()
            # Descending-start order: give_back appendlefts, so the
            # requeued chunks come out front-first again and survivors
            # keep extending the contiguous frontier.
            for lease in sorted(leases, key=lambda lease: lease.start,
                                reverse=True):
                plan = self._plans[lease.task_index]
                plan.give_back(lease)
                requeued.add(lease.task_index)
            for task_index in requeued:
                self._push_plan(self._plans[task_index])
            warnings.warn(
                f"parallel worker {wid} died (exit code {proc.exitcode}); "
                f"requeued {len(leases)} leased chunk(s) — the campaign "
                f"continues on {len(self._alive)} worker(s)",
                RuntimeWarning, stacklevel=2)
            _OBS_CRASHES.inc()
            _OBS_REQUEUED.inc(len(leases))
            obs.event("scheduler.worker_crash",
                      f"worker {wid} died (exit code {proc.exitcode})",
                      worker=wid, exitcode=proc.exitcode,
                      requeued=len(leases))
            for other in list(self._alive):
                self._pump(other, workers)

    def _run_inline(self, plans: List[TaskPlan]) -> None:
        """Every worker is gone: finish the remaining leases in the
        scheduler process so the campaign still completes."""
        warnings.warn(
            "no parallel workers remain alive; finishing the campaign "
            "in-process", RuntimeWarning, stacklevel=2)
        obs.event("scheduler.inline_fallback",
                  "all workers dead; finishing in-process")
        for plan in plans:
            # Reclaim leases stranded in dead workers' pipelines
            # (descending, so appendleft restores ascending order).
            for lease in sorted(plan.leased.values(),
                                key=lambda lease: lease.start,
                                reverse=True):
                plan.give_back(lease)
            while plan.shots < plan.target and plan.pending:
                lease = plan.pending.popleft()
                chunk = execute_lease(plan.task, lease.start, lease.shots)
                if self.store is not None:
                    self.store.append_chunk(self._keys[plan.index], chunk)
                plan.record(chunk)
            if plan.done and not self._finalized[plan.index]:
                self._mark_done(plan)

    def _shutdown(self, workers) -> None:
        for wid, (proc, inbox) in workers.items():
            if proc.is_alive():
                try:
                    inbox.put(("exit",))
                except (OSError, ValueError):
                    pass
        for wid, (proc, inbox) in workers.items():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            # Unblock the queue feeder threads so interpreter exit
            # never hangs on a full pipe.
            inbox.cancel_join_thread()
            inbox.close()
