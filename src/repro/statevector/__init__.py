"""Dense statevector simulation (test oracle for the stabilizer sims)."""

from .simulator import StatevectorSimulator

__all__ = ["StatevectorSimulator"]
