"""Dense statevector simulator (correctness oracle).

Exact simulation of the full gate set — including the non-unitary
``RESET`` and ``MEASURE`` — on up to ~14 qubits.  It exists so that the
stabilizer simulators can be cross-validated on arbitrary Clifford
circuits; production campaigns never use it.

Qubit ordering: qubit 0 is the *most significant* bit of the state
index, matching the left-to-right order of Pauli labels in
:class:`~repro.stabilizer.pauli.PauliString`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import Circuit, Gate, GateType
from ..stabilizer.pauli import PauliString

_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_I = np.eye(2, dtype=complex)

_SINGLE = {
    GateType.I: _I,
    GateType.X: _X,
    GateType.Y: _Y,
    GateType.Z: _Z,
    GateType.H: _H,
    GateType.S: _S,
    GateType.SDG: _SDG,
}

_MAX_QUBITS = 16


class StatevectorSimulator:
    """Dense simulator over ``num_qubits`` qubits starting from |0...0>."""

    def __init__(self, num_qubits: int,
                 rng: Optional[np.random.Generator | int] = None) -> None:
        if not 1 <= num_qubits <= _MAX_QUBITS:
            raise ValueError(
                f"statevector simulator supports 1..{_MAX_QUBITS} qubits")
        self.n = int(num_qubits)
        self.state = np.zeros(2 ** self.n, dtype=complex)
        self.state[0] = 1.0
        if rng is None:
            rng = np.random.default_rng()
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng
        self.record: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _axis(self, qubit: int) -> int:
        """Tensor axis of ``qubit`` (qubit 0 = axis 0 = MSB)."""
        return qubit

    def _apply_single(self, mat: np.ndarray, qubit: int) -> None:
        psi = self.state.reshape([2] * self.n)
        psi = np.moveaxis(psi, self._axis(qubit), 0)
        psi = np.tensordot(mat, psi, axes=([1], [0]))
        psi = np.moveaxis(psi, 0, self._axis(qubit))
        self.state = np.ascontiguousarray(psi).reshape(-1)

    def _apply_two(self, mat4: np.ndarray, q0: int, q1: int) -> None:
        psi = self.state.reshape([2] * self.n)
        a0, a1 = self._axis(q0), self._axis(q1)
        psi = np.moveaxis(psi, (a0, a1), (0, 1))
        shape = psi.shape
        psi = psi.reshape(4, -1)
        psi = mat4 @ psi
        psi = psi.reshape(shape)
        psi = np.moveaxis(psi, (0, 1), (a0, a1))
        self.state = np.ascontiguousarray(psi).reshape(-1)

    # ------------------------------------------------------------------
    def apply(self, gate: Gate) -> Optional[int]:
        gt = gate.gate_type
        if gt is GateType.BARRIER:
            return None
        if gt in _SINGLE:
            self._apply_single(_SINGLE[gt], gate.qubits[0])
            return None
        if gt is GateType.CX:
            m = np.eye(4, dtype=complex)
            m[[2, 3]] = m[[3, 2]]
            self._apply_two(m, *gate.qubits)
            return None
        if gt is GateType.CZ:
            m = np.diag([1, 1, 1, -1]).astype(complex)
            self._apply_two(m, *gate.qubits)
            return None
        if gt is GateType.SWAP:
            m = np.eye(4, dtype=complex)
            m[[1, 2]] = m[[2, 1]]
            self._apply_two(m, *gate.qubits)
            return None
        if gt is GateType.MEASURE:
            outcome = self.measure(gate.qubits[0])
            self.record[gate.cbit] = outcome
            return outcome
        if gt is GateType.RESET:
            self.reset(gate.qubits[0])
            return None
        raise NotImplementedError(gt)  # pragma: no cover - defensive

    def run(self, circuit: Circuit) -> Dict[int, int]:
        if circuit.num_qubits > self.n:
            raise ValueError("circuit wider than simulator register")
        for gate in circuit:
            self.apply(gate)
        return dict(self.record)

    # ------------------------------------------------------------------
    def prob_one(self, qubit: int) -> float:
        """Probability of measuring |1> on ``qubit``."""
        psi = self.state.reshape([2] * self.n)
        psi = np.moveaxis(psi, self._axis(qubit), 0)
        return float(np.sum(np.abs(psi[1]) ** 2))

    def measure(self, qubit: int,
                forced_outcome: Optional[int] = None) -> int:
        p1 = self.prob_one(qubit)
        if forced_outcome is None:
            outcome = int(self.rng.random() < p1)
        else:
            outcome = int(forced_outcome) & 1
            prob = p1 if outcome else 1.0 - p1
            if prob < 1e-12:
                raise ValueError("forced outcome has zero probability")
        psi = self.state.reshape([2] * self.n)
        psi = np.moveaxis(psi, self._axis(qubit), 0).copy()
        psi[1 - outcome] = 0.0
        norm = np.linalg.norm(psi)
        psi /= norm
        psi = np.moveaxis(psi, 0, self._axis(qubit))
        self.state = np.ascontiguousarray(psi).reshape(-1)
        return outcome

    def reset(self, qubit: int) -> None:
        if self.measure(qubit):
            self._apply_single(_X, qubit)

    # ------------------------------------------------------------------
    def expectation(self, pauli: PauliString) -> float:
        """Exact <psi| P |psi> (real part; P assumed Hermitian)."""
        if pauli.num_qubits != self.n:
            raise ValueError("qubit-count mismatch")
        mat = pauli.to_matrix()
        return float(np.real(np.conj(self.state) @ (mat @ self.state)))

    def probabilities(self) -> np.ndarray:
        return np.abs(self.state) ** 2
