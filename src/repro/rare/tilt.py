"""Tilted Bernoulli sampling for the batched-tableau backend.

The frame backend tilts depolarizing sites inside
:class:`~repro.frames.simulator.FrameSimulator` (the sites are compiled
ops there).  On the tableau path noise fires through live
:class:`~repro.noise.base.NoiseChannel` objects instead, so tilting
means swapping every intrinsic :class:`DepolarizingNoise` channel for a
:class:`TiltedDepolarizingNoise` that samples at the boosted
probability and banks each shot's exact log-likelihood ratio in a
shared :class:`WeightSink`.  Fault channels (radiation, erasure) are
left untouched for the same reason the frame path leaves
``OP_RESET_NOISE`` alone: the strike is the campaign's *condition*, not
its rare event.

Both backends therefore tilt the identical set of sites with the
identical clamp rule — only the underlying random streams differ, as
they already do between backends.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..noise.base import NoiseModel
from ..noise.depolarizing import DepolarizingNoise
from .sampler import SamplerSpec


class WeightSink:
    """Per-batch accumulator for tilted shots' log-likelihood ratios.

    One sink is shared by every tilted channel of a noise model; the
    executor resets it before each block and reads the finished
    weights after.
    """

    def __init__(self) -> None:
        self.log_w: Optional[np.ndarray] = None

    def reset(self, batch_size: int) -> None:
        self.log_w = np.zeros(int(batch_size), dtype=np.float64)

    def weights(self) -> np.ndarray:
        if self.log_w is None:
            raise RuntimeError("WeightSink.reset was never called")
        return np.exp(self.log_w)


class TiltedDepolarizingNoise(DepolarizingNoise):
    """A depolarizing channel sampled at ``q`` while modelling ``p``.

    Draws the same one uniform per (gate, qubit) as the plain channel,
    fires at the tilted probability, and adds ``log(p/q)`` /
    ``log((1-p)/(1-q))`` per shot to the sink.  The Pauli arm split
    stays uniform (``q/3`` each), so the likelihood ratio depends only
    on whether the site fired.
    """

    def __init__(self, p: float, q: float, sink: WeightSink,
                 **kwargs) -> None:
        super().__init__(p, **kwargs)
        if not p <= q < 1.0:
            raise ValueError("tilted probability must satisfy p <= q < 1")
        self.q = float(q)
        self.sink = sink
        self._llr_hit = math.log(p / q) if q > p else 0.0
        self._llr_miss = math.log((1.0 - p) / (1.0 - q)) if q > p else 0.0

    def apply_batch(self, gate, sim, rng: np.random.Generator) -> None:
        B = sim.batch_size
        third = self.q / 3.0
        for qubit in self._active_qubits(gate):
            u = rng.random(B)
            if self.q > self.p:
                self.sink.log_w += np.where(u < self.q, self._llr_hit,
                                            self._llr_miss)
            mx = u < third
            my = (u >= third) & (u < 2 * third)
            mz = (u >= 2 * third) & (u < self.q)
            if mx.any():
                sim.x_gate(qubit, mx)
            if my.any():
                sim.y_gate(qubit, my)
            if mz.any():
                sim.z_gate(qubit, mz)

    def apply_single(self, gate, sim, rng: np.random.Generator) -> None:
        # The sink's weight array is batch-shaped; the single-shot
        # executor has no per-shot weight plumbing to hand the LLR to.
        raise NotImplementedError(
            "tilted sampling is batch-only: run_single_noisy has no "
            "per-shot weight channel — use the batched executor")

    def __repr__(self) -> str:
        return (f"TiltedDepolarizingNoise(p={self.p!r}, q={self.q!r})")


def tilted_probability(p: float, sampler: SamplerSpec) -> float:
    """The clamp rule shared by both backends: at most the spec's cap,
    but **never below the nominal ``p``** — a site whose nominal
    probability already exceeds the cap samples at ``p`` (plain MC for
    that site, zero likelihood ratio) rather than *under*-sampling the
    tail, which the sampler spec forbids."""
    return max(p, min(sampler.tilt * p, sampler.p_cap))


def tilted_noise_model(noise: NoiseModel, sampler: SamplerSpec
                       ) -> Tuple[NoiseModel, WeightSink]:
    """Clone a noise model with every intrinsic depolarizing channel
    tilted into a shared :class:`WeightSink`.

    Non-depolarizing channels are shared by reference (they keep their
    own per-run state via ``begin_run``); exact type match mirrors the
    frame compiler's ``LOWERABLE_CHANNELS`` rule.
    """
    sink = WeightSink()
    channels = []
    for ch in noise:
        if type(ch) is DepolarizingNoise and ch.p > 0.0:
            q = tilted_probability(ch.p, sampler)
            channels.append(TiltedDepolarizingNoise(
                ch.p, q, sink,
                include_measurements=ch.include_measurements,
                include_resets=ch.include_resets,
                qubits=None if ch.qubits is None else tuple(ch.qubits)))
        else:
            channels.append(ch)
    return NoiseModel(channels), sink
