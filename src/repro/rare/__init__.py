"""Rare-event importance sampling for the deep low-LER tail.

Plain Monte Carlo needs ``~ z^2 / (rel^2 * LER)`` shots to pin a
logical error rate to a relative precision — millions of shots per
point below ``1e-5``, which is exactly where the paper's distance and
landscape sweeps bottom out.  This package estimates the same rates
with variance reduction instead of brute force:

* :mod:`~repro.rare.sampler` — :class:`SamplerSpec`, the declarative
  sampling measure carried by every :class:`~repro.injection.spec.
  InjectionTask`;
* :mod:`~repro.rare.stats` — weighted estimators (Horvitz-Thompson and
  self-normalized), effective-sample-size diagnostics, delta-method
  and weighted-Wilson confidence intervals;
* :mod:`~repro.rare.tilt` — tilted Bernoulli sampling for the
  batched-tableau backend (the frame backend tilts in-simulator);
* :mod:`~repro.rare.split` — multilevel splitting over compiled frame
  programs (systematic resampling toward high-syndrome trajectories);
* :mod:`~repro.rare.pilot` — the auto-tilt controller and the
  ``repro rare`` diagnostics.
"""

from .sampler import SAMPLER_KINDS, SamplerSpec, as_sampler
from .stats import (
    WeightStats,
    mc_required_shots,
    required_shots,
    variance_reduction_factor,
    wilson_from_rate,
)

__all__ = [
    "SAMPLER_KINDS",
    "SamplerSpec",
    "as_sampler",
    "WeightStats",
    "mc_required_shots",
    "required_shots",
    "variance_reduction_factor",
    "wilson_from_rate",
]
