"""Declarative rare-event sampler specifications.

A :class:`SamplerSpec` names the sampling measure a campaign point
draws its noise realisations from:

``"mc"``
    Plain Monte Carlo — the nominal noise model, unit weights.  The
    default; bit-identical to the engine's historical behaviour.
``"tilt"``
    Tilted Bernoulli sampling: every intrinsic depolarizing site fires
    with probability ``max(p, min(tilt * p, p_cap))`` instead of ``p``,
    and each shot carries the exact log-likelihood-ratio of its sampled
    realisation as an importance weight.  ``tilt = 0`` requests the
    auto-tilt controller (:mod:`repro.rare.pilot`): a short pilot run
    picks the tilt that minimises predicted shots-to-target from a
    geometric ladder.
``"split"``
    Multilevel splitting: the frame batch is resampled at ``levels``
    round boundaries with selection weight ``base ** syndrome_events``,
    cloning shots that look headed for logical failure and discounting
    their weights by the exact selection likelihood ratio
    (:mod:`repro.rare.split`).  Requires the frame backend.

The spec is a frozen dataclass — like :class:`~repro.injection.spec.
FaultSpec` it pickles cheaply, hashes, and participates in the campaign
store's task key (a different sampling measure draws a different random
stream, so it must shape the key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Union

#: Recognised sampler kinds.
SAMPLER_KINDS = ("mc", "tilt", "split")

#: Tilted per-site firing probability is clamped here by default: a
#: depolarizing site past 1/2 is noise-dominated and the likelihood
#: ratio's variance explodes long before that.
DEFAULT_P_CAP = 0.5


@dataclass(frozen=True)
class SamplerSpec:
    """How a campaign point samples its noise realisations.

    Parameters
    ----------
    kind:
        ``"mc"`` (default), ``"tilt"`` or ``"split"``.
    tilt:
        Multiplier on every intrinsic depolarizing probability.  Only
        meaningful for ``kind="tilt"``; ``0.0`` (the default) selects
        the auto-tilt pilot controller, any other value must be >= 1.
    p_cap:
        Upper clamp on a tilted per-site probability.
    levels:
        Maximum resampling stages for ``kind="split"`` (placed evenly
        across the round boundaries; experiments with fewer interior
        rounds use what they have).
    base:
        Splitting selection weight per syndrome detection event:
        a shot with ``s`` events is cloned proportionally to
        ``base ** s``.  Must exceed 1.
    target_rel:
        Relative-CI budget the auto-tilt pilot optimises for (and the
        denominator of variance-reduction diagnostics).
    pilot_shots:
        Shots per ladder rung in the auto-tilt pilot.
    """

    kind: str = "mc"
    tilt: float = 0.0
    p_cap: float = DEFAULT_P_CAP
    levels: int = 2
    base: float = 2.0
    target_rel: float = 0.2
    pilot_shots: int = 1024

    def __post_init__(self) -> None:
        if self.kind not in SAMPLER_KINDS:
            raise ValueError(f"unknown sampler kind {self.kind!r}; "
                             f"expected one of {SAMPLER_KINDS}")
        if self.tilt < 0.0:
            raise ValueError("tilt must be >= 1 (or 0 for auto)")
        if self.kind == "tilt" and 0.0 < self.tilt < 1.0:
            raise ValueError("tilt < 1 would sample the tail *less* "
                             "often; use 0 for the auto controller")
        if not 0.0 < self.p_cap <= 0.75:
            raise ValueError("p_cap must lie in (0, 0.75]")
        if self.levels < 1:
            raise ValueError("split needs at least one level")
        if self.base <= 1.0:
            raise ValueError("split selection base must exceed 1")
        if not 0.0 < self.target_rel < 1.0:
            raise ValueError("target_rel must lie in (0, 1)")
        if self.pilot_shots < 1:
            raise ValueError("pilot_shots must be positive")

    @property
    def weighted(self) -> bool:
        """Does this sampler attach non-unit importance weights?"""
        return self.kind != "mc"

    @property
    def auto_tilt(self) -> bool:
        return self.kind == "tilt" and self.tilt == 0.0

    @property
    def label(self) -> str:
        if self.kind == "tilt":
            return "tilt:auto" if self.auto_tilt else f"tilt:{self.tilt:g}"
        if self.kind == "split":
            return f"split:{self.levels}x{self.base:g}"
        return "mc"


def as_sampler(obj: Union["SamplerSpec", str, Mapping[str, Any], None]
               ) -> SamplerSpec:
    """Coerce a sweep-spec / CLI sampler description into a spec.

    Accepts a ready :class:`SamplerSpec`, ``None`` (plain MC), a kind
    string (``"tilt"`` / ``"tilt:8"`` with an inline tilt factor), or a
    JSON mapping ``{"kind": "tilt", "tilt": 8, ...}``.
    """
    if obj is None:
        return SamplerSpec()
    if isinstance(obj, SamplerSpec):
        return obj
    if isinstance(obj, str):
        kind, _, arg = obj.partition(":")
        if kind == "tilt" and arg:
            return SamplerSpec(kind="tilt", tilt=float(arg))
        if kind == "split" and arg:
            return SamplerSpec(kind="split", levels=int(arg))
        if arg:
            raise ValueError(f"sampler {obj!r} takes no argument")
        return SamplerSpec(kind=kind)
    if isinstance(obj, Mapping):
        return SamplerSpec(**{str(k): v for k, v in obj.items()})
    raise ValueError(f"cannot parse sampler spec {obj!r}")
