"""Auto-tilt controller: pick the tilt from a short pilot run.

Choosing a tilt by hand is the classic importance-sampling footgun:
too small and the tail stays unsampled, too large and a handful of
heavy weights dominate the estimator (ESS collapse).  The controller
makes the choice empirical and deterministic:

1. run a small pilot batch at each rung of a geometric tilt ladder,
   through the engine's own :func:`~repro.injection.campaign.
   execute_block` (identical sampling semantics to the real run);
2. for each rung with enough observed failures, predict the shots the
   Horvitz-Thompson estimator would need to reach the spec's
   ``target_rel`` relative CI from that rung's measured per-shot
   variance;
3. pin the rung with the smallest prediction.

Pilot blocks are seeded from the task seed along the reserved
``(3, rung, block)`` spawn path — disjoint from the campaign's block
streams and the frame reference pass — so the chosen tilt is a pure
function of the task spec: every worker process resolves the same tilt
and the campaign's bit-identity contract survives auto-tilting.

When no rung observes ``MIN_PILOT_ERRORS`` failures (the point is too
deep even for the pilot budget), the controller falls back to the most
aggressive rung: sampling more aggressively is the only move that can
surface the tail at all, and its weights stay bounded by the clamp.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..util.rng import derive_seed
from .sampler import SamplerSpec
from .stats import (WeightStats, mc_required_shots, required_shots,
                    variance_reduction_factor)

#: Geometric tilt ladder the pilot walks (1 = plain MC for reference).
PILOT_TILTS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
#: Failures a rung must observe before its variance estimate is
#: trusted for the argmin.
MIN_PILOT_ERRORS = 3
#: Simulation block size for pilot batches (kept modest so the pilot
#: stays a rounding error next to the campaign it tunes).
_PILOT_BLOCK = 512


@dataclass
class PilotRung:
    """Diagnostics for one ladder rung of a pilot run."""

    tilt: float
    shots: int
    errors: int
    stats: WeightStats

    @property
    def rate(self) -> float:
        return self.stats.estimate("sn")

    @property
    def ess_fraction(self) -> float:
        return self.stats.ess_fraction

    def predicted_shots(self, target_rel: float) -> float:
        """Shots the weighted estimator would need for the target."""
        p = self.stats.estimate("ht")
        if p <= 0.0 or self.errors == 0:
            return float("inf")
        return required_shots(self.stats.variance("ht") * self.shots,
                              p, target_rel)

    def to_row(self, target_rel: float) -> Dict[str, object]:
        pred = self.predicted_shots(target_rel)
        vrf = variance_reduction_factor(self.stats, target_rel)
        return {
            "tilt": self.tilt,
            "pilot_shots": self.shots,
            "errors": self.errors,
            "ler_sn": self.rate,
            "ess_frac": self.ess_fraction,
            "shots_to_target": (math.inf if math.isinf(pred)
                                else int(round(pred))),
            "var_reduction": vrf,
        }


def run_pilot(task, experiment, decoder, noise, program,
              sampler: SamplerSpec,
              tilts=PILOT_TILTS) -> List[PilotRung]:
    """Execute the pilot ladder for one task; returns per-rung stats.

    ``experiment``/``decoder``/``noise``/``program`` come from the
    caller's task context (the pilot never rebuilds them).  Each rung
    runs ``sampler.pilot_shots`` shots in ``_PILOT_BLOCK``-sized
    batches on its own reserved seed path.
    """
    from ..injection.campaign import execute_block
    from .tilt import tilted_noise_model

    rungs: List[PilotRung] = []
    for k, tilt in enumerate(tilts):
        rung_sampler = dataclasses.replace(
            sampler, kind="tilt" if tilt != 1.0 else "mc",
            tilt=float(tilt))
        tilted = None
        if rung_sampler.kind == "tilt" and program is None:
            tilted = tilted_noise_model(noise, rung_sampler)
        errors = 0
        stats = WeightStats()
        done = 0
        block = 0
        while done < sampler.pilot_shots:
            size = min(_PILOT_BLOCK, sampler.pilot_shots - done)
            rng = np.random.default_rng(
                derive_seed(task.seed, 3, k, block))
            b_err, _, _, b_stats = execute_block(
                experiment, decoder, noise, program, rung_sampler,
                tilted, size, rng)
            errors += b_err
            if b_stats is None:
                b_stats = WeightStats.from_counts(size, b_err)
            stats = stats + b_stats
            done += size
            block += 1
            obs.counter("rare.pilot_shots").inc(size)
        rungs.append(PilotRung(tilt=tilt, shots=done, errors=errors,
                               stats=stats))
    return rungs


def choose_tilt(rungs: List[PilotRung], target_rel: float) -> float:
    """The ladder rung minimising predicted shots-to-target.

    Rungs below :data:`MIN_PILOT_ERRORS` observed failures are not
    trusted (their variance estimate is noise); if *no* rung qualifies
    the deepest rung wins — see the module doc.
    """
    qualified = [r for r in rungs if r.errors >= MIN_PILOT_ERRORS
                 and r.tilt >= 1.0]
    if not qualified:
        return max(rungs, key=lambda r: r.tilt).tilt
    best = min(qualified,
               key=lambda r: (r.predicted_shots(target_rel), r.tilt))
    return best.tilt


def resolve_tilt(task, experiment, decoder, noise, program
                 ) -> SamplerSpec:
    """Resolve an auto-tilt sampler to a concrete pinned tilt."""
    sampler = task.sampler
    with obs.span("pilot"):
        rungs = run_pilot(task, experiment, decoder, noise, program,
                          sampler)
        tilt = choose_tilt(rungs, sampler.target_rel)
    obs.counter("rare.pilots").inc()
    obs.gauge("rare.pilot_tilt").set(max(1.0, float(tilt)))
    return dataclasses.replace(sampler, tilt=max(1.0, float(tilt)))


def pilot_report(task, target_rel: Optional[float] = None
                 ) -> List[Dict[str, object]]:
    """Run the pilot for ``task`` and return its diagnostics rows
    (the ``repro rare`` command's table)."""
    from ..injection.campaign import _task_context

    # Pin a concrete tilt so the context lookup does not itself run an
    # auto-tilt pilot before this explicit one.
    pinned = (task.sampler.tilt if task.sampler.kind == "tilt"
              and task.sampler.tilt >= 1.0 else 1.0)
    base = dataclasses.replace(
        task, sampler=dataclasses.replace(task.sampler, kind="tilt",
                                          tilt=pinned))
    experiment, decoder, noise, program, _, _ = _task_context(base)
    sampler = base.sampler
    rel = sampler.target_rel if target_rel is None else target_rel
    rungs = run_pilot(base, experiment, decoder, noise, program, sampler)
    chosen = choose_tilt(rungs, rel)
    rows = []
    for rung in rungs:
        row = rung.to_row(rel)
        row["chosen"] = "*" if rung.tilt == chosen else ""
        rows.append(row)
    return rows
