"""Multilevel splitting over a compiled frame program.

Deep-tail logical failures need several independent physical faults to
line up; almost every plain-MC shot wastes its decode on a trajectory
that was never going to fail.  Splitting redistributes the batch toward
dangerous trajectories *mid-flight*: at a few syndrome-round boundaries
the executor scores every shot by its accumulated syndrome detection
events (the importance function — more events means closer to decoder
failure), then **resamples the batch lanes** with selection weight
``base ** events`` using one systematic low-variance draw.  Shots that
crossed the level threshold are cloned into many lanes; quiet shots
survive occasionally with boosted weight.  Each child lane's importance
weight is discounted by the exact selection likelihood ratio
``mean(g) / g(parent)``, so the weighted estimator stays unbiased:

    E[ sum_children w_child f(child) ] = sum_parents w_parent f(parent)

for any per-lane functional ``f`` — killing is never outright (every
parent keeps positive selection probability), which is what makes the
scheme safe even though logical failure is not a monotone function of
mid-circuit syndrome weight.

Everything is batch-native: lanes live bit-packed in the simulator's
X/Z frame words, cloning is a gather of bit columns, and the one
uniform per level comes from the block's deterministic rng stream — a
block's splitting history is a pure function of the task seed and the
block index, preserving the engine's chunking/resume/worker-count
bit-identity contract.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..codes.base import MemoryExperiment
from ..frames.packing import column_counts, pack_bool_rows, unpack_words
from ..frames.program import OP_MEASURE, OP_MEASURE_LAYER, FrameProgram
from ..frames.simulator import FrameSimulator
from .sampler import SamplerSpec

#: Detection-event exponent clamp: ``base ** score`` must stay finite
#: and one runaway lane must not absorb the whole batch.
MAX_SCORE = 48


def _measured_cbits(op) -> List[int]:
    if op[0] == OP_MEASURE:
        return [op[2]]
    if op[0] == OP_MEASURE_LAYER:
        return [int(c) for c in op[2]]
    return []


def split_points(program: FrameProgram, experiment: MemoryExperiment,
                 levels: int) -> List[Tuple[int, int]]:
    """Choose ``(op_index, rounds_done)`` resampling boundaries.

    A boundary sits directly after the op that completes a syndrome
    round (every cbit of that round's plaquette tables measured, both
    bases); at most ``levels`` boundaries are kept, evenly spaced over
    the interior rounds — the final round is never a boundary (there is
    nothing left to redistribute toward).
    """
    tables = [np.asarray(t, dtype=np.intp)
              for t in (experiment.z_syndrome_cbits,
                        experiment.x_syndrome_cbits)
              if t and t[0]]
    rounds = experiment.rounds
    if rounds < 2 or not tables:
        return []
    round_cbits = [set() for _ in range(rounds)]
    for table in tables:
        for r in range(min(rounds, table.shape[0])):
            round_cbits[r].update(int(c) for c in table[r])
    boundaries: List[Tuple[int, int]] = []   # (op_index, rounds_done)
    measured: set = set()
    want = 0
    for i, op in enumerate(program.ops):
        measured.update(_measured_cbits(op))
        while want < rounds - 1 and round_cbits[want] <= measured:
            boundaries.append((i + 1, want + 1))
            want += 1
    if not boundaries:
        return []
    levels = max(1, min(int(levels), len(boundaries)))
    idx = np.linspace(0, len(boundaries) - 1, levels)
    picked = sorted({int(round(i)) for i in idx})
    return [boundaries[i] for i in picked]


def _event_scores(record_words: np.ndarray, experiment: MemoryExperiment,
                  rounds_done: int, batch_size: int) -> np.ndarray:
    """Per-shot syndrome detection events over the first
    ``rounds_done`` rounds (both plaquette bases; consecutive-round
    XOR, round 0 of the dual basis suppressed exactly as the streaming
    detector does)."""
    planes = []
    for basis_table, is_memory in (
            (experiment.z_syndrome_cbits, experiment.basis == "Z"),
            (experiment.x_syndrome_cbits, experiment.basis == "X")):
        if not basis_table or not basis_table[0]:
            continue
        idx = np.asarray(basis_table, dtype=np.intp)[:rounds_done]
        syn = record_words[idx]               # (r, P, W)
        det = syn.copy()
        det[1:] ^= syn[:-1]
        if not is_memory:
            det[0] = 0
        planes.append(det.reshape(-1, record_words.shape[-1]))
    if not planes:
        return np.zeros(batch_size, dtype=np.int64)
    return column_counts(np.concatenate(planes, axis=0), batch_size)


def systematic_parents(g: np.ndarray, u0: float) -> np.ndarray:
    """Systematic resampling: ``B`` children from selection weights
    ``g`` using one uniform offset ``u0`` in [0, 1).

    Child ``k`` picks the parent whose cumulative-weight interval
    contains ``(u0 + k) * mean(g)`` — expected clone counts are exactly
    ``B * g / sum(g)``, with single-draw (minimal) variance.
    """
    B = g.size
    cum = np.cumsum(g)
    positions = (float(u0) + np.arange(B)) * (cum[-1] / B)
    parents = np.searchsorted(cum, positions, side="right")
    return np.minimum(parents, B - 1)


def _gather_columns(words: np.ndarray, parents: np.ndarray,
                    batch_size: int) -> np.ndarray:
    """Clone packed shot columns: ``out[:, k] = words[:, parents[k]]``
    in bit-column space."""
    bits = unpack_words(words, batch_size)
    return pack_bool_rows(np.ascontiguousarray(bits[:, parents]))


def run_split_packed(sim: FrameSimulator, program: FrameProgram,
                     experiment: MemoryExperiment, sampler: SamplerSpec
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Execute ``program`` with multilevel splitting; returns
    ``(record_words, per-shot weights)``.

    The program runs segment by segment; at each level boundary the
    batch is scored, systematically resampled toward high-event lanes,
    and every cloned lane's log-weight discounted by its selection
    ratio.  The X/Z frames, the measurement record so far, and the
    accumulated log-weights are all gathered consistently, so a child
    lane is a faithful copy of its parent's whole trajectory.
    """
    points = split_points(program, experiment, sampler.levels)
    record_words = np.zeros((program.num_cbits, sim.num_words),
                            dtype=np.uint64)
    B = sim.batch_size
    log_w = np.zeros(B, dtype=np.float64)
    pos = 0
    for op_index, rounds_done in points:
        sim.exec_ops(program.ops[pos:op_index], record_words)
        pos = op_index
        scores = _event_scores(record_words, experiment, rounds_done, B)
        g = np.power(float(sampler.base),
                     np.minimum(scores, MAX_SCORE).astype(np.float64))
        u0 = sim.rng.random()
        parents = systematic_parents(g, u0)
        log_mult = np.log(g.mean()) - np.log(g[parents])
        sim.x = _gather_columns(sim.x, parents, B)
        sim.z = _gather_columns(sim.z, parents, B)
        record_words = _gather_columns(record_words, parents, B)
        log_w = log_w[parents] + log_mult
    sim.exec_ops(program.ops[pos:], record_words)
    return record_words, np.exp(log_w)
