"""Weighted-estimator statistics for rare-event campaigns.

Importance-sampled shots carry a likelihood-ratio weight ``w_i`` (the
probability of the sampled noise realisation under the *nominal* model
divided by its probability under the *tilted* sampling model, times any
splitting discount).  A campaign point's logical error rate is then no
longer ``errors / shots`` but a weighted functional of the per-shot
``(w_i, e_i)`` pairs, and every layer that used to aggregate two ints
now aggregates four scalar moments:

``wsum``  = sum(w_i)          ``wsq``  = sum(w_i^2)
``esum``  = sum(w_i   e_i)    ``esq``  = sum(w_i^2 e_i)

These four sums are associative and order-insensitive in exact
arithmetic; the engine always adds them in canonical block order (the
contiguous frontier), so weighted counts stay bit-identical across
chunk sizes, resumes and worker counts exactly like the integer counts.

Two point estimators are provided:

* **Horvitz-Thompson** (``ht``): ``esum / N`` — unbiased, but unbounded
  relative variance when the tilt overshoots;
* **self-normalized** (``sn``, the default): ``esum / wsum`` —
  consistent, bounded by [0, max w], usually lower variance, and equal
  to the plain sample mean when every weight is 1.

Interval estimates:

* **delta method**: normal interval with the standard linearised
  variance of the chosen estimator;
* **weighted Wilson** (the adaptive-stopping criterion): the classic
  Wilson score interval evaluated at the weighted rate with the
  *design-effect* effective sample size ``n_eff = p (1 - p) / Var``
  in place of ``n`` — the Bernoulli sample count whose information
  equals the weighted estimator's.  (The Kish ESS ``wsum^2 / wsq``
  stays available as a weight-degeneracy diagnostic, but it is the
  wrong ``n`` for a *rate* interval under tilting: error shots carry
  systematically small weights, which Kish ignores.)  At unit weights
  ``n_eff == n`` and the interval reduces to the unweighted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


def wilson_from_rate(p: float, n: float, z: float = 1.96
                     ) -> Tuple[float, float]:
    """Wilson score interval for a measured rate ``p`` over ``n``
    (possibly effective, i.e. fractional) samples.

    The float-in/float-out core of the classic interval: the
    unweighted :func:`repro.injection.results.wilson_interval` and the
    weighted ESS-based interval both evaluate exactly this expression,
    so the two agree bit-for-bit whenever ``(p, n)`` do.
    """
    if n <= 0:
        return (0.0, 1.0)
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class WeightStats:
    """The four weighted moments of one shot range (see module doc).

    Immutable and additive: ``a + b`` concatenates two disjoint shot
    ranges.  ``shots`` rides along so Horvitz-Thompson estimates and
    weight-conservation diagnostics know the nominal denominator.
    """

    shots: int = 0
    wsum: float = 0.0
    wsq: float = 0.0
    esum: float = 0.0
    esq: float = 0.0
    #: Are the underlying (w_i, e_i) pairs independent draws?  True
    #: for plain MC and tilted sampling; False for multilevel
    #: splitting, whose lanes are correlated clones — the variance /
    #: ESS formulas below assume independence, so non-iid moments mark
    #: their intervals as optimistic (and the adaptive policy refuses
    #: to early-stop on them).
    iid: bool = True

    @classmethod
    def from_counts(cls, shots: int, errors: int) -> "WeightStats":
        """The unit-weight (plain Monte Carlo) moments of a count pair."""
        return cls(shots=int(shots), wsum=float(shots), wsq=float(shots),
                   esum=float(errors), esq=float(errors))

    @classmethod
    def from_weights(cls, weights, errors) -> "WeightStats":
        """Moments of per-shot ``weights`` (floats) and ``errors``
        (bools); sums run in array order, so identical inputs produce
        bit-identical moments."""
        import numpy as np

        w = np.asarray(weights, dtype=np.float64)
        e = np.asarray(errors, dtype=bool)
        we = w[e]
        return cls(shots=int(w.size),
                   wsum=float(w.sum()), wsq=float((w * w).sum()),
                   esum=float(we.sum()), esq=float((we * we).sum()))

    def __add__(self, other: "WeightStats") -> "WeightStats":
        return WeightStats(self.shots + other.shots,
                           self.wsum + other.wsum, self.wsq + other.wsq,
                           self.esum + other.esum, self.esq + other.esq,
                           iid=self.iid and other.iid)

    # -- diagnostics ---------------------------------------------------
    @property
    def ess(self) -> float:
        """Kish effective sample size ``wsum^2 / wsq`` (== ``shots``
        for unit weights; collapses toward 1 as weights degenerate)."""
        if self.wsq <= 0.0:
            return 0.0
        return self.wsum * self.wsum / self.wsq

    @property
    def ess_fraction(self) -> float:
        return self.ess / self.shots if self.shots else 0.0

    @property
    def weight_mean(self) -> float:
        """Mean per-shot weight: 1.0 in expectation for any unbiased
        importance scheme (the weight-conservation invariant)."""
        return self.wsum / self.shots if self.shots else 0.0

    # -- point estimates -----------------------------------------------
    def estimate(self, mode: str = "sn") -> float:
        """Weighted logical-error-rate estimate (``sn`` or ``ht``)."""
        if mode == "sn":
            return self.esum / self.wsum if self.wsum > 0 else 0.0
        if mode == "ht":
            return self.esum / self.shots if self.shots else 0.0
        raise ValueError(f"unknown estimator mode {mode!r}")

    # -- interval estimates --------------------------------------------
    def variance(self, mode: str = "sn") -> float:
        """Estimated variance of :meth:`estimate` (delta method).

        For ``ht``, the empirical variance of the iid terms ``w_i e_i``
        over ``shots`` draws; for ``sn``, the linearised ratio variance
        ``sum(w_i^2 (e_i - p)^2) / wsum^2``, expanded in the four
        moments (``e_i`` is binary, so ``sum(w^2 e^2) == esq``).
        """
        if mode == "ht":
            n = self.shots
            if n <= 1:
                return float("inf")
            p = self.esum / n
            return max(0.0, (self.esq - n * p * p)) / (n * (n - 1))
        if mode == "sn":
            if self.wsum <= 0:
                return float("inf")
            p = self.esum / self.wsum
            num = self.esq * (1.0 - 2.0 * p) + p * p * self.wsq
            return max(0.0, num) / (self.wsum * self.wsum)
        raise ValueError(f"unknown estimator mode {mode!r}")

    def delta_interval(self, z: float = 1.96, mode: str = "sn"
                       ) -> Tuple[float, float]:
        """Normal interval ``estimate ± z * sqrt(variance)``, clipped."""
        p = self.estimate(mode)
        var = self.variance(mode)
        if not math.isfinite(var):
            return (0.0, 1.0)
        half = z * math.sqrt(var)
        return (max(0.0, p - half), min(1.0, p + half))

    @property
    def design_ess(self) -> float:
        """Design-effect effective sample size ``p (1 - p) / Var`` of
        the self-normalized estimate (== ``shots`` at unit weights);
        falls back to the Kish ESS while no failure has been seen."""
        p = self.estimate("sn")
        var = self.variance("sn")
        if p <= 0.0 or p >= 1.0 or var <= 0.0 \
                or not math.isfinite(var):
            return self.ess
        return p * (1.0 - p) / var

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Weighted Wilson interval: the self-normalized rate over the
        design-effect effective sample size (reduces to the classic
        interval at unit weights)."""
        return wilson_from_rate(self.estimate("sn"), self.design_ess, z)

    def rel_halfwidth(self, z: float = 1.96) -> float:
        """Wilson half-width relative to the weighted rate (the
        adaptive stopping statistic); ``inf`` until the rate is
        positive."""
        p = self.estimate("sn")
        if p <= 0.0:
            return float("inf")
        lo, hi = self.wilson_interval(z)
        return (hi - lo) / (2.0 * p)


def required_shots(variance_per_shot: float, rate: float,
                   rel_halfwidth: float, z: float = 1.96) -> float:
    """Shots needed for a ``± rel_halfwidth * rate`` normal interval
    given the per-shot variance of the estimator's iid terms."""
    if rate <= 0.0 or variance_per_shot <= 0.0:
        return float("inf")
    target = rel_halfwidth * rate
    return z * z * variance_per_shot / (target * target)


def mc_required_shots(rate: float, rel_halfwidth: float,
                      z: float = 1.96) -> float:
    """Plain-Monte-Carlo shots for the same target: the Bernoulli
    variance ``p (1 - p)`` per shot."""
    return required_shots(rate * (1.0 - rate), rate, rel_halfwidth, z)


def variance_reduction_factor(stats: WeightStats, rel_halfwidth: float,
                              z: float = 1.96, mode: str = "ht") -> float:
    """How many times fewer shots the weighted estimator needs than
    plain MC to reach the same relative CI target at the measured rate.

    Both shot requirements are evaluated analytically from the same
    run's moments (running the actual multi-million-shot MC comparison
    would defeat the point), so the factor is a per-shot variance
    ratio: ``p(1-p) / Var_1[estimator]``.
    """
    p = stats.estimate(mode)
    if p <= 0.0:
        return 0.0
    per_shot = stats.variance(mode) * stats.shots
    need = required_shots(per_shot, p, rel_halfwidth, z)
    mc = mc_required_shots(p, rel_halfwidth, z)
    if not math.isfinite(need) or need <= 0.0:
        return 0.0
    return mc / need
