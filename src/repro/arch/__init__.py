"""Quantum-device architecture graphs (paper §V-D / Fig. 8)."""

from .graph import ArchitectureGraph
from .library import (
    REGISTRY,
    almaden,
    brooklyn,
    by_name,
    cairo,
    cambridge,
    complete,
    heavy_hex,
    johannesburg,
    linear,
    mesh,
)

__all__ = [
    "ArchitectureGraph",
    "REGISTRY",
    "by_name",
    "linear",
    "mesh",
    "complete",
    "almaden",
    "johannesburg",
    "cairo",
    "cambridge",
    "brooklyn",
    "heavy_hex",
]
