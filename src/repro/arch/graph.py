"""Architecture (coupling) graphs.

The paper models a quantum chip as an undirected *architecture graph*
whose nodes are physical qubits and whose unit-weight edges are the
allowed two-qubit interactions (§III-B).  Radiation spreads along graph
distance; the transpiler must respect adjacency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


class ArchitectureGraph:
    """An undirected unit-weight coupling graph over physical qubits.

    Parameters
    ----------
    edges:
        Iterable of ``(a, b)`` pairs.
    num_qubits:
        Number of physical qubits; inferred from the edges when omitted.
    name:
        Human-readable identifier (used in reports).
    positions:
        Optional ``{qubit: (x, y)}`` layout hints for rendering.
    """

    def __init__(self, edges: Iterable[Tuple[int, int]],
                 num_qubits: Optional[int] = None, name: str = "",
                 positions: Optional[Dict[int, Tuple[float, float]]] = None
                 ) -> None:
        g = nx.Graph()
        edges = [(int(a), int(b)) for a, b in edges]
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
        if num_qubits is None:
            num_qubits = max((max(a, b) for a, b in edges), default=-1) + 1
        g.add_nodes_from(range(int(num_qubits)))
        g.add_edges_from(edges)
        self.graph = g
        self.name = name
        self.positions = dict(positions) if positions else None
        self._dist_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def edges(self) -> List[Tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges()]

    def neighbors(self, q: int) -> List[int]:
        return sorted(self.graph.neighbors(q))

    def degree(self, q: int) -> int:
        return self.graph.degree[q]

    def average_degree(self) -> float:
        n = self.num_qubits
        return 2.0 * self.num_edges / n if n else 0.0

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph) if self.num_qubits else False

    def has_edge(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    # ------------------------------------------------------------------
    # Distances (unit edge weights, per the paper)
    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path matrix; ``inf`` for disconnected pairs."""
        if self._dist_cache is None:
            n = self.num_qubits
            m = np.full((n, n), np.inf)
            for src, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for dst, d in lengths.items():
                    m[src, dst] = d
            self._dist_cache = m
        return self._dist_cache

    def distance(self, a: int, b: int) -> float:
        return float(self.distance_matrix()[a, b])

    def distances_from(self, root: int) -> Dict[int, float]:
        """Graph distance from ``root`` to every reachable qubit."""
        row = self.distance_matrix()[root]
        return {q: float(row[q]) for q in range(self.num_qubits)
                if np.isfinite(row[q])}

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph, a, b)

    def diameter(self) -> int:
        if not self.is_connected():
            raise ValueError("diameter undefined for disconnected graph")
        return int(nx.diameter(self.graph))

    # ------------------------------------------------------------------
    # Connected-subgraph sampling (Fig. 6/7 "hypernodes")
    # ------------------------------------------------------------------
    def sample_connected_subgraph(self, size: int,
                                  rng: np.random.Generator,
                                  seed_qubit: Optional[int] = None
                                  ) -> Tuple[int, ...]:
        """Sample one connected vertex set of ``size`` qubits by random
        BFS growth from a (random) seed qubit."""
        if not 1 <= size <= self.num_qubits:
            raise ValueError(f"bad subgraph size {size}")
        if seed_qubit is None:
            seed_qubit = int(rng.integers(self.num_qubits))
        chosen = {seed_qubit}
        frontier = set(self.graph.neighbors(seed_qubit))
        while len(chosen) < size:
            frontier -= chosen
            if not frontier:
                raise ValueError(
                    f"component around {seed_qubit} smaller than {size}")
            pick = int(rng.choice(sorted(frontier)))
            chosen.add(pick)
            frontier |= set(self.graph.neighbors(pick))
        return tuple(sorted(chosen))

    def sample_connected_subgraphs(self, size: int, count: int,
                                   rng: np.random.Generator
                                   ) -> List[Tuple[int, ...]]:
        """Sample up to ``count`` *distinct* connected subgraphs."""
        seen = set()
        out: List[Tuple[int, ...]] = []
        attempts = 0
        while len(out) < count and attempts < 50 * count:
            attempts += 1
            try:
                sub = self.sample_connected_subgraph(size, rng)
            except ValueError:
                continue
            if sub not in seen:
                seen.add(sub)
                out.append(sub)
        return out

    # ------------------------------------------------------------------
    def subgraph(self, qubits: Sequence[int], name: str = "") -> "ArchitectureGraph":
        """Induced subgraph relabelled to 0..k-1 (sorted order)."""
        qubits = sorted(int(q) for q in qubits)
        remap = {q: i for i, q in enumerate(qubits)}
        edges = [(remap[a], remap[b]) for a, b in self.graph.edges()
                 if a in remap and b in remap]
        return ArchitectureGraph(edges, num_qubits=len(qubits),
                                 name=name or f"{self.name}[{len(qubits)}]")

    def __repr__(self) -> str:
        return (f"ArchitectureGraph({self.name!r}, qubits={self.num_qubits}, "
                f"edges={self.num_edges})")
