"""Library of architecture graphs used in the paper's Fig. 8.

Includes the synthetic topologies (linear, mesh, complete) plus
redrawings of the IBM device coupling maps the paper pulls from Qiskit:
Almaden, Johannesburg (20-qubit grid family), Cairo (27-qubit
heavy-hex), Cambridge (28-qubit hex ring) and Brooklyn (65-qubit
heavy-square/Hummingbird).  The Falcon (Cairo) and 20-qubit maps follow
the published coupling lists; Cambridge and Brooklyn are generated from
the same brick pattern IBM uses and may differ from the production
devices in a few edges — the degree distribution and diameter, which
drive the paper's Observation VIII, are preserved (see DESIGN.md §1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import ArchitectureGraph


def linear(num_qubits: int) -> ArchitectureGraph:
    """A 1-D chain: qubit i connected to i+1."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    pos = {i: (float(i), 0.0) for i in range(num_qubits)}
    return ArchitectureGraph(edges, num_qubits, name=f"linear-{num_qubits}",
                             positions=pos)


def mesh(rows: int, cols: int) -> ArchitectureGraph:
    """A ``rows x cols`` 2-D lattice (the paper's default is 5x6)."""
    def idx(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
    pos = {idx(r, c): (float(c), float(-r)) for r in range(rows)
           for c in range(cols)}
    return ArchitectureGraph(edges, rows * cols, name=f"mesh-{rows}x{cols}",
                             positions=pos)


def complete(num_qubits: int) -> ArchitectureGraph:
    """All-to-all connectivity (upper bound on routing freedom)."""
    edges = [(i, j) for i in range(num_qubits)
             for j in range(i + 1, num_qubits)]
    return ArchitectureGraph(edges, num_qubits, name=f"complete-{num_qubits}")


# ----------------------------------------------------------------------
# 20-qubit grid family (Almaden / Johannesburg)
# ----------------------------------------------------------------------

def almaden() -> ArchitectureGraph:
    """IBM Almaden: 4x5 grid with alternating vertical rungs."""
    rows = [(0, 1), (1, 2), (2, 3), (3, 4),
            (5, 6), (6, 7), (7, 8), (8, 9),
            (10, 11), (11, 12), (12, 13), (13, 14),
            (15, 16), (16, 17), (17, 18), (18, 19)]
    rungs = [(1, 6), (3, 8), (5, 10), (7, 12), (9, 14), (11, 16), (13, 18)]
    pos = {i: (float(i % 5), float(-(i // 5))) for i in range(20)}
    return ArchitectureGraph(rows + rungs, 20, name="almaden", positions=pos)


def johannesburg() -> ArchitectureGraph:
    """IBM Johannesburg: 4x5 grid with edge + centre rungs."""
    rows = [(0, 1), (1, 2), (2, 3), (3, 4),
            (5, 6), (6, 7), (7, 8), (8, 9),
            (10, 11), (11, 12), (12, 13), (13, 14),
            (15, 16), (16, 17), (17, 18), (18, 19)]
    rungs = [(0, 5), (4, 9), (5, 10), (9, 14), (10, 15), (14, 19), (7, 12)]
    pos = {i: (float(i % 5), float(-(i // 5))) for i in range(20)}
    return ArchitectureGraph(rows + rungs, 20, name="johannesburg",
                             positions=pos)


# ----------------------------------------------------------------------
# 27-qubit heavy-hex (Cairo / Falcon family)
# ----------------------------------------------------------------------

def cairo() -> ArchitectureGraph:
    """IBM Cairo (Falcon r5): the 27-qubit heavy-hex coupling map."""
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 5), (1, 4), (4, 7), (5, 8),
        (6, 7), (7, 10), (8, 9), (8, 11), (10, 12), (11, 14),
        (12, 13), (12, 15), (13, 14), (14, 16), (15, 18), (16, 19),
        (17, 18), (18, 21), (19, 20), (19, 22), (21, 23), (22, 25),
        (23, 24), (24, 25), (25, 26),
    ]
    return ArchitectureGraph(edges, 27, name="cairo")


# ----------------------------------------------------------------------
# Brick-pattern lattices (Hummingbird / hex families)
# ----------------------------------------------------------------------

def brooklyn() -> ArchitectureGraph:
    """IBM Brooklyn-like 65-qubit Hummingbird heavy-square lattice.

    Five rows of 10/11 qubits with staggered vertical connectors at
    columns (0, 4, 8) and (2, 6, 10).  Qubit count matches the real
    device; see module docstring for the approximation caveat.
    """
    edges: List[Tuple[int, int]] = []
    # Explicit construction: rows of 10, connectors alternate.
    rows: List[List[int]] = []
    nid = 0
    row_sizes = [10, 10, 10, 10, 10]
    conn_cols = [(0, 4, 8), (2, 6, 9), (0, 4, 8), (2, 6, 9)]
    for size in row_sizes:
        rows.append(list(range(nid, nid + size)))
        nid += size
    conns: List[int] = []
    for ri, cols in enumerate(conn_cols):
        for col in cols:
            conns.append(nid)
            edges.append((rows[ri][col], nid))
            edges.append((nid, rows[ri + 1][col]))
            nid += 1
    for ids in rows:
        edges.extend((ids[i], ids[i + 1]) for i in range(len(ids) - 1))
    # 50 row qubits + 12 connectors = 62; pad to 65 with a short tail
    # chain like the device's irregular edge columns.
    tail_anchor = rows[-1][-1]
    for _ in range(3):
        edges.append((tail_anchor, nid))
        tail_anchor = nid
        nid += 1
    return ArchitectureGraph(edges, nid, name="brooklyn")


def cambridge() -> ArchitectureGraph:
    """IBM Cambridge-like 28-qubit hexagonal-ring lattice.

    Three rows of 7 qubits joined by connector qubits at the row ends
    and centre, giving the low-degree hex rings of the real device.
    """
    rows: List[List[int]] = []
    nid = 0
    for _ in range(3):
        rows.append(list(range(nid, nid + 7)))
        nid += 7
    edges: List[Tuple[int, int]] = []
    for ids in rows:
        edges.extend((ids[i], ids[i + 1]) for i in range(6))
    conn_cols = [(0, 3, 6), (1, 5)]
    for ri, cols in enumerate(conn_cols):
        for col in cols:
            edges.append((rows[ri][col], nid))
            edges.append((nid, rows[ri + 1][col]))
            nid += 1
    # 21 + 5 connectors = 26; two extra boundary qubits as on the device.
    edges.append((rows[0][0], nid)); nid += 1
    edges.append((rows[2][6], nid)); nid += 1
    return ArchitectureGraph(edges, nid, name="cambridge")


def heavy_hex(distance: int) -> ArchitectureGraph:
    """Generic heavy-hexagon lattice for a distance-``d`` layout.

    Produces the IBM heavy-hex pattern: ``d`` rows of ``2d - 1`` qubits
    with degree-2 connector qubits between rows at alternating columns.
    """
    if distance < 2:
        raise ValueError("distance must be >= 2")
    row_len = 2 * distance - 1
    rows: List[List[int]] = []
    nid = 0
    for _ in range(distance):
        rows.append(list(range(nid, nid + row_len)))
        nid += row_len
    edges: List[Tuple[int, int]] = []
    for ids in rows:
        edges.extend((ids[i], ids[i + 1]) for i in range(row_len - 1))
    for ri in range(distance - 1):
        start = 0 if ri % 2 == 0 else 2
        for col in range(start, row_len, 4):
            edges.append((rows[ri][col], nid))
            edges.append((nid, rows[ri + 1][col]))
            nid += 1
    return ArchitectureGraph(edges, nid, name=f"heavy-hex-{distance}")


#: Registry used by the CLI and the Fig. 8 experiment.
REGISTRY = {
    "linear": linear,
    "mesh": mesh,
    "complete": complete,
    "almaden": almaden,
    "johannesburg": johannesburg,
    "cairo": cairo,
    "cambridge": cambridge,
    "brooklyn": brooklyn,
    "heavy_hex": heavy_hex,
}


def by_name(name: str, *args) -> ArchitectureGraph:
    """Instantiate a registered architecture by name."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}; "
                       f"known: {sorted(REGISTRY)}") from None
    return factory(*args)
