"""Logical-layer fault propagation analysis (paper §VI future work).

Runs a logical circuit under :class:`LogicalFaultChannel` noise and
quantifies output corruption: the total-variation distance between the
ideal and faulty output distributions, and the per-qubit criticality
ranking ("identify the critical logical shifts for a given circuit").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits import Circuit
from ..noise import NoiseModel, run_batch_noisy
from .channel import LogicalFaultChannel


def output_distribution(records: np.ndarray) -> Dict[str, float]:
    """Empirical bit-string distribution from a record array."""
    B = records.shape[0]
    strings, counts = np.unique(records, axis=0, return_counts=True)
    return {"".join(str(int(b)) for b in row): c / B
            for row, c in zip(strings, counts)}


def total_variation(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Total-variation distance between two output distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


@dataclass
class LogicalImpact:
    """Result of one logical-layer injection study."""

    ideal: Dict[str, float]
    faulty: Dict[str, float]
    tv_distance: float
    shots: int

    def top_outcomes(self, n: int = 4) -> List[Tuple[str, float, float]]:
        """(bitstring, ideal prob, faulty prob) for the n likeliest."""
        keys = sorted(set(self.ideal) | set(self.faulty),
                      key=lambda k: -(self.ideal.get(k, 0.0)
                                      + self.faulty.get(k, 0.0)))
        return [(k, self.ideal.get(k, 0.0), self.faulty.get(k, 0.0))
                for k in keys[:n]]


def logical_fault_injection(circuit: Circuit,
                            rates: Union[Mapping[int, float],
                                         Sequence[float]],
                            shots: int = 4000,
                            rng: Optional[int] = 0) -> LogicalImpact:
    """Compare ideal vs faulty output distributions of a logical circuit.

    Parameters
    ----------
    circuit:
        A circuit over *logical* qubits (same IR as physical circuits).
    rates:
        Post-QEC logical error rate per logical qubit — the output of a
        physical-layer campaign.
    shots, rng:
        Sampling budget and seed (both runs use matched budgets).
    """
    ideal_rec = run_batch_noisy(circuit, None, shots, rng=rng)
    noise = NoiseModel([LogicalFaultChannel(rates)])
    faulty_rec = run_batch_noisy(circuit, noise, shots,
                                 rng=None if rng is None else rng + 1)
    ideal = output_distribution(ideal_rec)
    faulty = output_distribution(faulty_rec)
    return LogicalImpact(ideal=ideal, faulty=faulty,
                         tv_distance=total_variation(ideal, faulty),
                         shots=shots)


def criticality_ranking(circuit: Circuit, base_rate: float,
                        struck_rate: float, shots: int = 3000,
                        rng: int = 0) -> List[Dict[str, object]]:
    """Rank logical qubits by output damage when each hosts the strike.

    Every logical qubit in turn receives ``struck_rate`` (the post-QEC
    LER of a radiation-struck code patch) while the others keep
    ``base_rate``; the row order answers the paper's question of which
    logical shifts are critical for the circuit.
    """
    rows = []
    for victim in range(circuit.num_qubits):
        rates = {q: base_rate for q in range(circuit.num_qubits)}
        rates[victim] = struck_rate
        impact = logical_fault_injection(circuit, rates, shots=shots,
                                         rng=rng + victim)
        rows.append({"struck_logical_qubit": victim,
                     "tv_distance": impact.tv_distance})
    rows.sort(key=lambda r: -float(r["tv_distance"]))
    return rows
