"""Logical-layer fault channels.

The paper's future-work direction (§VI): take the *post-QEC logical
error rates* measured by the physical-layer campaigns and propagate them
into circuits built from logical (encoded) qubits.  At this layer each
logical qubit is one IR qubit, and a decoding failure manifests as a
logical bit-flip with the campaign-measured probability.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..circuits import Gate, GateType
from ..noise.base import NoiseChannel
from ..stabilizer.batch import BatchTableauSimulator
from ..stabilizer.simulator import TableauSimulator


class LogicalFaultChannel(NoiseChannel):
    """Per-logical-qubit bit-flip channel parameterised by post-QEC LER.

    Parameters
    ----------
    rates:
        ``{logical qubit: error probability per logical operation}`` or
        a vector.  Probabilities typically come from
        :class:`~repro.injection.results.InjectionResult`
        ``logical_error_rate`` values — e.g. the qubit hosting a
        radiation strike inherits the struck code's LER while the others
        keep the intrinsic-noise baseline.
    phase_rates:
        Optional per-qubit logical phase-flip (Z) probabilities; the
        Z-basis memory campaigns of the paper measure bit-flips, so this
        defaults to zero.
    """

    def __init__(self, rates: Union[Mapping[int, float], Sequence[float]],
                 phase_rates: Optional[Union[Mapping[int, float],
                                             Sequence[float]]] = None
                 ) -> None:
        self.rates = self._to_dict(rates)
        self.phase_rates = self._to_dict(phase_rates or {})
        for p in list(self.rates.values()) + list(self.phase_rates.values()):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"rate {p} is not a probability")

    @staticmethod
    def _to_dict(rates) -> Dict[int, float]:
        if isinstance(rates, Mapping):
            return {int(q): float(p) for q, p in rates.items()}
        return {q: float(p) for q, p in enumerate(rates)}

    def triggers_on(self, gate: Gate) -> bool:
        if gate.gate_type is GateType.BARRIER:
            return False
        return any(self.rates.get(q, 0.0) > 0.0
                   or self.phase_rates.get(q, 0.0) > 0.0
                   for q in gate.qubits)

    def apply_batch(self, gate: Gate, sim: BatchTableauSimulator,
                    rng: np.random.Generator) -> None:
        B = sim.batch_size
        for q in gate.qubits:
            px = self.rates.get(q, 0.0)
            if px > 0.0:
                mask = rng.random(B) < px
                if mask.any():
                    sim.x_gate(q, mask)
            pz = self.phase_rates.get(q, 0.0)
            if pz > 0.0:
                mask = rng.random(B) < pz
                if mask.any():
                    sim.z_gate(q, mask)

    def apply_single(self, gate: Gate, sim: TableauSimulator,
                     rng: np.random.Generator) -> None:
        for q in gate.qubits:
            if rng.random() < self.rates.get(q, 0.0):
                sim.tableau.x_gate(q)
            if rng.random() < self.phase_rates.get(q, 0.0):
                sim.tableau.z_gate(q)

    def __repr__(self) -> str:
        hot = {q: round(p, 4) for q, p in self.rates.items() if p > 0}
        return f"LogicalFaultChannel({hot})"
