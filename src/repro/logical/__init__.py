"""Post-QEC logical-layer fault injection (paper §VI future work).

Bridges the physical-layer campaigns to algorithm-level impact: the
logical error rates measured under radiation become per-logical-qubit
fault probabilities in circuits built from encoded qubits.
"""

from .channel import LogicalFaultChannel
from .propagate import (
    LogicalImpact,
    criticality_ranking,
    logical_fault_injection,
    output_distribution,
    total_variation,
)

__all__ = [
    "LogicalFaultChannel",
    "LogicalImpact",
    "logical_fault_injection",
    "criticality_ranking",
    "output_distribution",
    "total_variation",
]
