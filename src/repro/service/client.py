"""Stdlib HTTP client for the campaign service.

Backs ``repro submit`` / ``repro status`` and the pull runner; tests
use it to drive a real server end-to-end.  One request, one JSON
response — mirrors the server's ``Connection: close`` protocol, so a
plain :mod:`urllib.request` round trip per call is the whole client.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Mapping, Optional


class ServiceError(RuntimeError):
    """A service-level failure: HTTP error status or unreachable host."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Typed wrapper over the service's JSON endpoints."""

    def __init__(self, base_url: str, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            raise ServiceError(
                str(payload.get("error",
                                f"HTTP {exc.code} from {path}")),
                status=exc.code, payload=payload) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}") from exc

    # -- client surface ------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def submit(self, spec: Mapping[str, Any]) -> Dict[str, object]:
        return self._request("POST", "/submit", {"spec": dict(spec)})

    def status(self, job: Optional[str] = None) -> Dict[str, object]:
        if job is None:
            return self._request("GET", "/status")
        return self._request("GET", f"/jobs/{job}")

    def stream(self, job: str, interval_s: float = 0.5,
               timeout_s: float = 300.0
               ) -> Iterator[Dict[str, object]]:
        """``GET /jobs/<id>?stream=1``: yield newline-delimited JSON
        progress snapshots until the server closes the stream (final
        record carries ``"final": true`` plus results).

        The per-read socket timeout doubles as a stall detector —
        a healthy stream emits every ``interval_s``.
        """
        url = (f"{self.base_url}/jobs/{job}?stream=1"
               f"&interval={interval_s:g}")
        req = urllib.request.Request(
            url, headers={"Accept": "application/x-ndjson"})
        try:
            with urllib.request.urlopen(
                    req, timeout=max(self.timeout_s,
                                     interval_s * 4)) as resp:
                deadline = time.monotonic() + timeout_s
                for line in resp:
                    if time.monotonic() >= deadline:
                        raise ServiceError(
                            f"job {job} still streaming after "
                            f"{timeout_s:g}s")
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError as exc:
                        raise ServiceError(
                            f"bad stream record: {exc}") from exc
        except urllib.error.HTTPError as exc:
            raise ServiceError(f"HTTP {exc.code} from stream",
                               status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}") from exc

    def wait(self, job: str, timeout_s: float = 300.0,
             poll_s: float = 0.2, stream: bool = True,
             on_progress=None) -> Dict[str, object]:
        """Follow one job to completion; returns its final status.

        Prefers the held-open streaming endpoint (no polling); if the
        stream ends without a final record — an old server that
        ignores ``?stream=1`` answers once and closes — falls back to
        the polling loop.  ``on_progress`` (if given) receives every
        intermediate status snapshot.
        """
        if stream:
            for status in self.stream(job, interval_s=poll_s,
                                      timeout_s=timeout_s):
                if "error" in status:
                    raise ServiceError(str(status["error"]))
                if status.get("final") \
                        or status.get("state") == "done":
                    return status
                if on_progress is not None:
                    on_progress(status)
            # Stream closed with no final record (an old server
            # answered the path once and hung up): poll instead.
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job)
            if status.get("state") == "done":
                return status
            if on_progress is not None:
                on_progress(status)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job} still running after {timeout_s:g}s "
                    f"({status.get('shots_done')}/"
                    f"{status.get('shots_target')} shots)")
            time.sleep(poll_s)

    def lookup(self, spec: Optional[Mapping[str, Any]] = None,
               key: Optional[str] = None) -> List[Dict[str, object]]:
        body: Dict[str, Any] = {}
        if spec is not None:
            body["spec"] = dict(spec)
        if key is not None:
            body["key"] = key
        rows = self._request("POST", "/lookup", body).get("rows", [])
        return list(rows)

    def store_stats(self) -> Dict[str, object]:
        return self._request("GET", "/store")

    def metrics(self) -> Dict[str, object]:
        """The merged registry snapshot (JSON rendering of /metrics)."""
        return self._request("GET", "/metrics?format=json")

    def metrics_text(self) -> str:
        """The Prometheus text rendering of /metrics."""
        req = urllib.request.Request(
            self.base_url + "/metrics?format=text",
            headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout_s) as resp:
                return resp.read().decode()
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}") from exc

    def trace(self, job: str) -> Dict[str, object]:
        """The causally-linked span tree for one job."""
        return self._request("GET", f"/jobs/{job}/trace")

    # -- runner surface ------------------------------------------------
    def lease(self, runner: str = "remote", max_leases: int = 1,
              ttl_s: Optional[float] = None
              ) -> List[Dict[str, object]]:
        body: Dict[str, Any] = {"runner": runner, "max": max_leases}
        if ttl_s is not None:
            body["ttl_s"] = ttl_s
        return list(self._request("POST", "/lease",
                                  body).get("leases", []))

    def complete(self, lease: str, chunks: List[Mapping[str, Any]],
                 runner: Optional[str] = None,
                 key: Optional[str] = None,
                 spans: Optional[List[Mapping[str, Any]]] = None,
                 obs_snapshot: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, object]:
        body: Dict[str, Any] = {"lease": lease,
                                "chunks": [dict(c) for c in chunks]}
        if runner is not None:
            body["runner"] = runner
        if key is not None:
            body["key"] = key
        if spans:
            body["spans"] = [dict(s) for s in spans]
        if obs_snapshot:
            body["obs"] = dict(obs_snapshot)
        return self._request("POST", "/complete", body)

    def fail(self, lease: str, error: str = "",
             runner: Optional[str] = None) -> Dict[str, object]:
        body: Dict[str, Any] = {"lease": lease, "error": error}
        if runner is not None:
            body["runner"] = runner
        return self._request("POST", "/fail", body)
