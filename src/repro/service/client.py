"""Stdlib HTTP client for the campaign service.

Backs ``repro submit`` / ``repro status`` and the pull runner; tests
use it to drive a real server end-to-end.  One request, one JSON
response — mirrors the server's ``Connection: close`` protocol, so a
plain :mod:`urllib.request` round trip per call is the whole client.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional


class ServiceError(RuntimeError):
    """A service-level failure: HTTP error status or unreachable host."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Typed wrapper over the service's JSON endpoints."""

    def __init__(self, base_url: str, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            raise ServiceError(
                str(payload.get("error",
                                f"HTTP {exc.code} from {path}")),
                status=exc.code, payload=payload) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}") from exc

    # -- client surface ------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def submit(self, spec: Mapping[str, Any]) -> Dict[str, object]:
        return self._request("POST", "/submit", {"spec": dict(spec)})

    def status(self, job: Optional[str] = None) -> Dict[str, object]:
        if job is None:
            return self._request("GET", "/status")
        return self._request("GET", f"/jobs/{job}")

    def wait(self, job: str, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> Dict[str, object]:
        """Poll one job to completion; returns its final status."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job)
            if status.get("state") == "done":
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job} still running after {timeout_s:g}s "
                    f"({status.get('shots_done')}/"
                    f"{status.get('shots_target')} shots)")
            time.sleep(poll_s)

    def lookup(self, spec: Optional[Mapping[str, Any]] = None,
               key: Optional[str] = None) -> List[Dict[str, object]]:
        body: Dict[str, Any] = {}
        if spec is not None:
            body["spec"] = dict(spec)
        if key is not None:
            body["key"] = key
        rows = self._request("POST", "/lookup", body).get("rows", [])
        return list(rows)

    def store_stats(self) -> Dict[str, object]:
        return self._request("GET", "/store")

    # -- runner surface ------------------------------------------------
    def lease(self, runner: str = "remote", max_leases: int = 1,
              ttl_s: Optional[float] = None
              ) -> List[Dict[str, object]]:
        body: Dict[str, Any] = {"runner": runner, "max": max_leases}
        if ttl_s is not None:
            body["ttl_s"] = ttl_s
        return list(self._request("POST", "/lease",
                                  body).get("leases", []))

    def complete(self, lease: str, chunks: List[Mapping[str, Any]],
                 runner: Optional[str] = None,
                 key: Optional[str] = None) -> Dict[str, object]:
        body: Dict[str, Any] = {"lease": lease,
                                "chunks": [dict(c) for c in chunks]}
        if runner is not None:
            body["runner"] = runner
        if key is not None:
            body["key"] = key
        return self._request("POST", "/complete", body)

    def fail(self, lease: str, error: str = "",
             runner: Optional[str] = None) -> Dict[str, object]:
        body: Dict[str, Any] = {"lease": lease, "error": error}
        if runner is not None:
            body["runner"] = runner
        return self._request("POST", "/fail", body)
