"""Campaign-as-a-service: async dispatch front end + result cache.

The ROADMAP's "millions of users" rung: most real traffic asks for the
same popular ``(code, d, p, fault, decoder, sampler)`` points over and
over, and the engine's determinism work makes a cached answer exactly
as trustworthy as a fresh simulation.  The service therefore treats a
shared content-addressed :class:`~repro.injection.store.CampaignStore`
as the system of record and simulates **only on cache miss**:

* :mod:`repro.service.dispatcher` — the synchronous core: canonicalise
  each sweep point to its task key, split traffic into cache hits
  (served from the store, including partial results for in-progress
  points), coalesced submissions (identical concurrent requests share
  one in-flight computation) and fresh work (block-aligned slice
  leases with crash-expiry requeue).
* :mod:`repro.service.server` — the asyncio JSON-over-HTTP front end
  (stdlib only) plus the in-process local runner pool.
* :mod:`repro.service.runner` — the pull-based runner loop: a second
  host leases slices over the same HTTP API and returns store-shard
  chunk rows for absorption (``repro serve --runner URL``).
* :mod:`repro.service.client` — the stdlib HTTP client behind
  ``repro submit`` / ``repro status`` (and the runner).
* :mod:`repro.service.fleet` — ``repro fleet URL...``: poll several
  heads' ``/status`` + ``/metrics`` and fold them into one report.

Every dispatch topology — in-process pool, remote runners, or a plain
``repro campaign`` against the same store — produces bit-identical
counts: slices are canonical-block aligned, so a chunk's counts are a
pure function of ``(task, start, shots)`` no matter who ran it.
Observability rides the same wire: leases carry deterministic span
contexts (:mod:`repro.obs.trace`), completions carry span summaries
and runner registry snapshots, and ``GET /metrics`` serves the merged
view in Prometheus text or JSON.
"""

from .dispatcher import Dispatcher, DispatchError, UnknownJobError
from .client import ServiceClient, ServiceError
from .fleet import fleet_overview, fleet_report, render_fleet
from .server import CampaignService

__all__ = [
    "CampaignService",
    "Dispatcher",
    "DispatchError",
    "ServiceClient",
    "ServiceError",
    "UnknownJobError",
    "fleet_overview",
    "fleet_report",
    "render_fleet",
]
