"""The service core: content-addressed cache front + slice dispatch.

The dispatcher is deliberately synchronous and single-threaded: every
method is called from the server's event loop (or directly from tests),
so its state transitions are atomic by construction — a slice completes
and its chunk lands in the shared :class:`~repro.injection.store.
CampaignStore` in one indivisible step, and two identical submissions
racing each other can never both miss the in-flight table.

Traffic splits three ways at submit time, per point:

``cache hit``
    The store already holds a completed result with at least the
    requested budget — served without simulating anything.
``coalesced``
    The point is already in flight (another job asked for the same
    task key); the new job subscribes to the existing computation
    instead of duplicating it.
``fresh``
    Remaining shots (the store's resumable partial prefix is banked
    first, so even a half-finished point never re-simulates) are
    partitioned into block-aligned slice leases that local pool
    workers and remote pull runners drain through one API.

Leases carry a deadline: a runner that crashes mid-slice simply never
completes it, the lease expires, and the slice is requeued — canonical
block seeding makes the re-run bit-identical, so crash recovery never
perturbs counts.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from .. import obs
from ..obs import trace
from ..injection.campaign import DEFAULT_CHUNK_SHOTS, _assemble, \
    _normalize_chunk
from ..injection.results import ChunkResult, InjectionResult, \
    normalize_prior
from ..injection.spec import InjectionTask, task_from_dict
from ..injection.store import CampaignStore, canonical_task, task_key
from ..injection.sweep import build_sweep
from ..parallel.plan import plan_leases

#: Default lease time-to-live: a slice not completed (or failed) this
#: many seconds after leasing is presumed lost to a runner crash and
#: requeued.
DEFAULT_LEASE_TTL_S = 120.0

#: Service metric handles (cached once; obs.reset zeroes in place).
_OBS_JOBS = obs.counter("service.jobs")
_OBS_POINTS = obs.counter("service.points")
_OBS_CACHE_HITS = obs.counter("service.cache_hits")
_OBS_COALESCED = obs.counter("service.coalesced")
_OBS_LEASES = obs.counter("service.leases")
_OBS_SLICES = obs.counter("service.slices_completed")
_OBS_POINTS_DONE = obs.counter("service.points_done")
_OBS_JOBS_DONE = obs.counter("service.jobs_done")
_OBS_CRASHES = obs.counter("service.runner_crashes")
_OBS_FAILED = obs.counter("service.failed_leases")

#: Bucket edges (seconds) for the per-runner lease histograms: the
#: short end resolves thread-pool slices, the long end TTL requeues.
LEASE_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                10.0, 30.0, 60.0, 120.0)


def _lease_hist(kind: str, runner: str):
    """The per-runner lease histogram ``service.lease_<kind>_s`` with
    the runner id folded into the name (``/runner=<id>``) — the
    registry stays label-free and the Prometheus renderer splits the
    convention back into a real label."""
    return obs.registry().histogram(
        f"service.lease_{kind}_s/runner={runner}", LEASE_BOUNDS)


class DispatchError(ValueError):
    """A malformed request (bad spec, unknown lease) — client error."""


class UnknownJobError(KeyError):
    """Status query for a job id this service never issued."""


@dataclass
class Lease:
    """One outstanding slice lease."""

    lease_id: str
    key: str
    task: InjectionTask
    start: int
    shots: int
    runner: str
    deadline: float
    #: Span context shipped on the wire (``None`` = tracing off).
    trace: Optional[trace.TraceContext] = None
    #: When the lease was handed out / when its slice was queued
    #: (monotonic) — the run-time and queue-time histogram inputs.
    t_leased: float = 0.0
    t_queued: float = 0.0

    def to_wire(self) -> Dict[str, object]:
        """The JSON form shipped to pull runners: the canonical task
        dict (key-stable under :func:`~repro.injection.spec.
        task_from_dict`) plus the slice coordinates and span context."""
        wire: Dict[str, object] = {
            "lease": self.lease_id,
            "key": self.key,
            "task": canonical_task(self.task),
            "start": self.start,
            "shots": self.shots,
        }
        if self.trace is not None:
            wire["trace"] = self.trace.to_wire()
        return wire


class PointState:
    """One in-flight campaign point: slice queue + contiguous frontier.

    The service twin of :class:`repro.parallel.plan.TaskPlan`, minus
    adaptive stopping (service jobs run their spec's fixed budget —
    which is what makes a cached result reusable by *every* later
    request for the same key).  Out-of-order slice completions park in
    ``_completed`` until the frontier reaches them, so the weight-fold
    order — and therefore every weighted count — matches a serial run
    exactly.
    """

    def __init__(self, key: str, task: InjectionTask, prior: Tuple,
                 slice_shots: int,
                 ctx: Optional[trace.TraceContext] = None) -> None:
        self.key = key
        self.task = task
        #: The creating job's point span context — leases derive from
        #: it, so span ids are stable across dispatch topologies.
        self.ctx = ctx
        self.created = time.time()
        #: Per-slice enqueue time (monotonic), refreshed on requeue —
        #: feeds the queue-time histogram at lease handout.
        self.queued_at: Dict[int, float] = {}
        (self.shots, self.errors, self.raw_errors, self.corrections,
         self.elapsed_s, self.chunks, weights) = normalize_prior(prior)
        self.weighted = task.sampler.weighted
        self.weights = (weights or (0.0, 0.0, 0.0, 0.0)) \
            if self.weighted else None
        self.target = task.shots
        self.pending: Deque[Tuple[int, int]] = deque(
            (lease.start, lease.shots) for lease in plan_leases(
                0, self.shots, self.target, slice_shots, None, task.shots))
        now = time.monotonic()
        for start, _ in self.pending:
            self.queued_at[start] = now
        #: Completed-but-not-yet-contiguous chunks, keyed by start.
        self._completed: Dict[int, ChunkResult] = {}
        #: Starts currently leased out (requeue bookkeeping).
        self.leased: Dict[int, str] = {}
        #: Job ids subscribed to this computation.
        self.jobs: set = set()

    @property
    def done(self) -> bool:
        return self.shots >= self.target

    def record(self, chunk: ChunkResult) -> bool:
        """Bank one completed slice; ``True`` if it was new.

        Duplicates (an expired lease completed late, a crash re-run)
        and already-banked ranges are discarded, keeping counts a
        function of the canonical prefix alone.
        """
        self.leased.pop(chunk.start, None)
        if chunk.start in self._completed or chunk.start < self.shots \
                or chunk.start >= self.target:
            return False
        self._completed[chunk.start] = chunk
        while self.shots in self._completed:
            nxt = self._completed.pop(self.shots)
            self.shots = nxt.end
            self.errors += nxt.errors
            self.raw_errors += nxt.raw_errors
            self.corrections += nxt.corrections_applied
            self.elapsed_s += nxt.elapsed_s
            self.chunks += 1
            if self.weighted:
                self.weights = nxt.fold_weights(self.weights)
        return True

    def requeue(self, start: int, shots: int) -> None:
        """Return an expired/failed lease's slice to the front of the
        queue (front-first keeps the frontier contiguous)."""
        self.leased.pop(start, None)
        if start >= self.shots and start not in self._completed:
            self.pending.appendleft((start, shots))
            self.queued_at[start] = time.monotonic()

    def result(self) -> InjectionResult:
        return _assemble(self.task, self.shots, self.errors,
                         self.raw_errors, self.corrections,
                         self.elapsed_s, self.chunks,
                         self.weights if self.weighted else None)

    def row(self) -> Dict[str, object]:
        """Progress row for status responses (partial results included:
        a client polling an in-progress point sees live counts)."""
        row: Dict[str, object] = {
            "key": self.key, "label": self.task.label,
            "status": "running" if (self.leased or self.shots) else
            "queued",
            "shots": self.shots, "target": self.target,
            "errors": self.errors,
        }
        if self.shots:
            from ..injection.results import wilson_interval

            lo, hi = wilson_interval(self.errors, self.shots)
            row["ler"] = self.errors / self.shots
            row["ler_lo"] = lo
            row["ler_hi"] = hi
        return row


class Job:
    """One submitted sweep: an ordered list of points and their
    submit-time classification."""

    def __init__(self, job_id: str, tasks: List[InjectionTask],
                 keys: List[str]) -> None:
        self.job_id = job_id
        self.tasks = tasks
        self.keys = keys
        self.created = time.time()
        #: Root span context (``None`` with tracing disabled).  The
        #: trace id is a pure function of (job id, point keys), so the
        #: same submission order yields the same trace on every head
        #: and every dispatch topology.
        self.ctx: Optional[trace.TraceContext] = None
        if trace.is_enabled():
            trace_id = trace.derive_id(job_id, *keys)
            self.ctx = trace.TraceContext(
                trace_id, trace.derive_id(trace_id, "job"))
        self.cache_hits = 0
        self.coalesced = 0
        self.fresh = 0
        #: Keys whose computation this job still waits on.
        self.pending: set = set()

    @property
    def trace_id(self) -> Optional[str]:
        return self.ctx.trace_id if self.ctx is not None else None

    @property
    def done(self) -> bool:
        return not self.pending


class Dispatcher:
    """Canonicalise, dedupe, cache-check and dispatch sweep traffic.

    Single-threaded by contract: the HTTP server calls every method on
    its event loop; tests call them directly.  The shared store is the
    durable system of record — jobs are in-memory session objects, but
    every completed chunk and point survives a service restart.
    """

    def __init__(self, store: CampaignStore,
                 slice_shots: Optional[int] = None,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S) -> None:
        self.store = store
        self.slice_shots = _normalize_chunk(
            DEFAULT_CHUNK_SHOTS if slice_shots is None else slice_shots)
        self.lease_ttl_s = float(lease_ttl_s)
        #: In-flight points by task key (insertion order = dispatch
        #: order; completed points leave the table).
        self.points: Dict[str, PointState] = {}
        self.jobs: Dict[str, Job] = {}
        self._leases: Dict[str, Lease] = {}
        self._job_seq = itertools.count(1)
        self._lease_seq = itertools.count(1)
        #: Fresh-work progress (banked-prefix shots vs. targets of
        #: every point the service ever queued; cache hits excluded —
        #: they are not work).
        self._shots_done = 0
        self._shots_target = 0
        #: Completed spans by trace id (idempotent absorb by span id).
        self.traces = trace.TraceStore()
        #: Runner health: ``id → {last_seen, leases, completed,
        #: failed, expired, lost}``; ``lost`` flips on a TTL expiry
        #: with no other lease outstanding and clears on next contact.
        self.runners: Dict[str, Dict[str, object]] = {}
        #: Latest cumulative registry snapshot per remote runner /
        #: pool worker, merged by replacement (each is cumulative for
        #: its process, so replacement is idempotent like counters).
        self._runner_snaps: Dict[str, Dict[str, object]] = {}

    # -- submission ----------------------------------------------------
    def submit(self, spec: Mapping[str, Any]) -> Dict[str, object]:
        """Accept one sweep spec; classify every point; queue fresh work.

        Returns the submit receipt: job id plus the cache-hit /
        coalesced / fresh split — a client that sees ``fresh == 0`` and
        ``coalesced == 0`` knows its answer never touched a simulator.
        """
        try:
            campaign = build_sweep(spec)
            tasks = campaign._seeded()
        except (KeyError, TypeError, ValueError) as exc:
            raise DispatchError(f"bad sweep spec: {exc}") from exc
        job_id = f"job-{next(self._job_seq)}"
        keys = [task_key(t) for t in tasks]
        job = Job(job_id, tasks, keys)
        for task, key in zip(tasks, keys):
            point_ctx = job.ctx.child("point", key) \
                if job.ctx is not None else None
            if key in self.points:
                job.coalesced += 1
                _OBS_COALESCED.inc()
                self.points[key].jobs.add(job_id)
                job.pending.add(key)
                continue
            banked = self.store.result_for(task)
            if banked is not None and banked.shots >= task.shots:
                job.cache_hits += 1
                _OBS_CACHE_HITS.inc()
                if point_ctx is not None:
                    self.traces.absorb([trace.make_span(
                        point_ctx, "point", 0.0, key=key,
                        cache_hit=True)])
                continue
            job.fresh += 1
            point = PointState(key, task, self.store.partial(key),
                               self.slice_shots, ctx=point_ctx)
            point.jobs.add(job_id)
            self.points[key] = point
            job.pending.add(key)
            _OBS_POINTS.inc()
            self._shots_done += point.shots
            self._shots_target += point.target
        self.jobs[job_id] = job
        _OBS_JOBS.inc()
        if job.done:
            _OBS_JOBS_DONE.inc()
            self._record_job_span(job)
        obs.event("service.job_submitted",
                  f"{job_id}: {len(tasks)} point(s), "
                  f"{job.cache_hits} cached, {job.coalesced} coalesced, "
                  f"{job.fresh} fresh", job=job_id)
        return self._receipt(job)

    def _receipt(self, job: Job) -> Dict[str, object]:
        receipt: Dict[str, object] = {
            "job": job.job_id,
            "points": len(job.tasks),
            "cache_hits": job.cache_hits,
            "coalesced": job.coalesced,
            "fresh": job.fresh,
            "state": "done" if job.done else "running",
        }
        if job.trace_id is not None:
            receipt["trace"] = job.trace_id
        return receipt

    def _record_job_span(self, job: Job) -> None:
        if job.ctx is not None:
            self.traces.absorb([trace.make_span(
                job.ctx, "job", time.time() - job.created,
                t0=job.created, job=job.job_id, points=len(job.tasks))])

    # -- status / results ----------------------------------------------
    def job_status(self, job_id: str,
                   include_results: bool = True) -> Dict[str, object]:
        """Live status of one job, with partial per-point progress and
        — once complete — the full result rows, straight from the
        content-addressed store."""
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        status = self._receipt(job)
        status["created"] = job.created
        rows: List[Dict[str, object]] = []
        shots_done = shots_target = 0
        results: List[Dict[str, object]] = []
        for task, key in zip(job.tasks, job.keys):
            point = self.points.get(key)
            if point is not None:
                rows.append(point.row())
                shots_done += point.shots
                shots_target += point.target
                continue
            shots_target += task.shots
            result = self.store.result_for(task)
            if result is not None:
                shots_done += task.shots
                row = result.to_row()
                row["key"] = key
                if include_results:
                    results.append(row)
                rows.append({"key": key, "label": task.label,
                             "status": "done", "shots": result.shots,
                             "target": task.shots,
                             "errors": result.errors,
                             "ler": result.logical_error_rate})
            else:
                # Finalized while this status call iterated?  Cannot
                # happen single-threaded; a missing record means the
                # store was swapped out from under the service.
                rows.append({"key": key, "label": task.label,
                             "status": "absent"})
        status["points_done"] = sum(1 for r in rows
                                    if r.get("status") == "done")
        status["shots_done"] = shots_done
        status["shots_target"] = shots_target
        status["tasks"] = rows
        if job.done and include_results:
            status["results"] = results
        status["telemetry"] = self._job_telemetry()
        return status

    def _job_telemetry(self) -> Dict[str, object]:
        """The engine-counter snapshot slice a polling client cares
        about (per-process; the local pool's thread executor keeps
        these in the service process)."""
        snap = obs.registry().snapshot()
        counters = snap.get("counters", {})
        keep = {k: v for k, v in counters.items()
                if k.startswith(("engine.", "service.", "decode."))}
        return {"counters": keep, "uptime_s": snap.get("uptime_s")}

    def overview(self) -> Dict[str, object]:
        """Service-level status (``repro status`` with no job)."""
        return {
            "jobs": len(self.jobs),
            "jobs_running": sum(1 for j in self.jobs.values()
                                if not j.done),
            "points_inflight": len(self.points),
            "slices_pending": sum(len(p.pending)
                                  for p in self.points.values()),
            "leases_outstanding": len(self._leases),
            "store": self.store.path,
            "store_done": len(self.store),
            "counters": self.service_counters(),
            "job_ids": sorted(self.jobs,
                              key=lambda j: int(j.split("-")[1])),
            "runners": {rid: dict(h)
                        for rid, h in sorted(self.runners.items())},
            "progress": self.progress(),
        }

    def service_counters(self) -> Dict[str, int]:
        return {
            "jobs": _OBS_JOBS.value,
            "jobs_done": _OBS_JOBS_DONE.value,
            "points": _OBS_POINTS.value,
            "points_done": _OBS_POINTS_DONE.value,
            "cache_hits": _OBS_CACHE_HITS.value,
            "coalesced": _OBS_COALESCED.value,
            "leases": _OBS_LEASES.value,
            "slices_completed": _OBS_SLICES.value,
            "runner_crashes": _OBS_CRASHES.value,
            "failed_leases": _OBS_FAILED.value,
        }

    def progress(self) -> Dict[str, int]:
        """Fresh-work progress in the telemetry snapshot's ``progress``
        shape, so ``repro report`` renders service files unchanged."""
        return {
            "points_done": _OBS_POINTS_DONE.value,
            "points_total": _OBS_POINTS.value,
            "shots_done": self._shots_done,
            "shots_target": self._shots_target,
        }

    # -- lookup --------------------------------------------------------
    def lookup(self, spec: Optional[Mapping[str, Any]] = None,
               key: Optional[str] = None) -> List[Dict[str, object]]:
        """The cache-hit path as a read-only query: rows for a sweep
        spec's points (seeded exactly as a submission would be) or for
        a key prefix.  In-flight points report live partial counts."""
        rows: List[Dict[str, object]] = []
        if spec is not None:
            try:
                tasks = build_sweep(spec)._seeded()
            except (KeyError, TypeError, ValueError) as exc:
                raise DispatchError(f"bad sweep spec: {exc}") from exc
            for task in tasks:
                k = task_key(task)
                point = self.points.get(k)
                if point is not None:
                    row = point.row()
                    row["status"] = "in-flight"
                    rows.append(row)
                else:
                    rows.append(self.store.lookup(task))
        elif key is not None:
            for k in self.store.find_keys(str(key)):
                rows.append(self.store.key_stats(k))
            for k, point in self.points.items():
                if k.startswith(str(key)) \
                        and all(r["key"] != k for r in rows):
                    row = point.row()
                    row["status"] = "in-flight"
                    rows.append(row)
        else:
            raise DispatchError("lookup needs a sweep spec or a key "
                                "prefix")
        return rows

    # -- lease / complete (runner API) ---------------------------------
    def lease(self, runner: str = "anonymous", max_leases: int = 1,
              ttl_s: Optional[float] = None,
              now: Optional[float] = None) -> List[Lease]:
        """Hand out up to ``max_leases`` pending slices, oldest point
        first (so one submission's points finish roughly in order)."""
        now = time.monotonic() if now is None else now
        self.expire(now)
        ttl = self.lease_ttl_s if ttl_s is None else float(ttl_s)
        health = self._touch_runner(str(runner))
        out: List[Lease] = []
        for point in self.points.values():
            while point.pending and len(out) < max_leases:
                start, shots = point.pending.popleft()
                lease = Lease(
                    lease_id=f"L{next(self._lease_seq)}-{point.key[:8]}",
                    key=point.key, task=point.task, start=start,
                    shots=shots, runner=str(runner),
                    deadline=now + ttl,
                    trace=point.ctx.child("lease", start)
                    if point.ctx is not None else None,
                    t_leased=now,
                    t_queued=point.queued_at.pop(start, now))
                point.leased[start] = lease.lease_id
                self._leases[lease.lease_id] = lease
                _OBS_LEASES.inc()
                health["leases"] = int(health["leases"]) + 1
                _lease_hist("queue", lease.runner).observe(
                    max(0.0, now - lease.t_queued))
                out.append(lease)
            if len(out) >= max_leases:
                break
        return out

    def _touch_runner(self, runner: str) -> Dict[str, object]:
        """Record contact from a runner (lease / complete / fail); a
        runner marked lost by TTL expiry comes back alive here."""
        health = self.runners.get(runner)
        if health is None:
            health = self.runners[runner] = {
                "leases": 0, "completed": 0, "failed": 0,
                "expired": 0, "lost": False}
        elif health["lost"]:
            health["lost"] = False
            obs.event("service.runner_recovered",
                      f"runner {runner} is back", runner=runner)
        health["last_seen"] = time.time()
        return health

    def complete(self, lease_id: str,
                 chunk_rows: List[Mapping[str, Any]],
                 runner: Optional[str] = None,
                 key: Optional[str] = None,
                 spans: Optional[List[Mapping[str, Any]]] = None,
                 obs_snapshot: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, object]:
        """Absorb a finished slice's chunk rows into the store.

        Idempotent and late-arrival tolerant: a lease that already
        expired (its slice requeued, possibly re-run elsewhere) still
        has its bit-identical chunks accepted — matched by the payload
        ``key`` — if they cover new ground, and discarded silently
        otherwise.  Acceptance and the store append happen in one
        synchronous step — the "atomic absorb" contract: a chunk is
        either fully banked (frontier + JSONL) or not at all.

        ``spans`` (completed span summaries from the executing
        process) merge idempotently by span id — a requeued re-run
        derives the same ids, so duplicates collapse.
        ``obs_snapshot`` (a remote runner's cumulative registry
        snapshot) replaces that runner's previous one.
        """
        if spans:
            self.traces.absorb(spans)
        lease = self._leases.pop(lease_id, None)
        runner_id = lease.runner if lease is not None else runner
        if runner_id:
            health = self._touch_runner(str(runner_id))
            health["completed"] = int(health["completed"]) + 1
            if obs_snapshot:
                self._runner_snaps[str(runner_id)] = dict(obs_snapshot)
        if lease is not None:
            now = time.monotonic()
            _lease_hist("run", lease.runner).observe(
                max(0.0, now - lease.t_leased))
            _lease_hist("latency", lease.runner).observe(
                max(0.0, now - lease.t_queued))
        point_key = lease.key if lease is not None else key
        point = self.points.get(point_key) if point_key else None
        if point is None:
            # Unknown lease and no in-flight point: a typo, or a very
            # late completion of an already-finalized point.  Nothing
            # to absorb into — report staleness, not an error.
            return {"ok": True, "stale": True, "accepted": 0,
                    "point_done": point_key is not None
                    and point_key in self.store.keys()}
        accepted = 0
        try:
            chunks = [ChunkResult.from_row(dict(row))
                      for row in chunk_rows]
        except (KeyError, TypeError, ValueError) as exc:
            raise DispatchError(f"malformed chunk row: {exc}") from exc
        frontier = point.shots
        for chunk in chunks:
            if point.record(chunk):
                self.store.append_chunk(point.key, chunk)
                accepted += 1
        self._shots_done += point.shots - frontier
        _OBS_SLICES.inc()
        if point.done:
            self._finalize(point)
        return {"ok": True, "accepted": accepted,
                "point_done": point.done}

    def fail(self, lease_id: str, error: str = "") -> Dict[str, object]:
        """A runner reports it could not execute a slice: requeue it
        (another runner — or the local pool — picks it up)."""
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return {"ok": True, "stale": True}
        health = self._touch_runner(lease.runner)
        health["failed"] = int(health["failed"]) + 1
        _OBS_FAILED.inc()
        obs.event("service.lease_failed",
                  f"lease {lease_id} failed on {lease.runner}: {error}",
                  lease=lease_id, runner=lease.runner)
        point = self.points.get(lease.key)
        if point is not None:
            point.requeue(lease.start, lease.shots)
        return {"ok": True, "requeued": point is not None}

    def expire(self, now: Optional[float] = None) -> int:
        """Requeue every lease past its deadline (runner crash path)."""
        now = time.monotonic() if now is None else now
        expired = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in expired:
            del self._leases[lease.lease_id]
            _OBS_CRASHES.inc()
            obs.event("service.lease_expired",
                      f"lease {lease.lease_id} ({lease.runner}) expired; "
                      f"slice requeued", lease=lease.lease_id,
                      runner=lease.runner)
            point = self.points.get(lease.key)
            if point is not None:
                point.requeue(lease.start, lease.shots)
            health = self.runners.get(lease.runner)
            if health is not None:
                health["expired"] = int(health["expired"]) + 1
                # Every lease gone and the last contact was the
                # expiry: presume the runner itself crashed (once per
                # transition — churn shows in `repro report`).
                outstanding = any(l.runner == lease.runner
                                  for l in self._leases.values())
                if not outstanding and not health["lost"]:
                    health["lost"] = True
                    obs.event("service.runner_lost",
                              f"runner {lease.runner} presumed lost "
                              f"(lease {lease.lease_id} expired with "
                              f"none outstanding)", runner=lease.runner)
        return len(expired)

    def has_work(self) -> bool:
        return any(point.pending for point in self.points.values())

    # -- completion ----------------------------------------------------
    def _finalize(self, point: PointState) -> None:
        result = point.result()
        self.store.mark_done(point.key, result)
        del self.points[point.key]
        _OBS_POINTS_DONE.inc()
        point_dur = time.time() - point.created
        for job_id in point.jobs:
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.ctx is not None:
                # Each subscriber's trace gets its own point span
                # (coalesced jobs included); the lease/phase children
                # hang off the creating job's span.
                ctx = job.ctx.child("point", point.key)
                self.traces.absorb([trace.make_span(
                    ctx, "point", point_dur, t0=point.created,
                    key=point.key, shots=point.shots,
                    coalesced=ctx != point.ctx)])
            job.pending.discard(point.key)
            if job.done:
                _OBS_JOBS_DONE.inc()
                obs.event("service.job_done", f"{job_id} complete",
                          job=job_id)
                self._record_job_span(job)

    # -- observability ------------------------------------------------
    def job_trace(self, job_id: str) -> Dict[str, object]:
        """The causally-linked span tree for one job (parents before
        children; spans from remote runners included once their
        completions have been absorbed)."""
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        if job.trace_id is None:
            return {"job": job_id, "trace": None, "spans": []}
        return {"job": job_id, "trace": job.trace_id,
                "spans": self.traces.spans(job.trace_id)}

    def metrics_snapshot(self) -> Dict[str, object]:
        """The head's registry merged with every remote runner's /
        pool worker's latest cumulative snapshot — the `/metrics`
        scrape body (JSON form; the Prometheus rendering is
        :func:`repro.obs.metrics.render_prometheus` of this)."""
        snap = obs.merge_snapshots(obs.registry().snapshot(),
                                   list(self._runner_snaps.values()))
        profile = obs.prof.snapshot_active()
        if profile is not None:
            snap["profile"] = profile
        return snap


def execute_lease_wire(lease: Mapping[str, Any],
                       ship_obs: bool = False) -> Dict[str, object]:
    """Execute one wire-form lease (runner side): rebuild the task from
    its canonical dict, run the slice through the engine's canonical
    block stream, and return the completion payload.

    If the lease carries a span context it is rehydrated here and the
    lease span (with engine phase deltas as children and the chunk as
    a grandchild) is recorded and drained into the payload — tracing
    never touches the engine itself, so counts stay bit-identical.

    ``ship_obs=True`` attaches this process's cumulative registry
    snapshot (remote runners and forked pool workers only — the
    in-process thread pool shares the head's registry and must *not*
    re-ship it, or every counter would double).
    """
    from ..parallel.worker import execute_lease

    task = task_from_dict(lease["task"])
    start, shots = int(lease["start"]), int(lease["shots"])
    ctx = trace.from_wire(lease.get("trace"))
    with trace.span(ctx, "lease", here=True, phases=True,
                    key=str(lease["key"])[:16], start=start) as lctx:
        with trace.span(lctx, "chunk", start, shots=shots):
            chunk = execute_lease(task, start, shots)
    payload: Dict[str, object] = {
        "lease": lease["lease"], "key": lease["key"],
        "chunks": [chunk.to_row()]}
    if ctx is not None:
        payload["spans"] = trace.drain()
    if ship_obs:
        payload["obs"] = obs.registry().snapshot()
    return payload
