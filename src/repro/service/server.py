"""The asyncio JSON-over-HTTP front end and local runner pool.

Stdlib only: the server speaks a deliberately small HTTP/1.1 subset
over :mod:`asyncio` streams (one JSON request, one JSON response,
``Connection: close``) — enough for ``curl``, :class:`~repro.service.
client.ServiceClient` and pull runners, with zero dependencies.

All dispatcher state lives on the event-loop thread: request handlers
and the local pump both mutate it via plain synchronous calls from
coroutines, so no locks are needed and the coalescing / cache-split
decisions are race-free by construction.  Only slice *execution* —
the actual simulation — leaves the loop, via an executor:

* ``workers <= 1`` (default): a single-thread executor.  Simulation
  happens in the service process, so the ``engine.*`` obs counters a
  client polls are live — this is also what lets the test suite prove
  a resubmission simulated **zero** new shots.
* ``workers > 1``: a fork-based process pool, one slice per worker at
  a time, same topology as ``Campaign.run(workers=N)``.

Either way the counts are bit-identical: slices are canonical-block
aligned, so the executor choice only changes wall-clock.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple, Union

from .. import obs
from ..injection.store import CampaignStore
from ..obs.sinks import TelemetryWriter
from .dispatcher import Dispatcher, DispatchError, UnknownJobError

#: How often the housekeeping task expires stale leases and (when
#: telemetry is on) writes a snapshot record.
HOUSEKEEP_S = 1.0
#: Local pump idle backoff when the queue is empty.
PUMP_IDLE_S = 0.05
#: Cap on accepted request bodies (a sweep spec is tiny; chunk-row
#: completions are bounded by slices, not shots).
MAX_BODY = 8 * 1024 * 1024
#: Default emit interval for streaming job-progress responses.
STREAM_INTERVAL_S = 0.5

#: True in forked pool children only (set by the pool initializer):
#: they carry their own registry, so their slices must ship snapshots
#: back; the in-process thread pool shares the head's registry and
#: must not (every counter would double on merge).
_FORKED = False


def _execute_slice(wire: Dict[str, object]) -> Dict[str, object]:
    """Executor entry point (thread or forked process)."""
    from .dispatcher import execute_lease_wire

    return execute_lease_wire(wire, ship_obs=_FORKED)


def _worker_init() -> None:
    """Forked pool children get a clean worker-local registry."""
    global _FORKED
    _FORKED = True
    obs.reset()


class _BadRequest(Exception):
    """Malformed HTTP request (line, headers, or body)."""


class CampaignService:
    """One service instance: HTTP listener + dispatcher + local pump.

    ``port=0`` binds an ephemeral port (tests); the bound port is on
    :attr:`port` after :meth:`start`.  ``workers=0`` disables the local
    pump entirely — the service becomes a pure dispatch head served
    only by remote pull runners.
    """

    def __init__(self, store: Union[CampaignStore, str],
                 host: str = "127.0.0.1", port: int = 8765,
                 workers: int = 1,
                 slice_shots: Optional[int] = None,
                 lease_ttl_s: Optional[float] = None,
                 telemetry: Optional[str] = None) -> None:
        self.store = store if isinstance(store, CampaignStore) \
            else CampaignStore(store)
        kwargs: Dict[str, Any] = {"slice_shots": slice_shots}
        if lease_ttl_s is not None:
            kwargs["lease_ttl_s"] = lease_ttl_s
        self.dispatcher = Dispatcher(self.store, **kwargs)
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.telemetry_path = telemetry
        self._writer: Optional[TelemetryWriter] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[Executor] = None
        self._tasks: list = []
        self._stopping = False
        self._started = time.perf_counter()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started = time.perf_counter()
        if self.telemetry_path:
            self._writer = TelemetryWriter(self.telemetry_path)
        if self.workers > 1:
            import multiprocessing as mp

            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp.get_context("fork"),
                initializer=_worker_init)
        elif self.workers == 1:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-slice")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for slot in range(max(self.workers, 0)):
            self._tasks.append(
                asyncio.ensure_future(self._pump(slot)))
        self._tasks.append(asyncio.ensure_future(self._housekeeping()))
        obs.event("service.started",
                  f"listening on {self.url} "
                  f"({self.workers} local worker(s))", url=self.url)

    async def stop(self) -> None:
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._writer is not None:
            self._writer.write(self._snapshot_record(final=True))
            self._writer.close()
            self._writer = None
        self.store.close()
        obs.event("service.stopped", "service shut down")

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # Background-thread lifecycle (tests, CI smoke assertions from the
    # same process).
    def start_background(self, timeout_s: float = 15.0) -> str:
        """Run the service on a dedicated event-loop thread; returns
        the base URL once the port is bound."""
        ready = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._bg_loop = loop
            loop.run_until_complete(self.start())
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError("service failed to start")
        return self.url

    def stop_background(self, timeout_s: float = 15.0) -> None:
        loop = getattr(self, "_bg_loop", None)
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.stop(), loop) \
            .result(timeout_s)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    # -- local pump ----------------------------------------------------
    async def _pump(self, slot: int) -> None:
        """One local worker slot: lease → execute (off-loop) → absorb.

        The executor call is the only non-loop work; lease and complete
        run on the loop, so the pump and remote runners contend for
        slices through exactly the same dispatcher API.
        """
        loop = asyncio.get_running_loop()
        runner = f"local-{slot}"
        while not self._stopping:
            leases = self.dispatcher.lease(runner=runner, max_leases=1)
            if not leases:
                await asyncio.sleep(PUMP_IDLE_S)
                continue
            lease = leases[0]
            wire = lease.to_wire()
            try:
                payload = await loop.run_in_executor(
                    self._executor, _execute_slice, wire)
            except asyncio.CancelledError:
                self.dispatcher.fail(lease.lease_id, "pump cancelled")
                raise
            except Exception as exc:  # noqa: BLE001 — requeue, keep serving
                self.dispatcher.fail(lease.lease_id, repr(exc))
                obs.event("service.local_slice_error", repr(exc),
                          lease=lease.lease_id)
                await asyncio.sleep(PUMP_IDLE_S)
                continue
            self.dispatcher.complete(payload["lease"],
                                     payload["chunks"], runner=runner,
                                     key=payload.get("key"),
                                     spans=payload.get("spans"),
                                     obs_snapshot=payload.get("obs"))

    async def _housekeeping(self) -> None:
        while not self._stopping:
            await asyncio.sleep(HOUSEKEEP_S)
            self.dispatcher.expire()
            if self._writer is not None:
                self._writer.write(self._snapshot_record())

    def _snapshot_record(self, final: bool = False) -> Dict[str, object]:
        """A ``repro report``-compatible snapshot: the registry dump
        plus service progress/counters.  No ``final`` flag until the
        service actually stops — long-lived service telemetry is the
        in-progress-report case by design."""
        rec = dict(self.dispatcher.metrics_snapshot())
        rec["kind"] = "snapshot"
        rec["elapsed_s"] = round(time.perf_counter() - self._started, 3)
        rec["progress"] = self.dispatcher.progress()
        rec["service"] = self.dispatcher.service_counters()
        rec["service"]["jobs_total"] = len(self.dispatcher.jobs)
        if self.dispatcher.runners:
            rec["runners"] = {rid: dict(h) for rid, h
                              in self.dispatcher.runners.items()}
        if final:
            rec["final"] = True
        return rec

    # -- HTTP ----------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, accept, body = \
                await self._read_request(reader)
        except _BadRequest as exc:
            await self._write_json(writer, 400, {"error": str(exc)})
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 — surface as HTTP 500
            await self._write_json(writer, 500, {"error": repr(exc)})
            return
        try:
            if method == "GET" and path.startswith("/jobs/") \
                    and query.get("stream") in ("1", "true", "yes"):
                await self._stream_job(writer, path[len("/jobs/"):],
                                       query)
                return
            if method == "GET" and path == "/metrics":
                snap = self.dispatcher.metrics_snapshot()
                fmt = query.get("format") or (
                    "json" if "application/json" in accept else "text")
                if fmt == "json":
                    await self._write_json(writer, 200, snap)
                else:
                    await self._write_text(
                        writer, 200, obs.render_prometheus(snap))
                return
            status, payload = self._route(method, path, body)
        except DispatchError as exc:
            status, payload = 400, {"error": str(exc)}
        except UnknownJobError as exc:
            status, payload = 404, {"error": f"unknown job "
                                    f"{exc.args[0]!r}"}
        except Exception as exc:  # noqa: BLE001 — surface as HTTP 500
            status, payload = 500, {"error": repr(exc)}
        await self._write_json(writer, status, payload)

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, str], str,
                                       Dict[str, Any]]:
        """Parse one request into (method, path, query, accept, body).

        Raises :class:`_BadRequest` on anything malformed; connection
        errors propagate to the caller.
        """
        request = (await reader.readline()).decode("latin-1").strip()
        if not request:
            raise _BadRequest("empty request")
        try:
            method, target, _ = request.split(None, 2)
        except ValueError:
            raise _BadRequest(f"malformed request line {request!r}") \
                from None
        length = 0
        accept = ""
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            lname = name.strip().lower()
            if lname == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
            elif lname == "accept":
                accept = value.strip().lower()
        if length > MAX_BODY:
            raise _BadRequest("request body too large")
        body: Dict[str, Any] = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise _BadRequest(f"bad JSON body: {exc}") from None
            if not isinstance(body, dict):
                raise _BadRequest("JSON body must be an object")
        raw_path, _, raw_query = target.partition("?")
        query: Dict[str, str] = {}
        for part in raw_query.split("&"):
            if part:
                k, _, v = part.partition("=")
                query[k] = v
        path = raw_path.rstrip("/") or "/"
        return method.upper(), path, query, accept, body

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              body: bytes, content_type: str) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _write_json(self, writer: asyncio.StreamWriter,
                          status: int, payload: Dict[str, object]
                          ) -> None:
        body = json.dumps(payload, sort_keys=True,
                          default=str).encode() + b"\n"
        await self._write_response(writer, status, body,
                                   "application/json")

    async def _write_text(self, writer: asyncio.StreamWriter,
                          status: int, text: str) -> None:
        # The Prometheus text exposition content type.
        await self._write_response(
            writer, status, text.encode(),
            "text/plain; version=0.0.4; charset=utf-8")

    async def _stream_job(self, writer: asyncio.StreamWriter,
                          job_id: str, query: Dict[str, str]) -> None:
        """``GET /jobs/<id>?stream=1``: hold the response open and emit
        newline-delimited JSON progress snapshots until the job
        finishes (final record carries results and ``"final": true``).

        ``await drain()`` after every record is the backpressure
        contract — a client that stops reading stalls its own stream
        without buffering unboundedly on the head; a client that
        disconnects ends it silently (the job itself is unaffected).
        """
        try:
            interval = max(0.05, float(query.get("interval",
                                                 STREAM_INTERVAL_S)))
        except ValueError:
            interval = STREAM_INTERVAL_S
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n").encode()
        try:
            writer.write(head)
            await writer.drain()
            while True:
                try:
                    status = self.dispatcher.job_status(
                        job_id, include_results=False)
                except UnknownJobError:
                    status = {"error": f"unknown job {job_id!r}",
                              "final": True}
                done = status.get("state") == "done" \
                    or status.get("final")
                if done and "error" not in status:
                    status = self.dispatcher.job_status(job_id)
                    status["final"] = True
                writer.write(json.dumps(status, sort_keys=True,
                                        default=str).encode() + b"\n")
                await writer.drain()
                if done or self._stopping:
                    return
                await asyncio.sleep(interval)
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — already torn down
                pass

    def _route(self, method: str, path: str, body: Dict[str, Any]
               ) -> Tuple[int, Dict[str, object]]:
        d = self.dispatcher
        if path == "/health":
            return 200, {"ok": True, "store": self.store.path,
                         "workers": self.workers}
        if path == "/status" and method == "GET":
            return 200, d.overview()
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/trace"):
                return 200, d.job_trace(rest[:-len("/trace")])
            return 200, d.job_status(rest)
        if path == "/submit" and method == "POST":
            spec = body.get("spec", body)
            if not isinstance(spec, dict) or not spec:
                raise DispatchError("submit needs a sweep spec (object "
                                    "body or {\"spec\": {...}})")
            return 200, d.submit(spec)
        if path == "/lookup" and method == "POST":
            return 200, {"rows": d.lookup(spec=body.get("spec"),
                                          key=body.get("key"))}
        if path == "/store" and method == "GET":
            return 200, self.store.stats()
        if path == "/lease" and method == "POST":
            leases = d.lease(runner=str(body.get("runner", "remote")),
                             max_leases=int(body.get("max", 1)),
                             ttl_s=body.get("ttl_s"))
            return 200, {"leases": [lease.to_wire()
                                    for lease in leases]}
        if path == "/complete" and method == "POST":
            if "lease" not in body:
                raise DispatchError("complete needs a lease id")
            return 200, d.complete(str(body["lease"]),
                                   body.get("chunks", ()),
                                   runner=body.get("runner"),
                                   key=body.get("key"),
                                   spans=body.get("spans"),
                                   obs_snapshot=body.get("obs"))
        if path == "/fail" and method == "POST":
            if "lease" not in body:
                raise DispatchError("fail needs a lease id")
            return 200, d.fail(str(body["lease"]),
                               str(body.get("error", "")))
        if path in ("/status", "/submit", "/lookup", "/lease",
                    "/complete", "/fail", "/store", "/health",
                    "/metrics"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no such endpoint {path}"}
