"""Pull-based remote runner: ``repro serve --runner URL``.

A runner is the inverse of the server's local pump: it *pulls* slice
leases over the same HTTP API the pump uses in-process, executes them
through the engine's canonical block stream, and pushes the resulting
store-shard chunk rows back for atomic absorption.  Because a chunk's
counts are a pure function of ``(task, start, shots)``, a sweep
finished by three runners on three hosts is bit-identical to the same
sweep run by the dispatch head alone.

Crash semantics need no runner-side state: a runner that dies
mid-slice simply never completes its lease, the dispatch head expires
it after the TTL, and the slice is requeued for whoever leases next.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Optional

from .. import obs
from .client import ServiceClient, ServiceError
from .dispatcher import execute_lease_wire

_OBS_SLICES = obs.counter("runner.slices")
_OBS_SHOTS = obs.counter("runner.shots")
_OBS_ERRORS = obs.counter("runner.slice_errors")


def default_runner_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_runner(url: str, runner_id: Optional[str] = None,
               poll_s: float = 0.5,
               idle_timeout_s: Optional[float] = None,
               max_slices: Optional[int] = None) -> int:
    """Lease-execute-complete until idle timeout / slice budget.

    ``idle_timeout_s`` bounds how long the runner polls an empty queue
    before exiting (``None`` = poll forever); ``max_slices`` caps total
    work (tests).  Returns the number of slices completed.
    """
    client = ServiceClient(url)
    runner = runner_id or default_runner_id()
    client.health()
    obs.event("runner.started", f"runner {runner} pulling from {url}",
              runner=runner)
    done = 0
    idle_since: Optional[float] = None
    while max_slices is None or done < max_slices:
        try:
            leases = client.lease(runner=runner, max_leases=1)
        except ServiceError as exc:
            # A dispatch head mid-restart is indistinguishable from an
            # empty queue; back off rather than crash the runner.
            obs.event("runner.lease_error", str(exc), runner=runner)
            leases = []
        if not leases:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif idle_timeout_s is not None \
                    and now - idle_since >= idle_timeout_s:
                break
            time.sleep(poll_s)
            continue
        idle_since = None
        for wire in leases:
            try:
                # ship_obs: the runner is its own process, so its
                # cumulative registry snapshot rides every completion
                # and the head merges it (by replacement) into the
                # fleet-wide `/metrics` view.
                payload = execute_lease_wire(wire, ship_obs=True)
            except Exception as exc:  # noqa: BLE001 — report, keep pulling
                _OBS_ERRORS.inc()
                obs.event("runner.slice_error", repr(exc),
                          lease=wire.get("lease"), runner=runner)
                try:
                    client.fail(str(wire["lease"]), repr(exc),
                                runner=runner)
                except ServiceError:
                    pass
                continue
            client.complete(str(payload["lease"]), payload["chunks"],
                            runner=runner, key=payload.get("key"),
                            spans=payload.get("spans"),
                            obs_snapshot=payload.get("obs"))
            done += 1
            _OBS_SLICES.inc()
            _OBS_SHOTS.inc(int(wire["shots"]))
    obs.event("runner.stopped", f"runner {runner}: {done} slice(s)",
              runner=runner)
    return done
