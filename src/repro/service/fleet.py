"""Fleet view: aggregate several dispatch heads into one report.

``repro fleet URL...`` polls every head's ``/status`` and ``/metrics``
(JSON rendering — already merged with that head's remote-runner
snapshots), then folds the fleet into one summary: per-head and
aggregate shots/s, cache hit rates, in-flight leases, runner health,
and the slowest-span breakdown across every process that did work.

A head that is down is reported, not fatal — the fleet report is
exactly the tool you reach for when part of the fleet is unhealthy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.report import ascii_table
from ..obs.metrics import merge_snapshots
from .client import ServiceClient, ServiceError


def poll_head(url: str, timeout_s: float = 10.0) -> Dict[str, object]:
    """One head's ``/status`` + ``/metrics``; ``ok=False`` if down."""
    client = ServiceClient(url, timeout_s=timeout_s)
    try:
        return {"url": url, "ok": True,
                "status": client.status(),
                "metrics": client.metrics()}
    except ServiceError as exc:
        return {"url": url, "ok": False, "error": str(exc)}


def _rate(n: float, d: float) -> float:
    return n / d if d else 0.0


def _head_row(head: Dict[str, object]) -> Dict[str, object]:
    status: Dict = head["status"]
    metrics: Dict = head["metrics"]
    counters: Dict = metrics.get("counters", {})
    svc: Dict = status.get("counters", {})
    uptime = float(metrics.get("uptime_s") or 0.0)
    shots = int(counters.get("engine.shots", 0))
    hits = int(svc.get("cache_hits", 0))
    served = hits + int(svc.get("coalesced", 0)) + int(svc.get("points", 0))
    runners: Dict = status.get("runners", {})
    lost = sum(1 for h in runners.values() if h.get("lost"))
    return {
        "head": head["url"],
        "jobs": f"{svc.get('jobs_done', 0)}/{svc.get('jobs', 0)}",
        "inflight": status.get("points_inflight", 0),
        "leases": status.get("leases_outstanding", 0),
        "shots": shots,
        "shots/s": f"{_rate(shots, uptime):,.1f}",
        "cache": f"{_rate(hits, served):.1%}" if served else "-",
        "runners": f"{len(runners)}" + (f" ({lost} lost)" if lost
                                        else ""),
    }


def fleet_overview(urls: Sequence[str],
                   timeout_s: float = 10.0) -> Dict[str, object]:
    """Poll every head and fold the fleet into one structured view."""
    heads = [poll_head(url, timeout_s=timeout_s) for url in urls]
    up = [h for h in heads if h["ok"]]
    merged: Dict[str, object] = {}
    if up:
        merged = merge_snapshots(up[0]["metrics"],
                                 [h["metrics"] for h in up[1:]])
        # Heads run concurrently: fleet wall-clock is the longest
        # uptime, not the sum the counter-merge would imply.
        merged["uptime_s"] = max(float(h["metrics"].get("uptime_s")
                                       or 0.0) for h in up)
    counters: Dict = merged.get("counters", {})
    shots = int(counters.get("engine.shots", 0))
    uptime = float(merged.get("uptime_s") or 0.0)
    hits = int(counters.get("service.cache_hits", 0))
    served = hits + int(counters.get("service.coalesced", 0)) \
        + int(counters.get("service.points", 0))
    aggregate = {
        "heads_up": len(up),
        "heads_down": len(heads) - len(up),
        "jobs": int(counters.get("service.jobs", 0)),
        "jobs_done": int(counters.get("service.jobs_done", 0)),
        "points_inflight": sum(int(h["status"].get("points_inflight",
                                                   0)) for h in up),
        "leases_outstanding": sum(
            int(h["status"].get("leases_outstanding", 0)) for h in up),
        "shots": shots,
        "shots_per_s": round(_rate(shots, uptime), 1),
        "cache_hit_rate": round(_rate(hits, served), 4),
        "runners": sum(len(h["status"].get("runners", {}))
                       for h in up),
        "runners_lost": sum(
            1 for h in up
            for r in h["status"].get("runners", {}).values()
            if r.get("lost")),
    }
    return {"heads": heads, "aggregate": aggregate, "merged": merged}


def render_fleet(overview: Dict[str, object],
                 top_spans: int = 8) -> str:
    """The human-readable fleet report."""
    heads: List[Dict] = overview["heads"]
    agg: Dict = overview["aggregate"]
    merged: Dict = overview["merged"]
    lines = [f"fleet report — {agg['heads_up']}/{len(heads)} head(s) up"]
    down = [h for h in heads if not h["ok"]]
    for head in down:
        lines.append(f"  DOWN {head['url']}: {head['error']}")
    up = [h for h in heads if h["ok"]]
    if not up:
        return "\n".join(lines)
    lines.append("")
    lines.append(ascii_table([_head_row(h) for h in up],
                             title="per head"))
    lines.append("")
    lines.append("aggregate")
    lines.append("-" * len("aggregate"))
    lines.append(f"jobs      {agg['jobs_done']}/{agg['jobs']} done, "
                 f"{agg['points_inflight']} point(s) in flight, "
                 f"{agg['leases_outstanding']} lease(s) outstanding")
    lines.append(f"shots     {agg['shots']:,} sampled "
                 f"({agg['shots_per_s']:,.1f} sh/s fleet-wide)")
    lines.append(f"cache     {agg['cache_hit_rate']:.1%} hit rate")
    lines.append(f"runners   {agg['runners']} known"
                 + (f", {agg['runners_lost']} LOST"
                    if agg["runners_lost"] else ""))
    spans: Dict = merged.get("spans", {})
    if spans:
        lines.append("")
        rows = [{"phase": name, "total_s": round(st["total_s"], 3),
                 "count": st["count"],
                 "mean_ms": round(_rate(st["total_s"] * 1e3,
                                        st["count"]), 3)}
                for name, st in sorted(
                    spans.items(), key=lambda kv: -kv[1]["total_s"])
                [:top_spans]]
        lines.append(ascii_table(rows, title="slowest spans "
                                 f"(fleet-wide, top {len(rows)})"))
    return "\n".join(lines)


def fleet_report(urls: Sequence[str], timeout_s: float = 10.0,
                 top_spans: int = 8) -> str:
    """Poll + render in one call (the ``repro fleet`` body)."""
    return render_fleet(fleet_overview(urls, timeout_s=timeout_s),
                        top_spans=top_spans)
