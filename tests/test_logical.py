"""Tests for the post-QEC logical-layer fault injection (paper §VI)."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, GateType
from repro.logical import (
    LogicalFaultChannel,
    criticality_ranking,
    logical_fault_injection,
    output_distribution,
    total_variation,
)
from repro.noise import NoiseModel, run_batch_noisy


def ghz(n=3):
    c = Circuit(n)
    c.h(0)
    for i in range(n - 1):
        c.cx(i, i + 1)
    for i in range(n):
        c.measure(i, i)
    return c


class TestChannel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LogicalFaultChannel({0: 1.5})

    def test_accepts_sequence(self):
        ch = LogicalFaultChannel([0.1, 0.0, 0.2])
        assert ch.rates == {0: 0.1, 1: 0.0, 2: 0.2}

    def test_triggers_only_on_hot_qubits(self):
        ch = LogicalFaultChannel({1: 0.5})
        assert not ch.triggers_on(Gate(GateType.H, (0,)))
        assert ch.triggers_on(Gate(GateType.CX, (0, 1)))

    def test_zero_rates_never_trigger(self):
        ch = LogicalFaultChannel({0: 0.0})
        assert not ch.triggers_on(Gate(GateType.H, (0,)))

    def test_flip_statistics(self):
        circ = Circuit(1).x(0).measure(0, 0)
        noise = NoiseModel([LogicalFaultChannel({0: 0.3})])
        rec = run_batch_noisy(circ, noise, 10_000, rng=1)
        assert np.mean(rec[:, 0] == 0) == pytest.approx(0.3, abs=0.02)

    def test_phase_rates_affect_plus_state(self):
        circ = Circuit(1).h(0).h(0).measure(0, 0)
        # Z error between the Hadamards flips the outcome.
        noise = NoiseModel([LogicalFaultChannel({}, phase_rates={0: 1.0})])
        rec = run_batch_noisy(circ, noise, 200, rng=2)
        assert (rec[:, 0] == 1).all()


class TestDistributions:
    def test_output_distribution_normalised(self):
        rec = np.array([[0, 0], [0, 1], [0, 1], [1, 1]], dtype=np.uint8)
        dist = output_distribution(rec)
        assert dist == {"00": 0.25, "01": 0.5, "11": 0.25}

    def test_total_variation_bounds(self):
        p = {"0": 1.0}
        q = {"1": 1.0}
        assert total_variation(p, q) == 1.0
        assert total_variation(p, p) == 0.0

    def test_total_variation_partial(self):
        p = {"0": 0.5, "1": 0.5}
        q = {"0": 1.0}
        assert total_variation(p, q) == pytest.approx(0.5)


class TestInjection:
    def test_zero_rates_zero_distance(self):
        impact = logical_fault_injection(ghz(), {0: 0.0}, shots=800, rng=4)
        # Same sampler statistics: distance stays at sampling-noise level.
        assert impact.tv_distance < 0.08

    def test_struck_qubit_shifts_output(self):
        impact = logical_fault_injection(ghz(), {1: 0.5}, shots=3000, rng=5)
        assert impact.tv_distance > 0.2
        # GHZ ideal support is 000/111 only; faults leak elsewhere.
        leaked = sum(v for k, v in impact.faulty.items()
                     if k[:3] not in ("000", "111"))
        assert leaked > 0.1

    def test_top_outcomes(self):
        impact = logical_fault_injection(ghz(), {0: 0.2}, shots=1500, rng=6)
        top = impact.top_outcomes(2)
        assert len(top) == 2
        assert all(len(t) == 3 for t in top)

    def test_criticality_ranking_orders_by_damage(self):
        rows = criticality_ranking(ghz(), base_rate=0.001, struck_rate=0.4,
                                   shots=1500, rng=7)
        assert len(rows) == 3
        assert rows[0]["tv_distance"] >= rows[-1]["tv_distance"]
        # Every strike does measurable damage in a GHZ circuit.
        assert all(r["tv_distance"] > 0.1 for r in rows)
