"""Unit tests for the gate definitions."""

import pytest

from repro.circuits import Gate, GateType
from repro.circuits.gates import (
    SELF_INVERSE_GATES,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    UNITARY_GATES,
)


class TestGateConstruction:
    def test_single_qubit_gate(self):
        g = Gate(GateType.H, (3,))
        assert g.qubits == (3,)
        assert g.num_qubits == 1
        assert g.is_unitary

    def test_two_qubit_gate(self):
        g = Gate(GateType.CX, (0, 1))
        assert g.num_qubits == 2
        assert g.is_unitary

    def test_two_qubit_gate_rejects_single_operand(self):
        with pytest.raises(ValueError):
            Gate(GateType.CX, (0,))

    def test_two_qubit_gate_rejects_duplicate_operands(self):
        with pytest.raises(ValueError):
            Gate(GateType.CZ, (2, 2))

    def test_single_qubit_gate_rejects_two_operands(self):
        with pytest.raises(ValueError):
            Gate(GateType.H, (0, 1))

    def test_measure_requires_cbit(self):
        with pytest.raises(ValueError):
            Gate(GateType.MEASURE, (0,))

    def test_measure_with_cbit(self):
        g = Gate(GateType.MEASURE, (0,), cbit=4)
        assert g.is_measurement
        assert g.cbit == 4
        assert not g.is_unitary

    def test_non_measure_rejects_cbit(self):
        with pytest.raises(ValueError):
            Gate(GateType.X, (0,), cbit=0)

    def test_reset_flags(self):
        g = Gate(GateType.RESET, (1,))
        assert g.is_reset
        assert not g.is_unitary

    def test_barrier_accepts_many_qubits(self):
        g = Gate(GateType.BARRIER, (0, 1, 2))
        assert g.is_barrier

    def test_barrier_rejects_empty(self):
        with pytest.raises(ValueError):
            Gate(GateType.BARRIER, ())


class TestGateInverse:
    @pytest.mark.parametrize("gt", sorted(SELF_INVERSE_GATES,
                                          key=lambda g: g.value))
    def test_self_inverse(self, gt):
        qubits = (0, 1) if gt in TWO_QUBIT_GATES else (0,)
        g = Gate(gt, qubits)
        assert g.inverse() == g

    def test_s_inverse_is_sdg(self):
        assert Gate(GateType.S, (0,)).inverse().gate_type is GateType.SDG
        assert Gate(GateType.SDG, (0,)).inverse().gate_type is GateType.S

    def test_measure_has_no_inverse(self):
        with pytest.raises(ValueError):
            Gate(GateType.MEASURE, (0,), cbit=0).inverse()

    def test_reset_has_no_inverse(self):
        with pytest.raises(ValueError):
            Gate(GateType.RESET, (0,)).inverse()


class TestGateRemap:
    def test_remap_with_dict(self):
        g = Gate(GateType.CX, (0, 1)).remap({0: 5, 1: 3})
        assert g.qubits == (5, 3)

    def test_remap_with_list(self):
        g = Gate(GateType.CX, (0, 1)).remap([7, 2])
        assert g.qubits == (7, 2)

    def test_remap_preserves_cbit_and_tag(self):
        g = Gate(GateType.MEASURE, (0,), cbit=2, tag="syndrome")
        r = g.remap({0: 9})
        assert r.cbit == 2
        assert r.tag == "syndrome"


class TestGateSets:
    def test_unitary_and_nonunitary_partition(self):
        assert GateType.MEASURE not in UNITARY_GATES
        assert GateType.RESET not in UNITARY_GATES
        assert GateType.BARRIER not in UNITARY_GATES

    def test_single_two_qubit_sets_disjoint(self):
        assert not (SINGLE_QUBIT_GATES & TWO_QUBIT_GATES)

    def test_str_rendering(self):
        assert str(Gate(GateType.CX, (0, 1))) == "cx q0,1"
        assert "-> c3" in str(Gate(GateType.MEASURE, (2,), cbit=3))
