"""Tests for the command-line interface (cheap figures only)."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "injection_prob" in out
        assert "ablation" in out

    def test_sibling_csv_ignores_directory_dots(self):
        from repro.cli import _sibling_csv

        assert _sibling_csv("out.csv", "ablation") == "out.ablation.csv"
        assert _sibling_csv("run.d/fig3", "ablation") == "run.d/fig3.ablation"
        assert _sibling_csv("run.d/fig3.csv", "ablation") \
            == "run.d/fig3.ablation.csv"

    def test_fig3_csv_honored(self, capsys, tmp_path):
        """--csv must not be silently dropped for fig3 (regression):
        the sample table lands in the requested file, the ablation in a
        sibling instead of clobbering it."""
        csv_path = tmp_path / "fig3.csv"
        assert main(["fig3", "--csv", str(csv_path)]) == 0
        assert "injection_prob" in csv_path.read_text()
        ablation = tmp_path / "fig3.ablation.csv"
        assert "mean_abs_error" in ablation.read_text()

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "distance" in out

    def test_fig4_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig4.csv"
        assert main(["fig4", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "injection_prob" in csv_path.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestCampaignCommand:
    SPEC = {
        "codes": [["repetition", [3, 1]]],
        "p_values": [0.05],
        "shots": 600,
        "root_seed": 21,
    }

    def write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_runs_spec(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        csv_path = tmp_path / "out.csv"
        assert main(["campaign", spec, "--workers", "1",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "1 points, 600 shots" in out
        assert "ler" in csv_path.read_text()

    def test_j_flag_routes_to_scheduler(self, capsys, tmp_path):
        """-j 2 runs through repro.parallel with identical output."""
        spec = self.write_spec(tmp_path)
        assert main(["campaign", spec, "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["campaign", spec, "-j", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "2 worker(s)" in parallel
        # identical result table (counts are worker-count invariant)
        assert serial.splitlines()[-1] == parallel.splitlines()[-1]

    def test_store_resume(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["campaign", spec, "--workers", "1",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", spec, "--workers", "1",
                     "--store", store]) == 0
        assert "1 already complete" in capsys.readouterr().out

    def test_adaptive_reports_savings(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({**self.SPEC, "shots": 8192}))
        assert main(["campaign", str(path), "--workers", "1",
                     "--adaptive", "0.3"]) == 0
        assert "saved by early stopping" in capsys.readouterr().out

    def test_shots_override(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        assert main(["campaign", spec, "--workers", "1",
                     "--shots", "512"]) == 0
        assert "512 shots" in capsys.readouterr().out

    def test_missing_spec_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["campaign", str(tmp_path / "nope.json")])

    def test_adaptive_knobs_require_adaptive(self, tmp_path):
        """--min/--max-shots without --adaptive would be silently
        ignored; fail loudly instead."""
        spec = self.write_spec(tmp_path)
        with pytest.raises(SystemExit, match="--adaptive"):
            main(["campaign", spec, "--max-shots", "1000"])
        with pytest.raises(SystemExit, match="--adaptive"):
            main(["campaign", spec, "--min-shots", "64"])

    def test_backend_flag(self, capsys, tmp_path):
        """--backend pins every point's backend and lands in the rows."""
        spec = self.write_spec(tmp_path)
        csv_path = tmp_path / "out.csv"
        assert main(["campaign", spec, "--workers", "1",
                     "--backend", "frames", "--csv", str(csv_path)]) == 0
        assert "frames" in csv_path.read_text()
        with pytest.raises(SystemExit):
            main(["campaign", spec, "--backend", "gpu"])

    def test_backend_keeps_store_results_distinct(self, capsys, tmp_path):
        """Per-backend streams differ, so a store banked under one
        backend must not be reused by another."""
        spec = self.write_spec(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["campaign", spec, "--workers", "1", "--store", store,
                     "--backend", "frames"]) == 0
        capsys.readouterr()
        assert main(["campaign", spec, "--workers", "1", "--store", store,
                     "--backend", "tableau"]) == 0
        assert "0 already complete" in capsys.readouterr().out
        assert main(["campaign", spec, "--workers", "1", "--store", store,
                     "--backend", "frames"]) == 0
        assert "1 already complete" in capsys.readouterr().out


class TestRareCommand:
    def test_pilot_only_table(self, capsys):
        assert main(["rare", "--distance", "3", "--p", "0.002",
                     "--pilot-shots", "512", "--pilot-only"]) == 0
        out = capsys.readouterr().out
        assert "Rare-event pilot" in out
        assert "var_reduction" in out
        assert "*" in out  # one ladder rung is chosen

    def test_estimate_reports_variance_reduction(self, capsys):
        assert main(["rare", "--distance", "3", "--p", "0.004",
                     "--shots", "2048", "--pilot-shots", "512",
                     "--tilt", "4"]) == 0
        out = capsys.readouterr().out
        assert "tilted estimate" in out

    def test_campaign_sampler_override(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "codes": [["xxzz", [3, 3]]], "p_values": [0.004],
            "readout": "data", "shots": 1024}))
        assert main(["campaign", str(spec), "--workers", "1",
                     "--sampler", "tilt", "--tilt", "4"]) == 0
        out = capsys.readouterr().out
        assert "tilt:4" in out
        assert "ess" in out

    def test_tilt_requires_tilt_sampler(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "codes": [["repetition", [3, 1]]], "shots": 512}))
        with pytest.raises(SystemExit):
            main(["campaign", str(spec), "--tilt", "4"])
        with pytest.raises(SystemExit):
            main(["campaign", str(spec), "--sampler", "split",
                  "--tilt", "4"])

    def test_split_on_tableau_fails_cleanly(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "codes": [["repetition", [3, 1]]], "backend": "tableau",
            "shots": 512}))
        with pytest.raises(SystemExit) as exc:
            main(["campaign", str(spec), "--workers", "1",
                  "--sampler", "split"])
        assert "frame backend" in str(exc.value)

    def test_invalid_tilt_fails_cleanly(self, tmp_path, capsys):
        """0 < tilt < 1 exits with a CLI error, not a raw traceback."""
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "codes": [["repetition", [3, 1]]], "shots": 512}))
        with pytest.raises(SystemExit) as exc:
            main(["campaign", str(spec), "--sampler", "tilt",
                  "--tilt", "0.5"])
        assert "error:" in str(exc.value)
        with pytest.raises(SystemExit) as exc:
            main(["rare", "--tilt", "0.5", "--pilot-only"])
        assert "error:" in str(exc.value)


class TestStoreCommand:
    SPEC = TestCampaignCommand.SPEC

    def run_shard(self, tmp_path, name, shots):
        spec_path = tmp_path / f"spec-{name}.json"
        spec_path.write_text(json.dumps({**self.SPEC, "shots": shots}))
        store = str(tmp_path / name)
        assert main(["campaign", str(spec_path), "--workers", "1",
                     "--store", store]) == 0
        return store

    def test_merge_subcommand(self, capsys, tmp_path):
        a = self.run_shard(tmp_path, "a.jsonl", 512)
        b = self.run_shard(tmp_path, "b.jsonl", 1024)
        capsys.readouterr()
        out = str(tmp_path / "merged.jsonl")
        assert main(["store", "merge", out, a, b]) == 0
        msg = capsys.readouterr().out
        assert "merged 2 store(s)" in msg
        assert "2 completed points" in msg

    def test_merge_compaction_summary(self, capsys, tmp_path):
        """Sharded runs get dedup visibility: the summary reports
        shards read, records kept, duplicates dropped and malformed
        skipped."""
        a = self.run_shard(tmp_path, "a.jsonl", 512)
        with open(a, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "chunk", "shots": "no key"}\n')
        capsys.readouterr()
        out = str(tmp_path / "merged.jsonl")
        with pytest.warns(RuntimeWarning, match="malformed"):
            # the same shard twice: every record is a duplicate once
            assert main(["store", "merge", out, a, a]) == 0
        msg = capsys.readouterr().out
        assert "shards read:" in msg
        assert "records kept:" in msg
        assert "duplicates dropped:" in msg
        assert "malformed skipped:  2" in msg   # the shard is read twice

    def test_merge_quiet(self, capsys, tmp_path):
        a = self.run_shard(tmp_path, "a.jsonl", 512)
        capsys.readouterr()
        out = str(tmp_path / "merged.jsonl")
        assert main(["store", "merge", out, a, "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_merge_requires_inputs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "merge", str(tmp_path / "out.jsonl")])

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["store"])
