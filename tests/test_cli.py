"""Tests for the command-line interface (cheap figures only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "injection_prob" in out
        assert "ablation" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "distance" in out

    def test_fig4_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig4.csv"
        assert main(["fig4", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "injection_prob" in csv_path.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
