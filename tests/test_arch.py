"""Tests for architecture graphs."""

import numpy as np
import pytest

from repro.arch import (
    ArchitectureGraph,
    REGISTRY,
    almaden,
    brooklyn,
    by_name,
    cairo,
    cambridge,
    complete,
    heavy_hex,
    johannesburg,
    linear,
    mesh,
)


class TestBasicGraphs:
    def test_linear_structure(self):
        g = linear(5)
        assert g.num_qubits == 5
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_mesh_structure(self):
        g = mesh(3, 4)
        assert g.num_qubits == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2   # corner
        assert g.degree(5) == 4   # interior

    def test_complete_structure(self):
        g = complete(6)
        assert g.num_edges == 15
        assert g.diameter() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureGraph([(0, 0)])

    def test_isolated_qubits_allowed(self):
        g = ArchitectureGraph([(0, 1)], num_qubits=4)
        assert g.num_qubits == 4
        assert not g.is_connected()


class TestDeviceGraphs:
    @pytest.mark.parametrize("factory,expected_qubits", [
        (almaden, 20), (johannesburg, 20), (cairo, 27),
        (cambridge, 28), (brooklyn, 65),
    ])
    def test_device_qubit_counts(self, factory, expected_qubits):
        g = factory()
        assert g.num_qubits == expected_qubits
        assert g.is_connected()

    def test_heavy_hex_low_degree(self):
        g = heavy_hex(3)
        assert g.is_connected()
        assert max(g.degree(q) for q in range(g.num_qubits)) <= 3

    def test_heavy_hex_rejects_small(self):
        with pytest.raises(ValueError):
            heavy_hex(1)

    def test_degree_ordering_matches_families(self):
        """Mesh is better connected than the heavy-hex devices, which
        is the property Observation VIII relies on."""
        assert mesh(5, 6).average_degree() > cairo().average_degree()
        assert mesh(5, 4).average_degree() > cambridge().average_degree()
        assert complete(18).average_degree() > mesh(5, 4).average_degree()


class TestDistances:
    def test_distance_matrix_symmetric(self):
        g = mesh(3, 3)
        m = g.distance_matrix()
        np.testing.assert_array_equal(m, m.T)

    def test_manhattan_distance_on_mesh(self):
        g = mesh(3, 3)
        assert g.distance(0, 8) == 4  # corner to corner
        assert g.distance(0, 4) == 2

    def test_distances_from(self):
        g = linear(4)
        d = g.distances_from(0)
        assert d == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}

    def test_disconnected_distance_infinite(self):
        g = ArchitectureGraph([(0, 1)], num_qubits=3)
        assert np.isinf(g.distance(0, 2))
        assert 2 not in g.distances_from(0)

    def test_shortest_path_endpoints(self):
        g = mesh(2, 3)
        path = g.shortest_path(0, 5)
        assert path[0] == 0
        assert path[-1] == 5
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_diameter_linear(self):
        assert linear(7).diameter() == 6

    def test_diameter_disconnected_rejected(self):
        g = ArchitectureGraph([(0, 1)], num_qubits=3)
        with pytest.raises(ValueError):
            g.diameter()


class TestSubgraphSampling:
    def test_sampled_subgraph_is_connected(self):
        g = mesh(4, 4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            sub = g.sample_connected_subgraph(5, rng)
            assert len(sub) == 5
            induced = g.graph.subgraph(sub)
            import networkx as nx

            assert nx.is_connected(induced)

    def test_sample_size_one(self):
        g = mesh(2, 2)
        rng = np.random.default_rng(1)
        assert len(g.sample_connected_subgraph(1, rng)) == 1

    def test_sample_whole_graph(self):
        g = linear(4)
        rng = np.random.default_rng(2)
        assert g.sample_connected_subgraph(4, rng) == (0, 1, 2, 3)

    def test_oversized_sample_rejected(self):
        g = linear(3)
        with pytest.raises(ValueError):
            g.sample_connected_subgraph(4, np.random.default_rng(0))

    def test_distinct_subgraphs(self):
        g = mesh(4, 4)
        subs = g.sample_connected_subgraphs(3, 10, np.random.default_rng(3))
        assert len(subs) == len(set(subs)) == 10


class TestRegistry:
    def test_by_name_with_args(self):
        g = by_name("mesh", 2, 3)
        assert g.num_qubits == 6

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("torus")

    def test_registry_covers_paper_architectures(self):
        for name in ["linear", "mesh", "complete", "almaden",
                     "johannesburg", "cairo", "cambridge", "brooklyn"]:
            assert name in REGISTRY

    def test_induced_subgraph(self):
        g = mesh(2, 3)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_qubits == 3
        assert sub.num_edges == 2
