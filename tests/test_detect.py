"""Tests for repro.detect — packed streams, CUSUM detection, strike
localisation, burst-adaptive recovery, and the campaign/CLI threading."""

import dataclasses
import json

import numpy as np
import pytest

from repro.codes import XXZZCode, build_memory_experiment
from repro.decoders import DetectorGraph, ERASED_WEIGHT, decoder_for
from repro.detect import (
    BurstAdaptiveDecoder,
    DetectorConfig,
    PackedSyndromes,
    RECOVERY_POLICIES,
    RecoveryPolicy,
    StreamingDetector,
    estimate_cluster,
    pack_shot_mask,
    reweight_graph,
    roc_auc,
    roc_curve,
)
from repro.frames import FrameSimulator, compile_frame_program, unpack_words
from repro.frames.packing import column_counts, pack_bool_rows, popcount_words
from repro.injection.campaign import run_task
from repro.injection.spec import CodeSpec, FaultSpec, InjectionTask
from repro.injection.store import task_key
from repro.noise import (
    DepolarizingNoise,
    NoiseModel,
    RadiationBurst,
    RadiationEvent,
    run_batch_noisy,
)


# ----------------------------------------------------------------------
# Packed reductions
# ----------------------------------------------------------------------
class TestPackedKernels:
    def test_popcount_words_matches_python(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2 ** 63, size=(3, 5), dtype=np.uint64)
        expect = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        np.testing.assert_array_equal(popcount_words(words), expect)

    def test_column_counts_matches_unpacked_sum(self):
        rng = np.random.default_rng(1)
        bits = rng.random((13, 170)) < 0.3
        planes = pack_bool_rows(bits)
        np.testing.assert_array_equal(
            column_counts(planes, 170), bits.sum(axis=0))

    def test_pack_bool_rows_roundtrip(self):
        rng = np.random.default_rng(2)
        bits = rng.random((4, 77)) < 0.5
        words = pack_bool_rows(bits)
        back = unpack_words(words, 77)
        np.testing.assert_array_equal(back.astype(bool), bits)


# ----------------------------------------------------------------------
# Shared strike fixture: d=5 rotated memory, centre strike at round 4
# ----------------------------------------------------------------------
STRIKE_ROUND = 4
ROUNDS = 10


@pytest.fixture(scope="module")
def strike_setup():
    code = XXZZCode(5, 5)
    experiment = build_memory_experiment(code, rounds=ROUNDS)
    root = code.lattice.data_index(2, 2)
    event = RadiationEvent.from_positions(root, code.qubit_positions())
    return code, experiment, event, root, code.measures_per_round


def _frame_words(experiment, noise, shots, seed):
    program = compile_frame_program(experiment.circuit, noise, rng=seed)
    sim = FrameSimulator(experiment.circuit.num_qubits, shots, rng=seed + 1)
    return sim.run_packed(program)


@pytest.fixture(scope="module")
def struck_words(strike_setup):
    _, experiment, event, _, mpr = strike_setup
    noise = NoiseModel([event.burst(STRIKE_ROUND, mpr),
                        DepolarizingNoise(0.005)])
    return _frame_words(experiment, noise, 1024, seed=5)


@pytest.fixture(scope="module")
def clean_words(strike_setup):
    _, experiment, _, _, _ = strike_setup
    noise = NoiseModel([DepolarizingNoise(0.005)])
    return _frame_words(experiment, noise, 1024, seed=6)


# ----------------------------------------------------------------------
# Packed syndrome streams
# ----------------------------------------------------------------------
class TestPackedSyndromes:
    def test_frame_native_equals_records_path(self, strike_setup,
                                              struck_words):
        _, experiment, _, _, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(struck_words, 1024).T)
        a = PackedSyndromes.from_record_words(struck_words, experiment, 1024)
        b = PackedSyndromes.from_records(records, experiment)
        np.testing.assert_array_equal(a.det, b.det)
        assert a.num_primary == b.num_primary

    def test_primary_part_matches_detector_graph(self, strike_setup,
                                                 struck_words):
        """The packed primary-basis events must agree bit for bit with
        the decoder front-end's detection_events on unpacked records."""
        code, experiment, _, _, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(struck_words, 1024).T)
        graph = DetectorGraph(code, ROUNDS)
        det_ref = graph.detection_events(experiment.syndromes(records))
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        got = np.stack([
            unpack_words(packed.det[r, :packed.num_primary], 1024).T
            for r in range(packed.rounds)], axis=1)
        np.testing.assert_array_equal(got, det_ref)

    def test_dual_part_round0_suppressed(self, strike_setup, struck_words):
        _, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        assert packed.num_plaquettes > packed.num_primary
        assert not packed.det[0, packed.num_primary:].any()

    def test_round_event_counts_match_popcount(self, strike_setup,
                                               struck_words):
        _, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        counts = packed.round_event_counts()
        totals = packed.plaquette_event_counts()
        np.testing.assert_array_equal(counts.sum(axis=0),
                                      totals.sum(axis=1))

    def test_shot_mask_restricts_counts(self, strike_setup, struck_words):
        _, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        none = pack_shot_mask(np.zeros(1024, dtype=bool))
        assert packed.plaquette_event_counts(shot_mask=none).sum() == 0


# ----------------------------------------------------------------------
# Streaming detection
# ----------------------------------------------------------------------
class TestStreamingDetector:
    def test_strike_detected_clean_mostly_not(self, strike_setup,
                                              struck_words, clean_words):
        _, experiment, _, _, _ = strike_setup
        det = StreamingDetector()
        hit = det.detect(PackedSyndromes.from_record_words(
            struck_words, experiment, 1024))
        clean = det.detect(PackedSyndromes.from_record_words(
            clean_words, experiment, 1024))
        assert hit.flag_rate > 0.9
        assert clean.flag_rate < 0.15
        assert roc_auc(hit.max_scores, clean.max_scores) > 0.95

    def test_latency_and_window(self, strike_setup, struck_words):
        _, experiment, _, _, _ = strike_setup
        report = StreamingDetector().detect(
            PackedSyndromes.from_record_words(struck_words, experiment,
                                              1024))
        timely = report.flagged & (report.flag_round >= STRIKE_ROUND)
        lats = report.flag_round[timely] - STRIKE_ROUND
        assert np.median(lats) <= 2
        start, end = report.active_rounds
        assert start <= STRIKE_ROUND + 1
        assert end > start

    def test_explicit_baseline_honoured(self, strike_setup, struck_words):
        _, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        loose = StreamingDetector(DetectorConfig(baseline=50.0)).detect(
            packed)
        assert loose.num_flagged == 0  # absurd baseline: nothing anomalous
        assert loose.baseline == 50.0

    def test_roc_helpers(self):
        assert roc_auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0
        assert roc_auc(np.array([1.0, 1.0]), np.array([1.0, 1.0])) == 0.5
        fpr, tpr = roc_curve(np.array([2.0]), np.array([0.0]))
        assert fpr[0] == 0.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)


# ----------------------------------------------------------------------
# Localisation
# ----------------------------------------------------------------------
class TestClusterEstimation:
    def test_epicenter_near_root(self, strike_setup, struck_words):
        code, experiment, _, root, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        report = StreamingDetector().detect(packed)
        cluster = estimate_cluster(packed, report, code)
        assert cluster is not None
        positions = code.qubit_positions()
        anc = (list(code.z_ancillas) + list(code.x_ancillas))[
            cluster.epicenter]
        ap, rp = positions[anc], positions[root]
        assert (abs(ap[0] - rp[0]) + abs(ap[1] - rp[1])) / 2.0 <= 2.0
        assert cluster.window[0] <= STRIKE_ROUND + 1
        assert root in cluster.qubits
        assert cluster.radius >= 1
        assert all(p < packed.num_primary
                   for p in cluster.primary_plaquettes)

    def test_no_cluster_without_flags(self, strike_setup, clean_words):
        code, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(clean_words, experiment,
                                                   1024)
        report = StreamingDetector(
            DetectorConfig(baseline=50.0)).detect(packed)
        assert estimate_cluster(packed, report, code) is None


# ----------------------------------------------------------------------
# Recovery policies
# ----------------------------------------------------------------------
class TestRecovery:
    def test_policy_coercion(self):
        assert RecoveryPolicy.coerce("reweight") is RecoveryPolicy.REWEIGHT
        assert RecoveryPolicy.coerce(RecoveryPolicy.STATIC) \
            is RecoveryPolicy.STATIC
        with pytest.raises(ValueError, match="unknown recovery"):
            RecoveryPolicy.coerce("bogus")
        assert set(RECOVERY_POLICIES) == {"static", "reweight",
                                          "discard_window"}

    def test_reweight_graph_erases_blast_volume(self, strike_setup,
                                                struck_words):
        code, experiment, _, _, _ = strike_setup
        packed = PackedSyndromes.from_record_words(struck_words, experiment,
                                                   1024)
        report = StreamingDetector().detect(packed)
        cluster = estimate_cluster(packed, report, code)
        graph = DetectorGraph(code, ROUNDS)
        rw = reweight_graph(graph, cluster)
        erased = [e for e in rw.edges if e.weight <= ERASED_WEIGHT]
        assert erased
        start, end = cluster.window
        for e in erased:
            u = e.u if e.u != -1 else e.v
            r = u // rw.num_plaquettes
            assert start - 1 <= r < end
        assert not rw.unit_weights
        assert graph.unit_weights  # original untouched

    def test_static_policy_equals_base_decoder(self, strike_setup,
                                               struck_words):
        _, experiment, _, _, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(struck_words, 1024).T)
        base = decoder_for(experiment, "union-find")
        wrapped = BurstAdaptiveDecoder(base, policy="static")
        a = base.decode_batch(experiment, records)
        b = wrapped.decode_batch(experiment, records,
                                 record_words=struck_words)
        np.testing.assert_array_equal(a.corrections, b.corrections)
        assert wrapped.last_report is not None

    def test_clean_batch_reweight_falls_back_to_static(self, strike_setup,
                                                       clean_words):
        _, experiment, _, _, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(clean_words, 1024).T)
        base = decoder_for(experiment, "union-find")
        wrapped = BurstAdaptiveDecoder(
            base, policy="reweight",
            config=DetectorConfig(baseline=50.0))  # nothing flags
        a = base.decode_batch(experiment, records)
        b = wrapped.decode_batch(experiment, records,
                                 record_words=clean_words)
        np.testing.assert_array_equal(a.corrections, b.corrections)

    def test_reweight_estimates_strike_parameters(self, strike_setup,
                                                  struck_words):
        _, experiment, _, root, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(struck_words, 1024).T)
        base = decoder_for(experiment, "union-find")
        wrapped = BurstAdaptiveDecoder(base, policy="reweight")
        wrapped.decode_batch(experiment, records, record_words=struck_words)
        est = wrapped.last_estimate
        assert est is not None
        rp = experiment.code.qubit_positions()[root]
        err = (abs(est.position[0] - rp[0])
               + abs(est.position[1] - rp[1])) / 2.0
        assert err <= 1.5
        assert est.onset_round in (STRIKE_ROUND, STRIKE_ROUND + 1)
        assert 0.05 <= est.amplitude <= 1.0

    def test_discard_window_changes_flagged_decodes_only(self, strike_setup,
                                                         struck_words):
        _, experiment, _, _, _ = strike_setup
        records = np.ascontiguousarray(unpack_words(struck_words, 1024).T)
        base = decoder_for(experiment, "union-find")
        static = BurstAdaptiveDecoder(base, policy="static")
        discard = BurstAdaptiveDecoder(base, policy="discard_window")
        a = static.decode_batch(experiment, records,
                                record_words=struck_words)
        b = discard.decode_batch(experiment, records,
                                 record_words=struck_words)
        clean = ~discard.last_report.flagged
        np.testing.assert_array_equal(a.corrections[clean],
                                      b.corrections[clean])
        assert (a.corrections != b.corrections).any()

    @pytest.mark.slow
    def test_reweight_beats_static_mwpm_paired(self, strike_setup):
        """Acceptance direction: on the seeded half-intensity strike the
        model-reweighted MWPM decode makes strictly fewer logical errors
        than static on the *same* records (paired comparison)."""
        _, experiment, event, _, mpr = strike_setup
        noise = NoiseModel([event.burst(STRIKE_ROUND, mpr, scale=0.5),
                            DepolarizingNoise(0.005)])
        words = _frame_words(experiment, noise, 2048, seed=7)
        records = np.ascontiguousarray(unpack_words(words, 2048).T)
        base = decoder_for(experiment, "mwpm")
        errs = {}
        for policy in ("static", "reweight"):
            dec = BurstAdaptiveDecoder(base, policy=policy)
            errs[policy] = dec.decode_batch(
                experiment, records, record_words=words).num_errors
        assert errs["reweight"] < errs["static"]


# ----------------------------------------------------------------------
# RadiationBurst channel
# ----------------------------------------------------------------------
class TestRadiationBurst:
    def _burst(self, strike_round=2, scale=1.0):
        event = RadiationEvent(0, {0: 0, 1: 1, 2: 2}, num_qubits=3)
        return RadiationEvent.burst(event, strike_round, 2, scale=scale)

    def test_round_tracking_and_reset(self):
        from repro.circuits import Circuit

        burst = self._burst(strike_round=1)
        circ = Circuit(3)
        circ.measure(0, 0)
        gates = [circ.gates[0]]
        assert burst.current_probs() is None  # round 0, pre-strike
        for _ in range(2):                    # two measures = one round
            burst.observe(gates[0])
        assert burst.current_round == 1
        probs = burst.current_probs()
        assert probs is not None and probs[0] == 1.0  # T(0) at the root
        burst.begin_run()
        assert burst.current_round == 0
        assert burst.current_probs() is None

    def test_scale_and_validation(self):
        burst = self._burst(strike_round=0, scale=0.25)
        assert burst.current_probs()[0] == pytest.approx(0.25)
        with pytest.raises(ValueError, match="scale"):
            self._burst(scale=1.5)
        with pytest.raises(ValueError, match="strike_round"):
            self._burst(strike_round=-1)

    def test_backends_agree_on_round_profile(self):
        """Tableau and frame backends must show the same burst: flat
        pre-strike event rates, a jump at the strike round."""
        code = XXZZCode(3, 3)
        experiment = build_memory_experiment(code, rounds=6)
        n = experiment.circuit.num_qubits
        event = RadiationEvent(4, {q: abs(q - 4) for q in range(n)},
                               num_qubits=n)
        mpr = len(code.z_ancillas) + len(code.x_ancillas)
        noise = NoiseModel([event.burst(3, mpr), DepolarizingNoise(0.003)])
        graph = DetectorGraph(code, 6)
        profiles = []
        for backend, seed in (("tableau", 3), ("frames", 4)):
            rec = run_batch_noisy(experiment.circuit, noise, 512, rng=seed,
                                  backend=backend)
            det = graph.detection_events(experiment.syndromes(rec))
            profiles.append(det.mean(axis=(0, 2)))
        for prof in profiles:
            assert prof[3] > 3 * prof[:3].max()
        assert abs(profiles[0][3] - profiles[1][3]) < 0.08


# ----------------------------------------------------------------------
# Campaign threading
# ----------------------------------------------------------------------
def _burst_task(policy="reweight", **kw):
    base = dict(code=CodeSpec("xxzz", (3, 3)),
                fault=FaultSpec(kind="radiation", root_qubit=4,
                                strike_round=2, intensity=0.5),
                rounds=6, intrinsic_p=0.005, decoder="union-find",
                backend="frames", recovery=policy, shots=1024, seed=11)
    base.update(kw)
    return InjectionTask(**base)


class TestCampaignThreading:
    def test_recovery_validated(self):
        with pytest.raises(ValueError, match="recovery"):
            _burst_task(policy="bogus")

    def test_strike_round_validated(self):
        with pytest.raises(ValueError, match="strike_round"):
            FaultSpec(kind="erasure", qubits=(1,), strike_round=2)
        with pytest.raises(ValueError, match="intensity"):
            FaultSpec(kind="radiation", strike_round=1, intensity=2.0)

    def test_strike_round_outside_rounds_rejected(self):
        task = _burst_task(fault=FaultSpec(kind="radiation", root_qubit=4,
                                           strike_round=9), shots=512)
        with pytest.raises(ValueError, match="outside"):
            run_task(task)

    def test_counts_invariant_to_chunking(self):
        task = _burst_task()
        a = run_task(task, chunk_shots=512)
        b = run_task(task, chunk_shots=2048)
        assert a.counts == b.counts

    def test_policies_share_sampled_records(self):
        """Same seed, different recovery: raw (pre-decode) error counts
        must match exactly — the policy only changes decoding."""
        res = {p: run_task(_burst_task(policy=p))
               for p in ("static", "reweight", "discard_window")}
        raws = {p: r.raw_errors for p, r in res.items()}
        assert len(set(raws.values())) == 1
        assert all(r.shots == 1024 for r in res.values())

    def test_recovery_shapes_task_key(self):
        keys = {task_key(_burst_task(policy=p))
                for p in ("static", "reweight")}
        assert len(keys) == 2
        keys = {task_key(_burst_task(
            fault=FaultSpec(kind="radiation", root_qubit=4,
                            strike_round=s))) for s in (1, 2)}
        assert len(keys) == 2

    def test_tableau_backend_recovery_path(self):
        res = run_task(_burst_task(backend="tableau", shots=512))
        assert res.shots == 512


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestDetectCli:
    def test_detect_smoke(self, capsys):
        from repro.cli import main

        assert main(["detect", "--shots", "256", "--distance", "3",
                     "--rounds", "6", "--strike-round", "2",
                     "--decoder", "union-find", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "auc" in out
        assert "reweight" in out and "discard_window" in out

    def test_detect_csv(self, capsys, tmp_path):
        from repro.cli import main

        csv_path = tmp_path / "det.csv"
        assert main(["detect", "--shots", "128", "--distance", "3",
                     "--rounds", "6", "--strike-round", "2",
                     "--decoder", "union-find", "--workers", "1",
                     "--csv", str(csv_path)]) == 0
        assert "auc" in csv_path.read_text()
        assert "ler" in (tmp_path / "det.policies.csv").read_text()

    def test_campaign_recovery_flag(self, capsys, tmp_path):
        from repro.cli import main

        spec = {"codes": [["xxzz", [3, 3]]],
                "faults": [{"kind": "radiation", "root_qubit": 4,
                            "strike_round": 2}],
                "p_values": [0.005], "rounds": 6, "shots": 512,
                "decoder": "union-find", "backend": "frames",
                "root_seed": 3}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        csv_path = tmp_path / "out.csv"
        assert main(["campaign", str(path), "--workers", "1",
                     "--recovery", "reweight",
                     "--csv", str(csv_path)]) == 0
        assert "reweight" in csv_path.read_text()
