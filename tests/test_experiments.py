"""Tests for the per-figure experiment generators (reduced scale)."""

import numpy as np
import pytest

from repro.analysis.landscape import Landscape
from repro.experiments import (
    fig3_temporal,
    fig4_spatial,
    fig5_landscape,
    fig6_distance,
    fig7_spread,
    fig8_architecture,
    headline,
)
from repro.experiments.common import fitting_mesh, used_physical_qubits
from repro.injection.spec import ArchSpec, CodeSpec


class TestCommon:
    def test_fitting_mesh_paper_sizes(self):
        assert fitting_mesh(30).args == (5, 6)
        assert fitting_mesh(18).args == (3, 6)
        assert fitting_mesh(10).args == (2, 5)
        assert fitting_mesh(6).args == (2, 3)

    def test_fitting_mesh_fits(self):
        for n in range(2, 31):
            rows, cols = fitting_mesh(n).args
            assert rows * cols >= n

    def test_used_physical_qubits(self):
        code = CodeSpec("repetition", (3, 1))
        arch = fitting_mesh(6)
        used = used_physical_qubits(code, arch)
        assert len(used) == 6  # all code qubits present somewhere


class TestFig3:
    def test_curves(self):
        data = fig3_temporal.run(num_points=50)
        assert data.continuous[0] == pytest.approx(1.0)
        assert data.continuous[-1] == pytest.approx(np.exp(-10))
        assert np.all(np.diff(data.continuous) < 0)

    def test_step_function_dominates(self):
        data = fig3_temporal.run(num_points=200)
        assert np.all(data.stepped >= data.continuous - 1e-12)

    def test_sample_table_matches_eq5(self):
        rows = fig3_temporal.sample_table()
        assert len(rows) == 10
        assert rows[0]["injection_prob"] == pytest.approx(1.0)
        assert rows[-1]["injection_prob"] == pytest.approx(np.exp(-10))

    def test_ablation_error_decreases_with_samples(self):
        rows = fig3_temporal.sampling_ablation(candidates=(2, 10, 50))
        errs = [r["mean_abs_error"] for r in rows]
        assert errs[0] > errs[1] > errs[2]

    def test_to_rows(self):
        data = fig3_temporal.run(num_points=5)
        assert len(data.to_rows()) == 5


class TestFig4:
    def test_peak_at_root(self):
        data = fig4_spatial.run(extent=5)
        centre = data.probabilities[5, 5]
        assert centre == pytest.approx(1.0)
        assert np.nanmax(data.probabilities) == pytest.approx(1.0)

    def test_radial_profile_matches_eq6(self):
        data = fig4_spatial.run(extent=5)
        profile = {r["distance"]: r["injection_prob"]
                   for r in data.radial_profile()}
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(0.25)
        assert profile[2] == pytest.approx(1 / 9)

    def test_isotropy(self):
        data = fig4_spatial.run(extent=4)
        p = data.probabilities
        np.testing.assert_allclose(p, p.T)          # symmetric
        np.testing.assert_allclose(p, p[::-1, :])   # mirror

    def test_to_rows_grid(self):
        data = fig4_spatial.run(extent=2)
        assert len(data.to_rows()) == 25


@pytest.mark.slow
class TestFig5Small:
    @pytest.fixture(scope="class")
    def landscapes(self):
        # Tiny configuration: one code, two p values, all time samples.
        configs = ((CodeSpec("repetition", (3, 1)), ArchSpec("mesh", (2, 3)),
                    1),)
        return fig5_landscape.run(shots=120, p_values=(1e-8, 1e-1),
                                  configs=configs, max_workers=2)

    def test_shape(self, landscapes):
        ls = landscapes["repetition-(3,1)"]
        assert ls.rates.shape == (2, 10)
        assert not np.isnan(ls.rates).any()

    def test_strike_worse_than_tail(self, landscapes):
        ls = landscapes["repetition-(3,1)"]
        assert ls.rates[0, 0] > ls.rates[0, -1]

    def test_summary_rows(self, landscapes):
        rows = fig5_landscape.summarize(landscapes)
        assert rows[0]["peak_ler"] >= rows[0]["radiation_floor_p1e-8"] - 1e-9

    def test_landscape_helpers(self, landscapes):
        ls = landscapes["repetition-(3,1)"]
        assert 0 <= ls.peak <= 1
        assert len(ls.at_strike()) == 2
        assert len(ls.noise_floor_row()) == 10
        assert len(ls.to_rows()) == 20


@pytest.mark.slow
class TestFig6Small:
    def test_rows_structure(self):
        rows = fig6_distance.run(shots=60, max_workers=4, max_roots=2)
        families = {(r.family, r.distance) for r in rows}
        assert ("repetition", (3, 1)) in families
        assert ("xxzz", (3, 3)) in families
        for r in rows:
            assert 0.0 <= r.median_ler <= 1.0

    def test_bitflip_advantage_pairs(self):
        rows = fig6_distance.run(shots=60, max_workers=4, max_roots=2)
        adv = fig6_distance.bitflip_advantage(rows)
        assert len(adv) == 2


@pytest.mark.slow
class TestFig7Small:
    def test_spread_data(self):
        configs = ((CodeSpec("repetition", (5, 1)), (1, 3, 6)),)
        data = fig7_spread.run(shots=80, samples_per_size=2,
                               configs=configs, max_workers=4)
        d = data[0]
        assert d.sizes == [1, 3, 6]
        assert 0 <= d.radiation_ler <= 1
        assert len(d.to_rows()) == 3

    def test_equivalent_erasures(self):
        d = fig7_spread.SpreadData(
            code_label="x", sizes=[1, 5, 10], median_ler=[0.1, 0.3, 0.8],
            q25=[0] * 3, q75=[1] * 3, radiation_ler=0.25, num_qubits=10)
        assert fig7_spread.equivalent_erasures(d) == 5

    def test_equivalent_erasures_none(self):
        d = fig7_spread.SpreadData(
            code_label="x", sizes=[1], median_ler=[0.1],
            q25=[0], q75=[1], radiation_ler=0.9, num_qubits=10)
        assert fig7_spread.equivalent_erasures(d) is None


@pytest.mark.slow
class TestFig8Small:
    @pytest.fixture(scope="class")
    def arch_data(self):
        configs = ((CodeSpec("repetition", (3, 1)),
                    (ArchSpec("mesh", (2, 3)), ArchSpec("linear", (6,)))),)
        return fig8_architecture.run(shots=60, configs=configs,
                                     time_indices=(0, 5),
                                     max_workers=4)

    def test_panels(self, arch_data):
        assert len(arch_data) == 2
        for d in arch_data:
            assert len(d.per_qubit) == 6
            assert 0 <= d.median_ler <= 1
            assert d.min_ler <= d.median_ler <= d.max_ler

    def test_roles_assigned(self, arch_data):
        roles = {q.role for d in arch_data for q in d.per_qubit}
        assert "data" in roles

    def test_row_rendering(self, arch_data):
        row = arch_data[0].to_row()
        assert set(row) >= {"code", "arch", "swaps", "median_ler"}


@pytest.mark.slow
class TestHeadlineChecks:
    def test_observation_1_synthetic(self):
        ls = Landscape("c", np.array([1e-8, 1e-1]), np.arange(10),
                       np.linspace(1, 0, 10),
                       np.full((2, 10), 0.5))
        check = headline.check_observation_1({"c": ls})
        assert check.holds

    def test_observation_1_fails_on_low_floor(self):
        ls = Landscape("c", np.array([1e-8]), np.arange(10),
                       np.linspace(1, 0, 10), np.full((1, 10), 0.01))
        assert not headline.check_observation_1({"c": ls}).holds

    def test_observation_3_rising(self):
        rows = [fig6_distance.DistanceRow("repetition", (d, 1), 2 * d,
                                          0.1 + d / 100, 0, 1, 5)
                for d in (3, 5, 7)]
        assert headline.check_observation_3(rows).holds

    def test_observation_4_requires_positive_advantage(self):
        rows = [
            fig6_distance.DistanceRow("xxzz", (3, 1), 6, 0.05, 0, 1, 5),
            fig6_distance.DistanceRow("xxzz", (1, 3), 6, 0.50, 0, 1, 5),
            fig6_distance.DistanceRow("xxzz", (5, 3), 30, 0.20, 0, 1, 5),
            fig6_distance.DistanceRow("xxzz", (3, 5), 30, 0.40, 0, 1, 5),
        ]
        assert headline.check_observation_4(rows).holds

    def test_observation_5_and_6(self):
        d = fig7_spread.SpreadData(
            code_label="repetition-(15,1)", sizes=[1, 10, 16],
            median_ler=[0.2, 0.5, 0.85], q25=[0] * 3, q75=[1] * 3,
            radiation_ler=0.5, num_qubits=30)
        assert headline.check_observation_5([d]).holds
        assert headline.check_observation_6([d]).holds

    def test_check_all_subset(self):
        checks = headline.check_all(distance_rows=[
            fig6_distance.DistanceRow("repetition", (3, 1), 6, 0.1, 0, 1, 5),
            fig6_distance.DistanceRow("repetition", (5, 1), 10, 0.2, 0, 1, 5),
        ])
        assert {c.observation for c in checks} == {"III", "IV"}
